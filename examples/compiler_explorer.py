#!/usr/bin/env python3
"""Compiler explorer: watch one function travel through every stage.

Without arguments, shows the artifacts of the two-pass system for a
small function:

1. the optimized IR the first phase stores in the intermediate file,
2. the summary record it writes for the analyzer,
3. the analyzer's directives for the procedure,
4. the final PRISM machine code, annotated.

With ``--serve`` / ``--connect`` it becomes the compile service's
first real client (``docs/SERVICE.md``): ``--serve`` runs the daemon
in the foreground, ``--connect`` opens an interactive edit-recompile
session against a running daemon.

Run:
    python examples/compiler_explorer.py
    python examples/compiler_explorer.py --serve --socket /tmp/repro.sock
    python examples/compiler_explorer.py --connect /tmp/repro.sock
    python examples/compiler_explorer.py --serve --tcp 127.0.0.1:7707
    python examples/compiler_explorer.py --connect 127.0.0.1:7707
"""

import argparse
import copy
import sys

from repro import AnalyzerOptions
from repro.analyzer.driver import analyze_program
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.promotion import apply_web_promotion
from repro.backend.regalloc import allocate_function
from repro.frontend.phase1 import compile_module_phase1
from repro.ir.printer import format_function
from repro.opt.pipeline import _local_fixpoint
from repro.target.registers import register_name

SOURCE = """
int total;
int scale;

int accumulate(int x) {
  total += x * scale;
  return total;
}

int main() {
  int i;
  scale = 3;
  for (i = 0; i < 100; i++) accumulate(i);
  print(total);
  return 0;
}
"""


def demo() -> None:
    # --- compiler first phase -----------------------------------------
    phase1 = compile_module_phase1(SOURCE, "demo", opt_level=2)
    function = phase1.ir_module.functions["accumulate"]

    print("=" * 64)
    print("1. optimized IR from the first phase")
    print("=" * 64)
    print(format_function(function))

    print()
    print("=" * 64)
    print("2. the procedure's summary record")
    print("=" * 64)
    record = next(
        p for p in phase1.summary.procedures if p.name == "accumulate"
    )
    print(f"  global refs:         {record.global_refs}")
    print(f"  global stores:       {record.global_stores}")
    print(f"  calls:               {record.calls}")
    print(f"  callee-saves needed: {record.callee_saves_needed}")

    # --- program analyzer ------------------------------------------------
    database = analyze_program(
        [phase1.summary], AnalyzerOptions.config("C")
    )
    directives = database.get("accumulate")

    print()
    print("=" * 64)
    print("3. analyzer directives for 'accumulate'")
    print("=" * 64)
    for promoted in directives.promoted:
        print(
            f"  promoted: {promoted.name} -> "
            f"{register_name(promoted.register)} "
            f"(web entry: {promoted.is_entry}, "
            f"store at exit: {promoted.needs_store})"
        )
    for label, registers in [
        ("FREE", directives.free),
        ("CALLER", directives.caller),
        ("CALLEE", directives.callee),
        ("MSPILL", directives.mspill),
    ]:
        names = " ".join(register_name(r) for r in sorted(registers))
        print(f"  {label:<7}= {names or '(empty)'}")

    # --- compiler second phase --------------------------------------------
    function = copy.deepcopy(function)
    apply_web_promotion(function, directives)
    _local_fixpoint(function)
    machine = select_function(function, directives)
    allocate_function(machine)
    finalize_frame(machine)

    print()
    print("=" * 64)
    print("4. final PRISM machine code")
    print("=" * 64)
    print(machine.format())
    print()
    promoted_names = ", ".join(
        f"{p.name} in {register_name(p.register)}"
        for p in directives.promoted
    )
    if promoted_names:
        print(f"note: no loads/stores of [{promoted_names}] remain — the "
              f"globals live in registers across the whole web.")


# --- compile-service client mode ------------------------------------------


def _parse_endpoint(endpoint: str):
    """``host:port`` -> ("tcp", host, port); anything else is a unix
    socket path."""
    if ":" in endpoint and not endpoint.startswith(("/", ".")):
        host, _colon, port = endpoint.rpartition(":")
        return "tcp", host, int(port)
    return "unix", endpoint, None


def serve(args) -> None:
    """Run the daemon in the foreground until interrupted."""
    import asyncio

    from repro.service.server import CompileService

    kwargs = {}
    if args.socket:
        kwargs["unix_path"] = args.socket
    if args.tcp:
        _kind, host, port = _parse_endpoint(args.tcp)
        kwargs["host"], kwargs["port"] = host, port
    if not kwargs:
        kwargs["host"], kwargs["port"] = "127.0.0.1", 7707
    if args.metrics_port is not None:
        kwargs["metrics_port"] = args.metrics_port

    async def run() -> None:
        service = CompileService(**kwargs)
        await service.start()
        if args.socket:
            print(f"compile service on unix:{args.socket}", flush=True)
        if service.tcp_address:
            host, port = service.tcp_address
            print(f"compile service on tcp:{host}:{port}", flush=True)
        if service.metrics_address:
            host, port = service.metrics_address
            print(f"metrics at http://{host}:{port}/metrics", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nservice stopped")


HELP = """\
commands:
  compile           recompile the session (shows cache/incremental reuse)
  edit <module>     replace a module's source; end input with a lone "."
  profile           run the program, feed call counts back (configs B/F)
  modules           list the session's modules
  stats             this session's statistics
  server            server-wide statistics (shared cache, sessions)
  help              this text
  quit              close the session and exit
"""


def connect(args) -> None:
    """Interactive edit-recompile loop against a running daemon."""
    from repro.service.client import ServiceClient, ServiceError

    kind, host_or_path, port = _parse_endpoint(args.connect)
    if kind == "tcp":
        client = ServiceClient.connect_tcp(host_or_path, port)
    else:
        client = ServiceClient.connect_unix(host_or_path)
    with client:
        opened = client.open_session(
            {"demo": SOURCE}, config=args.config
        )
        session = opened["session"]
        print(f"session {session} open (config {opened['config']}, "
              f"modules: {', '.join(opened['modules'])})")
        print(HELP, end="")
        interactive = sys.stdin.isatty()
        while True:
            if interactive:
                print("> ", end="", flush=True)
            line = sys.stdin.readline()
            if not line:
                break
            command, _space, argument = line.strip().partition(" ")
            try:
                if command in ("quit", "exit"):
                    break
                elif command == "compile":
                    out = client.compile(session)
                    print(
                        f"fingerprint {out['fingerprint'][:16]}…  "
                        f"phase1 {out['phase1_compiled']} compiled / "
                        f"{out['phase1_cached']} cached, "
                        f"phase2 {out['phase2_compiled']} compiled / "
                        f"{out['phase2_cached']} cached"
                    )
                    print(
                        f"timing: {out['seconds'] * 1000:.1f}ms compile"
                        f" ({out['queue_seconds'] * 1000:.1f}ms queued,"
                        f" {out['lock_seconds'] * 1000:.1f}ms on the"
                        f" session lock)"
                    )
                    if out["analyze"]:
                        reused = out["analyze"].get("webs_reused", 0)
                        redone = out["analyze"].get("webs_recomputed", 0)
                        print(f"analyzer: {reused} webs reused, "
                              f"{redone} recomputed")
                elif command == "edit":
                    if not argument:
                        print("usage: edit <module>")
                        continue
                    if interactive:
                        print(f"new source for {argument!r}; end with "
                              f"a lone '.':")
                    body = []
                    while True:
                        source_line = sys.stdin.readline()
                        if not source_line or source_line.strip() == ".":
                            break
                        body.append(source_line.rstrip("\n"))
                    out = client.edit(
                        session, argument, "\n".join(body) + "\n"
                    )
                    print(f"modules now: {', '.join(out['modules'])}")
                elif command == "profile":
                    out = client.profile(session)
                    counts = ", ".join(
                        f"{name}={count}"
                        for name, count in sorted(
                            out["call_counts"].items()
                        )
                    )
                    print(f"profiled {out['procedures']} procedures: "
                          f"{counts}")
                elif command == "modules":
                    print(", ".join(
                        client.stats(session)["modules"]
                    ))
                elif command == "stats":
                    stats = client.stats(session)
                    print(f"compiles={stats['compiles']} "
                          f"edits={stats['edits']} "
                          f"tasks={stats['stage_tasks']}")
                elif command == "server":
                    stats = client.stats()
                    cache = stats.get("cache", {})
                    print(f"sessions={stats['sessions_open']} "
                          f"compiles={stats['compiles_total']} "
                          f"cache_hit_rate={cache.get('hit_rate', 0):.2f} "
                          f"shards={cache.get('shards')}")
                elif command == "help":
                    print(HELP, end="")
                elif command == "":
                    continue
                else:
                    print(f"unknown command {command!r} (try 'help')")
            except ServiceError as err:
                print(f"error: {err}")
        client.close_session(session)
        print(f"session {session} closed")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="store_true",
                        help="run the compile service daemon")
    parser.add_argument("--socket", help="unix socket path for --serve")
    parser.add_argument("--tcp", help="host:port for --serve")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="expose /metrics on this port (--serve)")
    parser.add_argument("--connect", metavar="ENDPOINT",
                        help="connect to a daemon (socket path or "
                             "host:port) and edit interactively")
    parser.add_argument("--config", default="C",
                        help="analyzer configuration for --connect "
                             "sessions (default C)")
    args = parser.parse_args(argv)
    if args.serve and args.connect:
        parser.error("--serve and --connect are mutually exclusive")
    if args.serve:
        serve(args)
    elif args.connect:
        connect(args)
    else:
        demo()


if __name__ == "__main__":
    main()
