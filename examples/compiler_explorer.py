#!/usr/bin/env python3
"""Compiler explorer: watch one function travel through every stage.

Shows the artifacts of the two-pass system for a small function:

1. the optimized IR the first phase stores in the intermediate file,
2. the summary record it writes for the analyzer,
3. the analyzer's directives for the procedure,
4. the final PRISM machine code, annotated.

Run:
    python examples/compiler_explorer.py
"""

import copy

from repro import AnalyzerOptions
from repro.analyzer.driver import analyze_program
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.promotion import apply_web_promotion
from repro.backend.regalloc import allocate_function
from repro.frontend.phase1 import compile_module_phase1
from repro.ir.printer import format_function
from repro.opt.pipeline import _local_fixpoint
from repro.target.registers import register_name

SOURCE = """
int total;
int scale;

int accumulate(int x) {
  total += x * scale;
  return total;
}

int main() {
  int i;
  scale = 3;
  for (i = 0; i < 100; i++) accumulate(i);
  print(total);
  return 0;
}
"""


def main() -> None:
    # --- compiler first phase -----------------------------------------
    phase1 = compile_module_phase1(SOURCE, "demo", opt_level=2)
    function = phase1.ir_module.functions["accumulate"]

    print("=" * 64)
    print("1. optimized IR from the first phase")
    print("=" * 64)
    print(format_function(function))

    print()
    print("=" * 64)
    print("2. the procedure's summary record")
    print("=" * 64)
    record = next(
        p for p in phase1.summary.procedures if p.name == "accumulate"
    )
    print(f"  global refs:         {record.global_refs}")
    print(f"  global stores:       {record.global_stores}")
    print(f"  calls:               {record.calls}")
    print(f"  callee-saves needed: {record.callee_saves_needed}")

    # --- program analyzer ------------------------------------------------
    database = analyze_program(
        [phase1.summary], AnalyzerOptions.config("C")
    )
    directives = database.get("accumulate")

    print()
    print("=" * 64)
    print("3. analyzer directives for 'accumulate'")
    print("=" * 64)
    for promoted in directives.promoted:
        print(
            f"  promoted: {promoted.name} -> "
            f"{register_name(promoted.register)} "
            f"(web entry: {promoted.is_entry}, "
            f"store at exit: {promoted.needs_store})"
        )
    for label, registers in [
        ("FREE", directives.free),
        ("CALLER", directives.caller),
        ("CALLEE", directives.callee),
        ("MSPILL", directives.mspill),
    ]:
        names = " ".join(register_name(r) for r in sorted(registers))
        print(f"  {label:<7}= {names or '(empty)'}")

    # --- compiler second phase --------------------------------------------
    function = copy.deepcopy(function)
    apply_web_promotion(function, directives)
    _local_fixpoint(function)
    machine = select_function(function, directives)
    allocate_function(machine)
    finalize_frame(machine)

    print()
    print("=" * 64)
    print("4. final PRISM machine code")
    print("=" * 64)
    print(machine.format())
    print()
    promoted_names = ", ".join(
        f"{p.name} in {register_name(p.register)}"
        for p in directives.promoted
    )
    if promoted_names:
        print(f"note: no loads/stores of [{promoted_names}] remain — the "
              f"globals live in registers across the whole web.")


if __name__ == "__main__":
    main()
