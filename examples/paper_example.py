#!/usr/bin/env python3
"""The paper's worked example: Figure 3's call graph, Table 1's
reference sets, and Table 2's webs — built from an actual Tiny-C
program whose call graph is exactly the figure's.

Run:
    python examples/paper_example.py
"""

from repro import AnalyzerOptions, compile_program, run_executable
from repro.analyzer.options import AnalyzerOptions
from repro.analyzer.webs import WebOptions
from repro.callgraph.dataflow import compute_reference_sets, eligible_globals
from repro.callgraph.graph import CallGraph

# Tiny-C realization of Figure 3: procedures A..H, globals g1..g3, with
# A -> B, C; B -> D, E; C -> F, G; F, G -> H.
SOURCES = {
    "figure3": """
        int g1, g2, g3;

        int H(int x) { return x + 1; }
        int F(int x) { g2 += x;       return H(g2); }
        int G(int x) { g2 -= x;       return H(g2); }
        int D(int x) { g1 += x;       return g1; }
        int E(int x) { g1 += g2 + x;  g2 = g2 * 2 - g1 + x; return g2 & 1023; }
        int B(int x) { g1 = x; g3 += D(x) + E(x); return g3; }
        int C(int x) { g2 = x; g3 += F(x) + G(x); return g3; }
        int A(int n) {
          int i;
          int acc = 0;
          for (i = 0; i < n; i++) {
            g3 = i;
            acc += B(i) + C(i);
          }
          return acc;
        }
        // main references no globals, so A's P_REF stays empty and the
        // reference sets match the paper's Table 1 exactly.
        int main() {
          int r = A(25);
          print(r);
          return r & 255;
        }
    """,
}


def show(values):
    return " ".join(sorted(values)) if values else "(empty)"


def main() -> None:
    options = AnalyzerOptions(
        num_web_registers=2,  # the paper colors the example with two
        web_options=WebOptions(min_lref_ratio=0.0,
                               min_single_node_refs=0.0),
    )
    result = compile_program(SOURCES, analyzer_options=options)

    summaries = result.summaries
    graph = CallGraph.build(summaries)
    graph.normalize_weights()
    eligible = eligible_globals(summaries)
    sets = compute_reference_sets(graph, eligible)

    print("Table 1: reference sets")
    print(f"{'Procedure':<10} {'L_REF':<12} {'C_REF':<12} {'P_REF':<12}")
    for name in "ABCDEFGH":
        print(
            f"{name:<10} {show(sets.l_ref[name]):<12} "
            f"{show(sets.c_ref[name]):<12} {show(sets.p_ref[name]):<12}"
        )

    print("\nTable 2: webs (from the analyzer's database)")
    print(f"{'Web':<5} {'Variable':<9} {'Nodes':<12} {'Register':<9} "
          f"{'Entries'}")
    for web in sorted(result.database.webs, key=lambda w: w.web_id):
        register = f"r{web.register}" if web.register else "-"
        print(
            f"{web.web_id:<5} {web.variable:<9} "
            f"{' '.join(sorted(web.nodes)):<12} {register:<9} "
            f"{' '.join(sorted(web.entry_nodes))}"
        )

    stats = run_executable(result.executable)
    print("\nprogram output:", stats.output.split())
    registers_used = {
        w.register for w in result.database.webs if w.register
    }
    print(f"webs colored with {len(registers_used)} register(s): "
          f"{sorted(registers_used)}")
    for web in result.database.webs:
        if web.discarded_reason:
            print(
                f"note: web {web.web_id} ({web.variable} in "
                f"{' '.join(sorted(web.nodes))}) was not promoted: "
                f"{web.discarded_reason} — with real frequencies the "
                f"entry load/store exactly cancels the references saved, "
                f"so the priority heuristic (section 4.1.3) declines it"
            )


if __name__ == "__main__":
    main()
