#!/usr/bin/env python3
"""Caller-saves preallocation (paper section 7.6.2, the [Chow 88] idea).

A hot middle procedure keeps loop state live across calls to small
leaves.  Under the standard convention, anything live across a call must
sit in a callee-saves register (entry/exit save + restore).  With
caller-saves preallocation, the analyzer knows the leaves barely touch
the caller-saves file, so the state survives the calls in caller-saves
registers — no save/restore at all.

Every run here executes under the simulator's calling-convention
checker, which verifies at each return that the callee preserved every
register outside its declared clobber set.

Run:
    python examples/callersaves_prealloc.py
"""

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    Simulator,
    compile_with_database,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.target.registers import register_name

SOURCES = {
    "leaves": """
        int scale(int x)  { return x * 3 + 1; }
        int fold(int a, int b) { return (a ^ b) + (a >> 2); }
    """,
    "main": """
        extern int scale(int);
        extern int fold(int, int);

        // worker is invoked thousands of times; everything it keeps
        // live across the leaf calls normally costs callee-saves
        // save/restore on every single invocation.
        int worker(int seed) {
          int acc = seed;
          int bias = seed * 5 + 17;   // live across both calls below
          int s = scale(seed);
          acc = fold(acc + bias, s);
          acc = fold(acc - bias, scale(acc));
          return acc;
        }

        int main() {
          int i;
          int total = 0;
          for (i = 0; i < 2000; i++)
            total += worker(i);
          print(total);
          return total & 255;
        }
    """,
}


def run_with(options, label):
    phase1 = run_phase1(SOURCES)
    summaries = [r.summary for r in phase1]
    if options is None:
        database = ProgramDatabase()
    else:
        database = analyze_program(summaries, options)
    executable = compile_with_database(phase1, database)
    stats = Simulator(
        executable,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run()
    return stats, database


def main() -> None:
    baseline, _ = run_with(None, "standard convention")

    options = AnalyzerOptions(
        global_promotion="none",
        spill_code_motion=False,
        caller_saves_preallocation=True,
    )
    improved, database = run_with(options, "with preallocation")
    assert improved.output == baseline.output

    print("what the analyzer learned about the leaves:")
    for name in ("scale", "fold"):
        used = sorted(database.get(name).subtree_caller_used)
        names = " ".join(register_name(r) for r in used)
        print(f"  call tree of {name:>5} clobbers only: {names}")

    print(f"\n{'metric':>24}  {'standard':>10}  {'prealloc':>10}")
    for label, attribute in [
        ("cycles", "cycles"),
        ("singleton references", "singleton_references"),
    ]:
        print(
            f"{label:>24}  {getattr(baseline, attribute):>10,}  "
            f"{getattr(improved, attribute):>10,}"
        )
    gain = 100.0 * (baseline.cycles - improved.cycles) / baseline.cycles
    print(f"\ncycle improvement: {gain:.1f}%  "
          f"(validated by the calling-convention checker)")


if __name__ == "__main__":
    main()
