#!/usr/bin/env python3
"""Profile-guided interprocedural register allocation (configs B and F).

The paper's analyzer can consume gprof-style call counts instead of its
compile-time heuristics.  This example builds a program whose *static*
shape misleads the heuristics — the syntactically-hot path is dynamically
cold — collects a profile with the simulator, and compares the analyzer's
cluster decisions and the resulting cycle counts.

Run:
    python examples/profile_guided.py
"""

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    collect_profile,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program

# rare_path is wrapped in a loop (statically hot); common_path is called
# straight-line (statically cold) but the condition sends nearly all
# dynamic calls its way.
SOURCES = {
    "paths": """
        int rare_hits;
        int common_hits;

        int crunch(int x) { return (x * 17 + 5) & 1023; }

        int rare_path(int x) {
          int i;
          int acc = 0;
          for (i = 0; i < 50; i++) acc += crunch(x + i);
          rare_hits++;
          return acc;
        }

        int common_path(int x) {
          int a = crunch(x);
          int b = crunch(x + 1);
          common_hits++;
          return a + b;
        }
    """,
    "main": """
        extern int rare_path(int);
        extern int common_path(int);
        extern int rare_hits;
        extern int common_hits;

        int main() {
          int i;
          int total = 0;
          for (i = 0; i < 3000; i++) {
            if (i % 500 == 0)
              total += rare_path(i);    // 6 dynamic calls
            else
              total += common_path(i);  // 2994 dynamic calls
          }
          print(total);
          print(rare_hits);
          print(common_hits);
          return 0;
        }
    """,
}


def main() -> None:
    phase1 = run_phase1(SOURCES)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase())
    )

    # Step 1: instrumented run (the gprof step).
    profile = collect_profile(phase1)
    print("profiled call counts:")
    for name in ("rare_path", "common_path", "crunch"):
        print(f"  {name:>12}: {profile.node_count(name):,} calls")

    # Step 2: heuristic (config C) vs profile-guided (config F).
    results = {}
    for label, options in [
        ("heuristic (C)", AnalyzerOptions.config("C")),
        ("profiled  (F)", AnalyzerOptions.config("F", profile)),
    ]:
        database = analyze_program(summaries, options)
        stats = run_executable(compile_with_database(phase1, database))
        assert stats.output == baseline.output
        results[label] = (stats, database)

    print(f"\n{'configuration':>15}  {'cycles':>10}  {'improvement':>11}")
    print(f"{'level 2 only':>15}  {baseline.cycles:>10,}  {'-':>11}")
    for label, (stats, _) in results.items():
        gain = 100.0 * (baseline.cycles - stats.cycles) / baseline.cycles
        print(f"{label:>15}  {stats.cycles:>10,}  {gain:>10.1f}%")

    print(
        "\nAs in the paper (section 6.2), procedure-level profiles move "
        "the numbers only\nslightly: the analyzer's normalized heuristic "
        "counts are already competitive."
    )


if __name__ == "__main__":
    main()
