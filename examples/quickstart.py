#!/usr/bin/env python3
"""Quickstart: compile a two-module Tiny-C program with and without
interprocedural register allocation, and compare the paper's metrics.

Run:
    python examples/quickstart.py
"""

from repro import AnalyzerOptions, compile_and_run, compile_program

# A small program in the paper's setting: a global counter maintained by
# procedures in one module, driven by a loop in another module.
SOURCES = {
    "counter": """
        // Module 1: a counter abstraction over a global.
        int count;
        int bump(int by) { count += by; return count; }
        int reset()      { count = 0; return 0; }
    """,
    "main": """
        // Module 2: the driver.
        extern int bump(int);
        extern int reset();
        extern int count;

        int main() {
          int round;
          int total = 0;
          for (round = 0; round < 50; round++) {
            int i;
            reset();
            for (i = 0; i < 20; i++) bump(i);
            total += count;
          }
          print(total);
          return 0;
        }
    """,
}


def main() -> None:
    # Level-2 baseline: classical intraprocedural optimization only.
    baseline = compile_and_run(SOURCES)

    # The paper's config C: spill code motion + web coloring with 6
    # reserved callee-saves registers.
    result = compile_program(
        SOURCES, analyzer_options=AnalyzerOptions.config("C")
    )
    from repro import run_executable

    promoted = run_executable(result.executable)

    assert promoted.output == baseline.output  # semantics preserved

    print("program output:", baseline.output.strip())
    print()
    print(f"{'metric':>28}  {'level 2':>10}  {'level 2 + IPA':>13}")
    for label, attribute in [
        ("cycles", "cycles"),
        ("instructions", "instructions"),
        ("memory references", "memory_references"),
        ("singleton references", "singleton_references"),
    ]:
        base_value = getattr(baseline, attribute)
        ipa_value = getattr(promoted, attribute)
        print(f"{label:>28}  {base_value:>10,}  {ipa_value:>13,}")
    gain = 100.0 * (baseline.cycles - promoted.cycles) / baseline.cycles
    print(f"\ncycle improvement: {gain:.1f}%")

    # Where did it come from?  The analyzer's decisions are inspectable.
    bump = result.database.get("bump")
    for promoted_global in bump.promoted:
        print(
            f"\n'count' lives in r{promoted_global.register} inside the "
            f"web covering bump/reset"
            f" (entry node: {promoted_global.is_entry})"
        )


if __name__ == "__main__":
    main()
