#!/usr/bin/env python3
"""A tour of spill code motion (paper section 4.2).

Builds a call-intensive program — a rarely-called driver fanning out to
hot helpers that need callee-saves registers — and shows:

* the clusters the analyzer identifies (root + members),
* the FREE / CALLER / CALLEE / MSPILL register sets per procedure,
* how the save/restore traffic moves from the hot helpers to the cluster
  root, and what that does to the dynamic counts.

Run:
    python examples/spill_motion_tour.py
"""

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    compile_program,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.target.registers import register_name

# "driver" is called once per outer iteration but calls its helpers many
# times; each helper keeps several values live across its own calls, so
# without spill motion every hot call pays callee-saves save/restore.
SOURCES = {
    "work": """
        int table[64];

        int leaf(int x) { return (x * 7 + 3) & 63; }

        int helper_a(int x) {
          int p = x * 3;
          int q = leaf(x);
          int r = leaf(x + 1);
          table[q] += p + r;
          return table[q];
        }

        int helper_b(int x) {
          int p = x - 5;
          int q = leaf(x * 2);
          int r = leaf(x ^ 3);
          table[r] -= p + q;
          return table[r];
        }

        int driver(int n) {
          int i;
          int acc = 0;
          for (i = 0; i < n; i++) {
            acc += helper_a(i) + helper_b(i);
          }
          return acc;
        }
    """,
    "main": """
        extern int driver(int);
        int main() {
          int round;
          int total = 0;
          for (round = 0; round < 10; round++)
            total += driver(40);
          print(total);
          return 0;
        }
    """,
}


def show_set(registers):
    if not registers:
        return "(empty)"
    return " ".join(register_name(r) for r in sorted(registers))


def main() -> None:
    phase1 = run_phase1(SOURCES)
    summaries = [r.summary for r in phase1]

    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase())
    )

    options = AnalyzerOptions.config("A")  # spill code motion only
    database = analyze_program(summaries, options)
    moved = run_executable(compile_with_database(phase1, database))
    assert moved.output == baseline.output

    print("clusters found:")
    for cluster in database.clusters:
        print(f"  root {cluster.root}: members "
              f"{sorted(cluster.members)}")

    print("\nregister usage sets:")
    for name in ["main", "driver", "helper_a", "helper_b", "leaf"]:
        directives = database.get(name)
        root_marker = "  (cluster root)" if directives.is_cluster_root else ""
        print(f"  {name}{root_marker}")
        print(f"    FREE   = {show_set(directives.free)}")
        print(f"    MSPILL = {show_set(directives.mspill)}")
        extra_caller = directives.caller - frozenset(range(1, 16))
        if extra_caller:
            print(f"    CALLER gained: {show_set(extra_caller)}")

    print("\ndynamic effect of moving the spill code:")
    print(f"  {'metric':>22}  {'standard':>10}  {'spill motion':>12}")
    for label, attribute in [
        ("cycles", "cycles"),
        ("singleton references", "singleton_references"),
    ]:
        print(
            f"  {label:>22}  {getattr(baseline, attribute):>10,}  "
            f"{getattr(moved, attribute):>12,}"
        )
    saved = baseline.singleton_references - moved.singleton_references
    print(f"\nsave/restore traffic eliminated: {saved:,} references")


if __name__ == "__main__":
    main()
