"""Analyzer throughput at scale: packed vs reference dataflow kernels.

The interprocedural analyzer is the piece of this system that must run
over *whole programs* — the paper's pitch is analysis cheap enough to
rerun at every link.  This harness synthesizes optimizer-shaped programs
(binary call trees per module, ~one file-scope global per procedure,
cross-module calls; see ``FuzzProgramGenerator.synthesize_large``) at
1 000 / 10 000 / 50 000 procedures and measures full ``analyze_program``
runs (config C) under both dataflow kernels.

Methodology: ``time.process_time`` (CPU, immune to scheduler noise),
best of ``ROUNDS`` interleaved runs.  The reference kernel is only timed
through 10k procedures — its per-variable whole-graph sweeps make 50k
runs take minutes, which is the point of the packed kernels.  Database
byte-identity between the two kernels is asserted at every scale where
both run.  Results land in the ``scalability`` section of
``BENCH_results.json``.

``REPRO_SCALE_PROCS`` (comma-separated procedure counts) restricts the
scales — CI's smoke step runs ``REPRO_SCALE_PROCS=1000``.
"""

import hashlib
import os
import time

from repro.analysis.liveness import compute_ir_liveness
from repro.analysis.frequency import (
    _function_walk,
    estimate_callee_saves_need,
    estimate_caller_saves_need,
)
from repro.analyzer.driver import AnalyzerOptions, analyze_program
from repro.ir import lower_source
from repro.verify.progen import FuzzProgramGenerator, generate_fuzz_program

from conftest import _SCALABILITY, print_table, record_note

#: (procedures, modules) — modules scale so each holds ~50 procedures.
SCALES = ((1_000, 20), (10_000, 200), (50_000, 1_000))
REFERENCE_CEILING = 10_000  # reference kernel not timed above this
ROUNDS = 3
TARGET_SPEEDUP_AT_10K = 10.0
#: CI floor for the 1k smoke run (observed ~9k procs/sec on a dev box;
#: the floor leaves ~6x headroom for slower runners).
MIN_PACKED_PROCS_PER_SEC_1K = 1_500


def _selected_scales():
    override = os.environ.get("REPRO_SCALE_PROCS")
    if not override:
        return SCALES
    wanted = {int(v) for v in override.split(",") if v.strip()}
    return tuple(s for s in SCALES if s[0] in wanted)


def _timed_analysis(summaries, mode, rounds=ROUNDS):
    """Best-of CPU seconds plus the database digest of one run."""
    os.environ["REPRO_DATAFLOW"] = mode
    try:
        best = None
        digest = None
        for _ in range(rounds):
            start = time.process_time()
            database = analyze_program(
                summaries, AnalyzerOptions.config("C")
            )
            elapsed = time.process_time() - start
            if best is None or elapsed < best:
                best = elapsed
            if digest is None:
                digest = hashlib.sha256(
                    database.to_json().encode()
                ).hexdigest()
        return best, digest
    finally:
        os.environ.pop("REPRO_DATAFLOW", None)


def test_analyzer_scale():
    rows = []
    for procedures, modules in _selected_scales():
        summaries = FuzzProgramGenerator(0).synthesize_large(
            modules, procedures
        )
        packed_s, packed_digest = _timed_analysis(summaries, "packed")
        entry = {
            "procedures": procedures,
            "modules": modules,
            "packed_seconds": packed_s,
            "packed_procs_per_sec": procedures / packed_s,
        }
        if procedures <= REFERENCE_CEILING:
            reference_s, reference_digest = _timed_analysis(
                summaries, "reference", rounds=max(1, ROUNDS - 1)
            )
            assert packed_digest == reference_digest, (
                f"{procedures} procs: database bytes diverge across kernels"
            )
            entry["reference_seconds"] = reference_s
            entry["reference_procs_per_sec"] = procedures / reference_s
            entry["speedup"] = reference_s / packed_s
        _SCALABILITY[str(procedures)] = entry
        rows.append((
            procedures,
            modules,
            f"{entry['packed_procs_per_sec']:.0f}",
            f"{entry['reference_procs_per_sec']:.0f}"
            if "reference_procs_per_sec" in entry else "-",
            f"{entry['speedup']:.1f}x" if "speedup" in entry else "-",
        ))

        if procedures == 1_000:
            assert (
                entry["packed_procs_per_sec"]
                > MIN_PACKED_PROCS_PER_SEC_1K
            ), entry
        if procedures == 10_000 and "speedup" in entry:
            assert entry["speedup"] >= TARGET_SPEEDUP_AT_10K, entry
            _SCALABILITY["target_speedup_at_10k"] = TARGET_SPEEDUP_AT_10K

    print_table(
        "Analyzer scale: full interprocedural analysis (config C)",
        ("procs", "modules", "packed procs/s", "reference procs/s",
         "speedup"),
        rows,
    )


def test_frequency_walk_hoisting():
    """The register-need estimators accept a precomputed liveness result
    and instruction walk; sharing them (as ``analyze_function_usage``
    does) must beat per-estimator re-derivation — the old hot path
    solved the same liveness fixpoint three times per function."""
    functions = []
    for seed in range(4):
        for module_name, text in sorted(
            generate_fuzz_program(seed).items()
        ):
            module = lower_source(text, f"s{seed}_{module_name}")
            functions.extend(module.functions.values())
    assert len(functions) >= 10

    def shared():
        for function in functions:
            liveness = compute_ir_liveness(function)
            walk = _function_walk(function)
            estimate_callee_saves_need(function, liveness, walk)
            estimate_caller_saves_need(function, liveness, walk)

    def rederived():
        for function in functions:
            estimate_callee_saves_need(function)
            estimate_caller_saves_need(function)

    best = {"shared": None, "rederived": None}
    for _ in range(5):
        for name, body in (("shared", shared), ("rederived", rederived)):
            start = time.process_time()
            body()
            elapsed = time.process_time() - start
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    speedup = best["rederived"] / best["shared"]
    _SCALABILITY["frequency_walk_hoisting"] = {
        "shared_seconds": best["shared"],
        "rederived_seconds": best["rederived"],
        "speedup": speedup,
    }
    record_note(
        f"frequency estimate hoisting: shared liveness+walk "
        f"{speedup:.2f}x faster than per-estimator re-derivation"
    )
    assert speedup > 1.1, best
