"""Ablation: how many callee-saves registers should webs get?

The paper fixes 6 registers for web coloring (config C) without
exploring the knob; this ablation sweeps the reserved-register count on
the large workload and prints the cycle improvement curve.  Diminishing
returns are expected: webs that do not interfere share registers, so a
handful of registers goes a long way.
"""

from repro import (
    AnalyzerOptions,
    compile_with_database,
    run_executable,
)
from repro.analyzer.driver import analyze_program

from conftest import print_table

REGISTER_COUNTS = (1, 2, 4, 6, 8, 12)


def test_web_register_sweep(paper_results, benchmark):
    results = paper_results["paopt"]
    summaries = [r.summary for r in results.phase1]
    baseline_cycles = results.baseline.cycles

    rows = []
    improvements = {}
    for count in REGISTER_COUNTS:
        options = AnalyzerOptions(
            global_promotion="webs",
            coloring="priority",
            num_web_registers=count,
        )
        database = analyze_program(summaries, options)
        stats = run_executable(
            compile_with_database(results.phase1, database, 2)
        )
        assert stats.output == results.baseline.output, count
        improvement = 100.0 * (baseline_cycles - stats.cycles) / baseline_cycles
        improvements[count] = improvement
        rows.append(
            (
                count,
                database.statistics.webs_colored,
                f"{improvement:.1f}%",
            )
        )
    print_table(
        "paopt: web coloring vs number of reserved registers",
        ["Registers", "Webs colored", "Cycle improvement"],
        rows,
    )

    # More registers never hurt much, and one register already helps.
    assert improvements[1] > 0
    assert improvements[12] >= improvements[1] - 1.0

    # Benchmark the analyzer at the paper's setting.
    benchmark(
        analyze_program, summaries,
        AnalyzerOptions(global_promotion="webs", num_web_registers=6),
    )
