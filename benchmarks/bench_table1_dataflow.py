"""Table 1: the L_REF / C_REF / P_REF sets for the Figure 3 example.

Prints the exact Table 1 rows and benchmarks the interprocedural
dataflow on both the 8-node example and the largest workload's call
graph.
"""

from repro.callgraph.dataflow import compute_reference_sets, eligible_globals
from repro.callgraph.graph import CallGraph

from conftest import figure3_graph, print_table, record_note

EXPECTED = {
    "A": ("g3", "g1 g2 g3", ""),
    "B": ("g1 g3", "g1 g2", "g3"),
    "C": ("g2 g3", "g2", "g3"),
    "D": ("g1", "", "g1 g3"),
    "E": ("g1 g2", "", "g1 g3"),
    "F": ("g2", "", "g2 g3"),
    "G": ("g2", "", "g2 g3"),
    "H": ("", "", "g2 g3"),
}


def _fmt(values):
    return " ".join(sorted(values)) if values else "(empty)"


def test_table1_dataflow(benchmark):
    graph, _ = figure3_graph()
    eligible = {"g1", "g2", "g3"}

    sets = benchmark(compute_reference_sets, graph, eligible)

    rows = []
    for name in "ABCDEFGH":
        rows.append(
            (name, _fmt(sets.l_ref[name]), _fmt(sets.c_ref[name]),
             _fmt(sets.p_ref[name]))
        )
        expected_l, expected_c, expected_p = EXPECTED[name]
        assert sets.l_ref[name] == frozenset(expected_l.split())
        assert sets.c_ref[name] == frozenset(expected_c.split())
        assert sets.p_ref[name] == frozenset(expected_p.split())
    print_table(
        "Table 1: reference sets for the Figure 3 call graph",
        ["Procedure", "L_REF", "C_REF", "P_REF"],
        rows,
    )


def test_table1_dataflow_at_scale(benchmark, paper_results):
    """The same dataflow over the paopt call graph (the PA Opt stand-in)."""
    summaries = [r.summary for r in paper_results["paopt"].phase1]
    graph = CallGraph.build(summaries)
    graph.normalize_weights()
    eligible = eligible_globals(summaries)

    sets = benchmark(compute_reference_sets, graph, eligible)

    populated = sum(1 for values in sets.c_ref.values() if values)
    record_note(
        f"paopt call graph: {len(graph.nodes)} procedures, "
        f"{len(eligible)} eligible globals, "
        f"{populated} procedures with non-empty C_REF"
    )
    assert populated > 0
