"""Table 5: percent reduction in dynamic singleton memory references.

A *singleton* reference is an access of a simple scalar variable
(including register save/restore traffic), as opposed to an element of
an array or a pointer dereference.  Global variable promotion attacks
exactly these references, so the reductions here are much larger than
the cycle improvements of Table 4 — the same relationship the paper
reports.
"""

from repro import ProgramDatabase, compile_with_database, run_executable

from conftest import print_table

# Table 5 of the paper (Dhrystone, Othello, War, Fgrep, CR Tool, PA Opt).
PAPER_TABLE5 = {
    "dhrystone": ("Dhrystone", [14.0, 14.0, 25.6, 25.6, 41.9, 25.6]),
    "othello": ("Othello", [0.0, -0.9, 20.8, 20.8, 20.8, 20.2]),
    "war": ("War", [10.3, 10.3, 21.4, 21.4, 21.4, 21.4]),
    "fgrep": ("Fgrep", [0.0, 0.0, 67.0, 64.3, 66.0, 67.0]),
    "crtool": ("CR Tool", [0.0, 0.1, 7.8, 7.0, 1.7, 8.2]),
    "paopt": ("PA Opt", [4.2, 5.2, 13.9, 8.3, 0.8, 13.5]),
}


def test_table5_singleton_reduction(paper_results, benchmark):
    rows = []
    measured = {}
    for name in PAPER_TABLE5:
        results = paper_results[name]
        reductions = [
            results.singleton_reduction(config) for config in "ABCDEF"
        ]
        measured[name] = reductions
        paper_name, paper_values = PAPER_TABLE5[name]
        rows.append((name, *(f"{v:5.1f}" for v in reductions)))
        rows.append(
            (f"  (paper: {paper_name})",
             *(f"{v:5.1f}" for v in paper_values))
        )
    print_table(
        "Table 5: % reduction in dynamic singleton memory references",
        ["Benchmark", "A", "B", "C", "D", "E", "F"],
        rows,
    )

    for name, reductions in measured.items():
        results = paper_results[name]
        a, b, c, d, e, f = reductions
        # Promotion reduces singleton references (the paper's key point).
        assert c > 0, name
        # And by more than spill motion alone.
        assert c >= a, name
        # Singleton reductions exceed the cycle improvements.
        assert c >= results.cycle_improvement("C") - 0.5, name
    # Web coloring beats blanket by a wide margin on the large app
    # (paper: 13.9 vs 0.8 for PA Opt).
    assert measured["paopt"][2] > measured["paopt"][4]

    # Benchmark: one baseline simulation (the measurement instrument).
    dhrystone = paper_results["dhrystone"]

    def simulate_baseline():
        executable = compile_with_database(
            dhrystone.phase1, ProgramDatabase(), 2
        )
        return run_executable(executable)

    stats = benchmark(simulate_baseline)
    assert stats.singleton_references == (
        dhrystone.baseline.singleton_references
    )


def test_promotion_does_not_touch_array_references(paper_results, benchmark):
    """Section 6.3: 'interprocedural register allocation will not reduce
    the number of references to elements of arrays and other data
    structures.'"""
    for name, results in paper_results.items():
        base_other = (
            results.baseline.memory_references
            - results.baseline.singleton_references
        )
        for config in "ABCDEF":
            stats = results.configs[config]
            other = stats.memory_references - stats.singleton_references
            assert other == base_other, (name, config)

    baseline = paper_results["dhrystone"].baseline
    benchmark(lambda: baseline.memory_references - baseline.singleton_references)
