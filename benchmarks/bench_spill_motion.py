"""Spill code motion ablation (Figures 5-6, section 6.2).

Prints the cluster census for every workload — the paper reports average
cluster sizes of 2-4 nodes and attributes the modest spill-motion gains
partly to that — and benchmarks cluster identification plus register
usage set computation.
"""

from repro.analyzer.clusters import identify_clusters
from repro.analyzer.regsets import compute_register_sets
from repro.callgraph.graph import CallGraph

from repro import AnalyzerOptions
from repro.analyzer.driver import analyze_program

from conftest import print_table, record_note


def test_cluster_census(paper_results, benchmark):
    rows = []
    for name, results in paper_results.items():
        database = results.databases["A"]
        clusters = database.clusters
        if clusters:
            sizes = [len(c.members) + 1 for c in clusters]
            average = sum(sizes) / len(sizes)
            largest = max(sizes)
        else:
            average = largest = 0
        mspill_regs = sum(
            len(database.get(c.root).mspill) for c in clusters
        )
        rows.append(
            (
                name,
                len(clusters),
                f"{average:.1f}",
                largest,
                mspill_regs,
                f"{results.cycle_improvement('A'):.1f}%",
            )
        )
    print_table(
        "Cluster census (config A: spill code motion only)",
        ["Benchmark", "Clusters", "Avg size", "Largest", "MSPILL regs",
         "Cycle gain"],
        rows,
    )
    record_note("paper: average cluster size ranged between 2 and 4 "
                "nodes; spill motion alone gained 0-6%")

    # Shape: like the paper, spill motion alone is a small effect.
    for name, results in paper_results.items():
        assert -2.0 < results.cycle_improvement("A") < 15.0, name

    # Benchmark cluster identification + register set computation.
    summaries = [r.summary for r in paper_results["paopt"].phase1]
    graph = CallGraph.build(summaries)
    graph.normalize_weights()

    def spill_motion_analysis():
        dominators = graph.dominator_tree()
        clusters = identify_clusters(graph, dominators)
        return compute_register_sets(graph, clusters, dominators, {})

    sets = benchmark(spill_motion_analysis)
    assert sets


def test_mspill_only_at_cluster_roots(paper_results, benchmark):
    """Database invariant from section 4.2.3: 'the MSPILL sets will
    contain registers only for cluster root nodes.'"""
    for name, results in paper_results.items():
        database = results.databases["A"]
        roots = {c.root for c in database.clusters}
        for proc_name, directives in database.procedures.items():
            if directives.mspill:
                assert proc_name in roots, (name, proc_name)

    database = paper_results["paopt"].databases["A"]
    benchmark(lambda: [d.validate() for d in database.procedures.values()])


def test_profile_guided_spill_motion_comparable(paper_results, benchmark):
    """Section 6.2: profile data was 'inconclusive' for these
    algorithms — heuristic counts do about as well.  Check B stays
    within a few points of A."""
    rows = []
    for name, results in paper_results.items():
        a = results.cycle_improvement("A")
        b = results.cycle_improvement("B")
        rows.append((name, f"{a:.1f}%", f"{b:.1f}%"))
        assert abs(a - b) < 10.0, name
    print_table(
        "Heuristic (A) vs profile-guided (B) spill motion",
        ["Benchmark", "A", "B"],
        rows,
    )

    results = paper_results["dhrystone"]
    summaries = [r.summary for r in results.phase1]
    benchmark(
        analyze_program, summaries,
        AnalyzerOptions.config("B", results.profile),
    )
