"""Table 4: percentage performance improvement over level-2 optimization.

Regenerates the paper's headline table: for every benchmark program and
every analyzer configuration A-F, the cycle-count improvement over the
level-2 (intraprocedural-only) baseline, with the paper's own numbers
printed alongside for shape comparison.

The expected *shape* (not absolute values — our PRISM substrate is not
the authors' PA-RISC testbed):

* configs with global variable promotion (C-F) beat spill motion alone
  (A-B);
* the compiler-style workload (protoc, the Proto C stand-in) benefits
  the most;
* web coloring (C) is at least as good as blanket promotion (E) on the
  large many-global program (paopt), while blanket can win on small
  programs.
"""

from repro import AnalyzerOptions, compile_with_database, run_executable
from repro.analyzer.driver import analyze_program

from conftest import CONFIG_LEGEND, print_table, record_note

# Table 4 of the paper, for side-by-side display.
PAPER_TABLE4 = {
    "dhrystone": ("Dhrystone", [0.8, 0.8, 3.4, 3.4, 5.5, 3.4]),
    "fgrep": ("Fgrep", [0.0, 0.0, 8.8, 8.4, 8.6, 8.8]),
    "othello": ("Othello", [0.1, 0.0, 4.8, 4.8, 4.7, 4.9]),
    "war": ("War", [1.2, 1.2, 3.7, 3.7, 3.7, 3.7]),
    "crtool": ("CR Tool", [0.0, 0.0, 2.2, 1.5, 0.8, 2.3]),
    "protoc": ("Proto C", [None, None, 18.7, 9.1, 18.7, None]),
    "paopt": ("PA Opt", [6.0, 6.0, 9.0, 7.0, 7.0, 9.0]),
}


def test_table4_percentage_improvement(paper_results, benchmark):
    rows = []
    measured = {}
    for name, results in paper_results.items():
        improvements = [
            results.cycle_improvement(config) for config in "ABCDEF"
        ]
        measured[name] = improvements
        paper_name, paper_values = PAPER_TABLE4[name]
        rows.append(
            (name, *(f"{v:5.1f}" for v in improvements))
        )
        rows.append(
            (
                f"  (paper: {paper_name})",
                *(
                    f"{v:5.1f}" if v is not None else "  n/a"
                    for v in paper_values
                ),
            )
        )
    print_table(
        "Table 4: % cycle improvement over level-2 optimization",
        ["Benchmark", "A", "B", "C", "D", "E", "F"],
        rows,
    )
    record_note("")
    for config, legend in CONFIG_LEGEND.items():
        record_note(f"  {config} = {legend}")

    # Shape assertions.
    for name, improvements in measured.items():
        a, b, c, d, e, f = improvements
        # No configuration may regress the baseline badly.
        assert all(v > -2.0 for v in improvements), name
        # Promotion beats spill motion alone.
        assert c >= a - 0.5, name
    # The compiler-style workload gains the most from promotion.
    assert measured["protoc"][2] == max(m[2] for m in measured.values())
    # Web coloring >= blanket promotion on the large application.
    assert measured["paopt"][2] >= measured["paopt"][4]

    # Benchmark: the full config-C pipeline on the smallest workload.
    dhrystone = paper_results["dhrystone"]
    summaries = [r.summary for r in dhrystone.phase1]

    def compile_and_simulate():
        database = analyze_program(summaries, AnalyzerOptions.config("C"))
        executable = compile_with_database(dhrystone.phase1, database, 2)
        return run_executable(executable)

    stats = benchmark(compile_and_simulate)
    assert stats.output == dhrystone.baseline.output


def test_spill_motion_alone_is_modest(paper_results, benchmark):
    """Section 6.2: 'Spill code motion typically provides a small
    reduction in instructions executed; global variable promotion has a
    larger impact.'"""
    gains_a = []
    gains_c = []
    for results in paper_results.values():
        gains_a.append(results.cycle_improvement("A"))
        gains_c.append(results.cycle_improvement("C"))
    mean_a = sum(gains_a) / len(gains_a)
    mean_c = sum(gains_c) / len(gains_c)
    record_note(f"mean improvement: spill motion only {mean_a:.1f}%, "
                f"with promotion {mean_c:.1f}%")
    assert mean_c > mean_a

    summaries = [
        r.summary for r in paper_results["dhrystone"].phase1
    ]
    benchmark(analyze_program, summaries, AnalyzerOptions.config("A"))
