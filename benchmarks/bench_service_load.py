"""Compile-service load: 100+ concurrent edit sessions vs serial truth.

The daemon's whole claim is that many interactive sessions can share one
scheduler substrate — artifact cache, incremental analyzer state — and
still get exactly the executables a cold serial pipeline would produce.
This harness opens ``REPRO_SERVICE_SESSIONS`` concurrent client threads
(default 100) against one daemon.  Each session is seeded from a small
pool of fuzz programs (``FuzzProgramGenerator``), compiles, applies a
seeded ``mutate`` edit, and recompiles.  Every fingerprint that comes
back over the wire is checked byte-for-byte against a fresh, serial,
uncached compile of the same sources.

Sessions deliberately reuse seeds (pool of ~25 distinct programs), so
the run exercises both reuse axes at once: cross-session dedupe through
the shared sharded cache, and per-edit incremental reuse inside a
session.  Client-side request latencies are recorded per operation and
reported as p50/p95.  Results land in the ``service_load`` section of
``BENCH_results.json``.

``REPRO_SERVICE_SESSIONS`` restricts the session count — CI's smoke
step runs with 12.
"""

import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro import AnalyzerOptions, CompilationScheduler
from repro.linker.link import executable_fingerprint
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.verify.progen import FuzzProgramGenerator

from conftest import _SERVICE_LOAD, print_table, record_note

DEFAULT_SESSIONS = 100
SEED_POOL_CAP = 25
CONFIG = "C"
#: Floor for the shared-cache hit rate at full load: with ~4 sessions
#: per distinct program, most phase-1/phase-2 artifacts are compiled
#: once and then served from the cache.
MIN_HIT_RATE_FULL_LOAD = 0.30


def _session_count() -> int:
    override = os.environ.get("REPRO_SERVICE_SESSIONS")
    sessions = int(override) if override else DEFAULT_SESSIONS
    if sessions < 2:
        raise ValueError("REPRO_SERVICE_SESSIONS must be >= 2")
    return sessions


def _program_pair(seed: int):
    """The session's initial sources and their seeded one-step edit."""
    generator = FuzzProgramGenerator(seed)
    sources = generator.generate()
    mutated = generator.mutate(sources, step=1)
    return sources, mutated


def _serial_fingerprints(seeds):
    """seed -> (initial, mutated) fingerprints from cold serial compiles."""
    truth = {}
    options = AnalyzerOptions.config(CONFIG)
    for seed in seeds:
        sources, mutated = _program_pair(seed)
        pair = []
        for program in (sources, mutated):
            with CompilationScheduler(jobs=1) as scheduler:
                result = scheduler.compile_program(
                    dict(program), 2, options
                )
            pair.append(executable_fingerprint(result.executable))
        truth[seed] = tuple(pair)
    return truth


def _drive_session(path, seed, latencies):
    """One edit session: open, compile, seeded edit, recompile, close."""
    sources, mutated = _program_pair(seed)

    def timed(operation, fn):
        start = time.perf_counter()
        result = fn()
        latencies.append((operation, time.perf_counter() - start))
        return result

    with ServiceClient.connect_unix(path) as conn:
        session = timed(
            "open_session",
            lambda: conn.open_session(dict(sources), config=CONFIG),
        )["session"]
        first = timed("compile", lambda: conn.compile(session))
        for name in sorted(mutated):
            if sources.get(name) != mutated[name]:
                timed(
                    "edit",
                    lambda m=name: conn.edit(session, m, mutated[m]),
                )
        second = timed("compile", lambda: conn.compile(session))
        timed("close", lambda: conn.close_session(session))
    return seed, first["fingerprint"], second["fingerprint"]


def _percentile(values, fraction) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(fraction * len(ranked)))
    return ranked[index]


def test_service_load():
    sessions = _session_count()
    pool = max(2, min(SEED_POOL_CAP, sessions // 4 or 2))
    seeds = tuple(range(pool))
    truth = _serial_fingerprints(seeds)

    latencies: list = []  # (operation, seconds); list.append is atomic
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp, \
            ServiceThread(unix_path=os.path.join(tmp, "svc.sock")) as handle:
        path = handle.service.unix_path
        open_wall = time.perf_counter()
        with ThreadPoolExecutor(max_workers=sessions) as executor:
            outcomes = list(
                executor.map(
                    lambda i: _drive_session(
                        path, seeds[i % pool], latencies
                    ),
                    range(sessions),
                )
            )
        load_wall = time.perf_counter() - open_wall
        with ServiceClient.connect_unix(path) as conn:
            stats = conn.stats()
    total_wall = time.perf_counter() - started

    # Byte-identity: every daemon fingerprint equals the serial truth.
    mismatches = [
        (seed, which)
        for seed, first, second in outcomes
        for which, got in (("initial", first), ("mutated", second))
        if got != truth[seed][0 if which == "initial" else 1]
    ]
    assert not mismatches, mismatches
    assert len(outcomes) == sessions

    by_operation: dict = {}
    for operation, seconds in latencies:
        by_operation.setdefault(operation, []).append(seconds)
    latency_summary = {
        operation: {
            "count": len(values),
            "p50_ms": 1000 * _percentile(values, 0.50),
            "p95_ms": 1000 * _percentile(values, 0.95),
        }
        for operation, values in sorted(by_operation.items())
    }

    hit_rate = stats["cache"]["hit_rate"]
    compiles = stats["compiles_total"]
    _SERVICE_LOAD.update({
        "sessions": sessions,
        "distinct_programs": pool,
        "workers": stats["workers"],
        "cache_shards": stats["cache"]["shards"],
        "requests_total": stats["requests_total"],
        "compiles_total": compiles,
        "cache_hit_rate": hit_rate,
        "wall_seconds": load_wall,
        "sessions_per_sec": sessions / load_wall,
        "compiles_per_sec": compiles / load_wall,
        "latency": latency_summary,
        "byte_identical": True,
    })

    print_table(
        f"Service load: {sessions} concurrent edit sessions "
        f"({pool} distinct programs, {stats['workers']} workers)",
        ("request", "count", "p50 ms", "p95 ms"),
        [
            (operation, summary["count"],
             f"{summary['p50_ms']:.1f}", f"{summary['p95_ms']:.1f}")
            for operation, summary in latency_summary.items()
        ],
    )
    record_note(
        f"service load: {compiles} compiles in {load_wall:.2f}s "
        f"({compiles / load_wall:.1f}/s), cache hit rate "
        f"{hit_rate:.2f}, all fingerprints byte-identical to serial"
    )

    assert compiles == 2 * sessions
    if sessions >= DEFAULT_SESSIONS:
        assert hit_rate >= MIN_HIT_RATE_FULL_LOAD, stats["cache"]
