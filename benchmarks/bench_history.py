"""Fold each benchmark session into the tracked perf history.

Every bench session already writes ``BENCH_results.json``; this module
appends the session as one point of ``benchmarks/BENCH_history.jsonl``
— the git SHA, a UTC timestamp, and every numeric scalar of the
results flattened to dotted paths (see
:mod:`repro.obs.sentinel`).  The history is the input of the
perf-regression sentinel, ``repro-explain bench --check``.

Runs two ways:

* automatically, from ``benchmarks/conftest.py`` at session end, so a
  bench run cannot forget to record itself;
* standalone — ``python benchmarks/bench_history.py [--check]`` —
  to (re)append the current results file, optionally running the
  sentinel in the same breath (non-zero exit on regression).

A point is keyed by SHA: re-running benches on the same commit
replaces its point instead of stacking duplicates, so CI's partial
runs converge to the final full session.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
DEFAULT_RESULTS = os.path.join(BENCH_DIR, "BENCH_results.json")
DEFAULT_HISTORY = os.path.join(BENCH_DIR, "BENCH_history.jsonl")

try:
    import repro  # noqa: F401 — just probing the path
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def git_sha(root: str = REPO_ROOT) -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def append_session(
    results_path: str = DEFAULT_RESULTS,
    history_path: str = DEFAULT_HISTORY,
    sha: str | None = None,
    timestamp: str | None = None,
) -> dict:
    """Append the results file as one history point; returns it."""
    from repro.obs.sentinel import append_history

    with open(results_path, encoding="utf-8") as handle:
        results = json.load(handle)
    if sha is None:
        sha = git_sha()
    if timestamp is None:
        timestamp = datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds")
    return append_history(history_path, results, sha, timestamp)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Append the bench results to the perf history"
        " (and optionally run the regression sentinel)."
    )
    parser.add_argument(
        "--results", default=DEFAULT_RESULTS,
        help="BENCH_results.json to fold (default: benchmarks/)",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY,
        help="history JSONL to append to (default: benchmarks/)",
    )
    parser.add_argument(
        "--sha", default=None,
        help="override the git SHA key (default: rev-parse HEAD)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the sentinel after appending; exit non-zero on"
        " regression",
    )
    args = parser.parse_args(argv)

    entry = append_session(
        results_path=args.results,
        history_path=args.history,
        sha=args.sha,
    )
    print(
        f"recorded {entry['sha'][:12]} "
        f"({len(entry['metrics'])} scalars) -> {args.history}"
    )
    if not args.check:
        return 0
    from repro.obs.sentinel import (
        check_regressions,
        format_check,
        read_history,
    )

    entries = read_history(args.history)
    regressions = check_regressions(entries)
    print(format_check(entries, regressions), end="")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
