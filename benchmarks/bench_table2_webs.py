"""Table 2: webs and their coloring for the Figure 3 example.

Prints the web table (variable, nodes, interfering webs, register) and
benchmarks web identification + interference + coloring, on the example
and at scale.
"""

from repro.analyzer.coloring import color_webs_priority
from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.webs import WebOptions, identify_webs
from repro.callgraph.dataflow import compute_reference_sets, eligible_globals
from repro.callgraph.graph import CallGraph

from conftest import figure3_graph, print_table, record_note

LOOSE = WebOptions(min_lref_ratio=0.0, min_single_node_refs=0.0)


def _build_webs(graph, eligible):
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(graph, sets, eligible, LOOSE)
    interference = WebInterferenceGraph(webs)
    color_webs_priority(webs, interference, graph, num_registers=2)
    return webs, interference


def test_table2_webs(benchmark):
    graph, _ = figure3_graph()
    eligible = {"g1", "g2", "g3"}

    webs, interference = benchmark(_build_webs, graph, eligible)

    register_names = {}
    next_name = [1]

    def reg_name(register):
        if register not in register_names:
            register_names[register] = f"r{next_name[0]}"
            next_name[0] += 1
        return register_names[register]

    rows = []
    ordered = sorted(webs, key=lambda w: (w.variable, sorted(w.nodes)))
    for web in ordered:
        interfering = sorted(
            other.web_id for other in webs
            if other is not web and interference.interferes(web, other)
        )
        rows.append(
            (
                web.web_id,
                web.variable,
                " ".join(sorted(web.nodes)),
                " ".join(map(str, interfering)) or "-",
                reg_name(web.register) if web.register else "uncolored",
            )
        )
    print_table(
        "Table 2: webs for the Figure 3 example (2 registers)",
        ["Web", "Variable", "Nodes", "Interferes", "Register"],
        rows,
    )
    assert len(webs) == 4
    assert all(w.register is not None for w in webs)
    assert len({w.register for w in webs}) == 2


def test_web_identification_at_scale(benchmark, paper_results):
    """Web construction over the paopt program (PA Opt stand-in)."""
    summaries = [r.summary for r in paper_results["paopt"].phase1]
    graph = CallGraph.build(summaries)
    graph.normalize_weights()
    eligible = eligible_globals(summaries)

    def build():
        sets = compute_reference_sets(graph, eligible)
        return identify_webs(graph, sets, eligible)

    webs = benchmark(build)
    live = sum(1 for w in webs if w.is_live)
    record_note(
        f"paopt: {len(eligible)} eligible globals -> {len(webs)} webs, "
        f"{live} considered for coloring"
    )
    assert len(webs) >= live > 0
