"""Allocator-strategy tournament: the paper's headline, finally measured.

The paper *claims* interprocedural webs + clusters beat purely
intraprocedural allocation on cycles and memory references; with only
one allocator in the tree that was an assertion.  This bench re-runs
the full A–F × workload matrix (reusing ``paper_results``' phase-1
artifacts, profiles, and databases) under every registered allocation
strategy, audits every executable with :mod:`repro.verify`, checks the
outputs are strategy-invariant, and emits the per-strategy
cycles/memrefs comparison into ``BENCH_results.json`` under
``allocator_tournament``.  A fuzz-corpus slice rides along so the
comparison is not workload-shaped by accident.
"""

from __future__ import annotations

import tempfile

from repro import (
    ALLOCATORS,
    AnalyzerOptions,
    CompilationScheduler,
    ProgramDatabase,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.verify.progen import generate_fuzz_program
from repro.workloads import get_workload

from conftest import (
    _ALLOCATOR_TOURNAMENT,
    _stats_payload,
    print_table,
    record_note,
)

#: The acceptance pair: the paper must beat both baselines on cycles
#: *and* memory references here, on every build.
HEADLINE_WORKLOADS = ("othello", "dhrystone")

FUZZ_SEEDS = range(5)


def _compile_run_audit(scheduler, phase1, database, allocator, max_cycles):
    executable = scheduler.compile_with_database(
        phase1, database, 2, allocator=allocator
    )
    report = scheduler.last_audit_report
    assert report is not None and report.ok, (
        allocator, report and report.format()
    )
    stats = run_executable(executable, max_cycles=max_cycles)
    return stats, report


def test_allocator_tournament(paper_results):
    audited = 0
    workload_section: dict = {}
    with tempfile.TemporaryDirectory(
        prefix="repro-tournament-cache-"
    ) as cache, CompilationScheduler(
        jobs=1, cache_dir=cache, verify=True
    ) as scheduler:
        for name, results in paper_results.items():
            max_cycles = get_workload(name).max_cycles
            builds = [("baseline", ProgramDatabase())] + [
                (config, results.databases[config]) for config in "ABCDEF"
            ]
            entry: dict = {"baseline": {}, "configs": {}}
            for config, database in builds:
                cell: dict = {}
                reference = None
                for allocator in ALLOCATORS:
                    stats, _report = _compile_run_audit(
                        scheduler, results.phase1, database, allocator,
                        max_cycles,
                    )
                    audited += 1
                    observed = (stats.output, stats.exit_code)
                    if reference is None:
                        reference = observed
                    assert observed == reference, (name, config, allocator)
                    cell[allocator] = _stats_payload(stats)
                if config == "baseline":
                    entry["baseline"] = cell
                else:
                    entry["configs"][config] = cell
            workload_section[name] = entry

        fuzz_clean = True
        for seed in FUZZ_SEEDS:
            sources = generate_fuzz_program(seed)
            phase1 = run_phase1(sources, scheduler=scheduler)
            summaries = [result.summary for result in phase1]
            for database in (
                ProgramDatabase(),
                analyze_program(summaries, AnalyzerOptions.config("A")),
            ):
                reference = None
                for allocator in ALLOCATORS:
                    stats, _report = _compile_run_audit(
                        scheduler, phase1, database, allocator, 60_000_000
                    )
                    audited += 1
                    observed = (stats.output, stats.exit_code)
                    if reference is None:
                        reference = observed
                    assert observed == reference, (seed, allocator)

    # -- the paper's headline, asserted on real numbers -----------------
    headline: dict = {}
    for name in HEADLINE_WORKLOADS:
        entry = workload_section[name]
        for config, cell in [("baseline", entry["baseline"])] + sorted(
            entry["configs"].items()
        ):
            paper = cell["paper"]
            for rival in ("linearscan", "spill-everywhere"):
                for metric in ("cycles", "memory_references"):
                    assert paper[metric] < cell[rival][metric], (
                        name, config, rival, metric
                    )
        headline[name] = {
            "config": "A",
            "cycles": {
                allocator: entry["configs"]["A"][allocator]["cycles"]
                for allocator in ALLOCATORS
            },
            "memory_references": {
                allocator: entry["configs"]["A"][allocator][
                    "memory_references"
                ]
                for allocator in ALLOCATORS
            },
        }

    _ALLOCATOR_TOURNAMENT.update(
        {
            "strategies": list(ALLOCATORS),
            "workloads": workload_section,
            "audit": {"executables_audited": audited, "clean": True},
            "fuzz": {
                "seeds": list(FUZZ_SEEDS),
                "builds": ["baseline", "A"],
                "clean": fuzz_clean,
            },
            "headline": headline,
        }
    )

    rows = []
    for name, entry in workload_section.items():
        cell = entry["configs"]["A"]
        rows.append(
            [
                name,
                cell["paper"]["cycles"],
                cell["linearscan"]["cycles"],
                cell["spill-everywhere"]["cycles"],
                cell["paper"]["memory_references"],
                cell["linearscan"]["memory_references"],
                cell["spill-everywhere"]["memory_references"],
            ]
        )
    print_table(
        "Allocator tournament - config A (cycles | memory references)",
        [
            "workload",
            "paper cyc", "linscan cyc", "spill-ev cyc",
            "paper mem", "linscan mem", "spill-ev mem",
        ],
        rows,
    )
    record_note(
        f"tournament: {audited} executables compiled, audited clean, "
        "outputs strategy-invariant"
    )
