"""Section 6.2 web census: eligible globals -> webs -> colored webs.

The paper reports for PA Opt: 500 eligible globals broke into 1094 webs,
489 were considered for coloring, and 280 colored with 6 registers;
greedy coloring colored 309 but missed important webs.  This benchmark
prints the same census for every workload and checks the qualitative
relationships.
"""

from repro import AnalyzerOptions
from repro.analyzer.driver import analyze_program

from conftest import print_table, record_note


def test_web_census(paper_results, benchmark):
    rows = []
    for name, results in paper_results.items():
        stats = results.databases["C"].statistics
        rows.append(
            (
                name,
                stats.eligible_globals,
                stats.ineligible_globals,
                stats.total_webs,
                stats.webs_considered,
                stats.webs_colored,
                stats.webs_discarded_sparse
                + stats.webs_discarded_single_low,
            )
        )
    print_table(
        "Web census (config C: 6-register priority coloring)",
        ["Benchmark", "Eligible", "Inelig.", "Webs", "Considered",
         "Colored", "Discarded"],
        rows,
    )
    record_note("paper (PA Opt): 500 eligible -> 1094 webs, "
                "489 considered, 280 colored w/ 6 registers")

    paopt = paper_results["paopt"].databases["C"].statistics
    # The large application has more webs than any single variable could
    # explain and colors more webs than the blanket budget of 6.
    assert paopt.total_webs >= paopt.eligible_globals
    assert paopt.webs_colored > 6
    assert paopt.webs_considered <= paopt.total_webs

    summaries = [r.summary for r in paper_results["paopt"].phase1]
    benchmark(analyze_program, summaries, AnalyzerOptions.config("C"))


def test_greedy_colors_at_least_as_many_webs(paper_results, benchmark):
    """Paper: greedy coloring colored 309/489 webs vs 280 for 6-register
    coloring on PA Opt — more webs, but it 'failed to color some of the
    more important webs'."""
    rows = []
    for name, results in paper_results.items():
        priority_stats = results.databases["C"].statistics
        greedy_stats = results.databases["D"].statistics
        rows.append(
            (name, priority_stats.webs_colored, greedy_stats.webs_colored)
        )
    print_table(
        "Webs colored: 6-register priority (C) vs greedy (D)",
        ["Benchmark", "C colored", "D colored"],
        rows,
    )
    for name, c_colored, d_colored in rows:
        assert d_colored >= 0
    # On the big app greedy should color at least as many webs as the
    # fixed 6-register pool does.
    paopt_row = next(r for r in rows if r[0] == "paopt")
    assert paopt_row[2] >= paopt_row[1] * 0.8

    summaries = [r.summary for r in paper_results["paopt"].phase1]
    benchmark(analyze_program, summaries, AnalyzerOptions.config("D"))
