"""Incremental analyzer: what a 10-edit editing session costs.

Replays a deterministic 10-edit session on othello and dhrystone,
analyzing each step both from scratch and through
:class:`~repro.incremental.IncrementalAnalyzer`, and compiling each
step through an incremental scheduler to count how many phase-2 object
modules actually recompile.  Prints the per-session totals and records
them into ``benchmarks/BENCH_results.json`` under
``"incremental_session"``.

The session draws the fuzz generator's *body-level* mutations (loop
traffic on a visible global, a new reference to an untouched global) —
the shape of a real editing session, where the call graph rarely moves.
Call-graph churn (address-taking, call-edge add/remove), which rightly
dirties whole reachable regions, is exercised by
``tests/incremental/test_edit_sequences.py`` and
``tests/fuzz/test_incremental_fuzz.py``.

The suite-wide cross-check (``REPRO_INCREMENTAL_CHECK``) is left to
the tests; here it is disabled so the timing numbers measure the
incremental path itself, not its shadow.
"""

import os
import tempfile
import time

from repro import AnalyzerOptions, run_phase1
from repro.analyzer.driver import analyze_program
from repro.driver.scheduler import CompilationScheduler
from repro.incremental import IncrementalAnalyzer
from repro.verify.progen import FuzzProgramGenerator
from repro.workloads import get_workload

from conftest import _INCREMENTAL_SESSION, print_table, record_note

EDITS = 10
WORKLOADS = ("othello", "dhrystone")
CONFIG = "C"


def _session_sources(name):
    """The unedited program plus EDITS seeded body-level edit steps."""
    import random

    mutator = FuzzProgramGenerator(seed=0)
    sources = dict(get_workload(name).sources)
    steps = [sources]
    for step in range(1, EDITS + 1):
        rng = random.Random(f"bench-incr-{name}-{step}")
        edited = None
        for operation in (
            mutator._mutate_body, mutator._mutate_toggle_global
        ):
            edited = operation(dict(sources), rng, step)
            if edited is not None:
                break
        sources = edited if edited is not None else sources
        steps.append(sources)
    return steps


def _run_session(name):
    options = AnalyzerOptions.config(CONFIG)
    engine = IncrementalAnalyzer(cross_check=False)
    totals = {
        "edits": EDITS,
        "config": CONFIG,
        "full_seconds": 0.0,
        "incremental_seconds": 0.0,
        "incremental_steps": 0,
        "full_fallbacks": 0,
        "webs_reused": 0,
        "webs_recomputed": 0,
        "clusters_reused": 0,
        "clusters_recomputed": 0,
        "phase2_recompiled": 0,
        "phase2_cached": 0,
        "modules": len(get_workload(name).sources),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-incr-") as cache:
        with CompilationScheduler(
            cache_dir=cache, incremental=True
        ) as scheduler:
            for step, sources in enumerate(_session_sources(name)):
                summaries = [r.summary for r in run_phase1(sources)]

                start = time.perf_counter()
                analyze_program(summaries, options)
                totals["full_seconds"] += time.perf_counter() - start

                start = time.perf_counter()
                _db, report = engine.update(summaries, options)
                totals["incremental_seconds"] += (
                    time.perf_counter() - start
                )

                if step:  # the cold step is a full run by definition
                    if report.mode == "incremental":
                        totals["incremental_steps"] += 1
                    else:
                        totals["full_fallbacks"] += 1
                    totals["webs_reused"] += report.webs_reused
                    totals["webs_recomputed"] += report.webs_recomputed
                    totals["clusters_reused"] += report.clusters_reused
                    totals["clusters_recomputed"] += (
                        report.clusters_recomputed
                    )

                result = scheduler.compile_program(
                    sources, analyzer_options=options
                )
                if step:
                    totals["phase2_recompiled"] += (
                        result.metrics.cache_misses.get("phase2", 0)
                    )
                    totals["phase2_cached"] += (
                        result.metrics.cache_hits.get("phase2", 0)
                    )
    return totals


def test_incremental_editing_session():
    rows = []
    for name in WORKLOADS:
        totals = _run_session(name)
        _INCREMENTAL_SESSION[name] = totals
        speedup = totals["full_seconds"] / max(
            totals["incremental_seconds"], 1e-9
        )
        rows.append(
            (
                name,
                f"{totals['incremental_steps']}/{EDITS}",
                f"{totals['full_seconds']:.3f}s",
                f"{totals['incremental_seconds']:.3f}s",
                f"{speedup:.1f}x",
                totals["webs_reused"],
                totals["webs_recomputed"],
                f"{totals['phase2_recompiled']}/"
                f"{totals['phase2_recompiled'] + totals['phase2_cached']}",
            )
        )

        # A session dominated by full fallbacks measures nothing.
        assert totals["incremental_steps"] > EDITS // 2, name
        # Reuse must be real: across the session most webs replay.
        replayed = totals["webs_reused"]
        rebuilt = totals["webs_recomputed"]
        assert replayed > rebuilt, name
        # Patching in place keeps directive digests stable, so phase 2
        # recompiles only a fraction of module slots across the session.
        slots = EDITS * totals["modules"]
        assert totals["phase2_recompiled"] < slots, name

    print_table(
        f"Incremental analyzer: {EDITS}-edit session (config {CONFIG})",
        ["Benchmark", "Incr steps", "Full analyze", "Incr analyze",
         "Speedup", "Webs reused", "Webs rebuilt", "Phase2 rebuilt"],
        rows,
    )
    record_note(
        "incremental = summary-diff invalidation + in-place database "
        "patching (docs/INCREMENTAL.md); phase2 rebuilt counts object "
        "modules whose directive digest or source moved"
    )
    record_note(
        "note: on these 11-13 procedure workloads the diff/bookkeeping "
        "overhead exceeds the few ms of web construction it avoids, so "
        "wall-clock favors the full run; the webs-reused column is the "
        "work avoided, and it scales with program size while the "
        "bookkeeping scales with the edit"
    )
