"""Ablation: caller-saves preallocation (section 7.6.2 / [Chow 88]).

The paper sketches, as future work, propagating caller-saves register
usage bottom-up so callers can keep values in caller-saves registers
across calls whose callee subtree never touches them.  This bench adds
the technique on top of config C and reports the extra cycle gain on
every workload, validating each run with the simulator's calling-
convention checker.
"""

from repro import AnalyzerOptions, compile_with_database
from repro.analyzer.driver import analyze_program
from repro.machine.simulator import Simulator

from conftest import print_table, record_note


def test_caller_saves_preallocation_ablation(paper_results, benchmark):
    rows = []
    gains = {}
    for name, results in paper_results.items():
        baseline_cycles = results.baseline.cycles
        summaries = [r.summary for r in results.phase1]

        plain = results.configs["C"]

        options = AnalyzerOptions.config("C")
        options.caller_saves_preallocation = True
        database = analyze_program(summaries, options)
        exe = compile_with_database(results.phase1, database, 2)
        stats = Simulator(
            exe,
            check_conventions=True,
            volatile_registers=database.convention_volatile_registers(),
        ).run()
        assert stats.output == results.baseline.output, name

        def improvement(s):
            return 100.0 * (baseline_cycles - s.cycles) / baseline_cycles

        gains[name] = (improvement(plain), improvement(stats))
        rows.append(
            (
                name,
                f"{improvement(plain):.1f}%",
                f"{improvement(stats):.1f}%",
                f"{improvement(stats) - improvement(plain):+.1f}",
            )
        )
    print_table(
        "Caller-saves preallocation ablation (config C vs C + 7.6.2)",
        ["Benchmark", "gain (C)", "gain (C+prealloc)", "delta"],
        rows,
    )
    record_note(
        "every run validated by the calling-convention checker: no call "
        "clobbered a register outside its declared set"
    )

    # The technique should help overall and never badly regress.
    deltas = [after - before for before, after in gains.values()]
    assert sum(deltas) / len(deltas) > 0
    for name, (before, after) in gains.items():
        assert after > before - 2.0, name

    summaries = [r.summary for r in paper_results["othello"].phase1]
    options = AnalyzerOptions.config("C")
    options.caller_saves_preallocation = True
    benchmark(analyze_program, summaries, options)
