"""Simulator backend throughput: compiled vs reference.

The threaded-code backend (``docs/SIMULATOR.md``) exists to make
re-simulating the full workload matrix cheap; its contract is
bit-identical statistics at >=5x the reference interpreter's simulated
instructions/sec on the two workloads that bracket the instruction mix:
``othello`` (branchy search) and ``dhrystone`` (global-heavy straight
line).

Methodology: both backends run warm (the compiled program cache is
primed before timing) and interleaved in the same process, best of
``ROUNDS`` — the ratio of same-process bests is stable even when the
host is noisy, where absolute rates are not.  Results land in the
``simulator_throughput`` section of ``BENCH_results.json`` (both the
``benchmarks/`` report and the tracked repo-root snapshot).
"""

import time

from repro import ProgramDatabase, compile_with_database, run_phase1
from repro.machine.simulator import Simulator
from repro.workloads import get_workload

from conftest import _SIM_THROUGHPUT, print_table

WORKLOADS = ("othello", "dhrystone")
ROUNDS = 9
MEMORY_WORDS = 1 << 17
TARGET_SPEEDUP = 5.0


def _measure(name: str) -> dict:
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources)
    executable = compile_with_database(phase1, ProgramDatabase())
    compiled = Simulator(
        executable, backend="compiled", memory_words=MEMORY_WORDS
    )
    reference = Simulator(
        executable, backend="reference", memory_words=MEMORY_WORDS
    )
    # Warm-up: primes the closure cache and checks the backends agree
    # on this executable before any timing.
    warm = compiled.run(workload.max_cycles)
    ref_warm = reference.run(workload.max_cycles)
    assert warm.instructions == ref_warm.instructions
    assert warm.output == ref_warm.output
    instructions = warm.instructions

    best = {"compiled": 0.0, "reference": 0.0}
    for _ in range(ROUNDS):
        for backend, simulator in (
            ("compiled", compiled), ("reference", reference)
        ):
            start = time.perf_counter()
            simulator.run(workload.max_cycles)
            elapsed = time.perf_counter() - start
            best[backend] = max(best[backend], instructions / elapsed)
    return {
        "instructions": instructions,
        "compiled_instructions_per_second": best["compiled"],
        "reference_instructions_per_second": best["reference"],
        "speedup": best["compiled"] / best["reference"],
    }


def test_compiled_backend_throughput():
    rows = []
    for name in WORKLOADS:
        result = _measure(name)
        _SIM_THROUGHPUT[name] = result
        rows.append((
            name,
            result["instructions"],
            f"{result['compiled_instructions_per_second'] / 1e6:.2f}",
            f"{result['reference_instructions_per_second'] / 1e6:.2f}",
            f"{result['speedup']:.2f}x",
        ))
    _SIM_THROUGHPUT["target_speedup"] = TARGET_SPEEDUP
    print_table(
        "Simulator throughput (compiled vs reference backend)",
        ["workload", "instructions", "compiled M/s", "reference M/s",
         "speedup"],
        rows,
    )
    for name in WORKLOADS:
        assert _SIM_THROUGHPUT[name]["speedup"] >= TARGET_SPEEDUP, (
            name, _SIM_THROUGHPUT[name]
        )
