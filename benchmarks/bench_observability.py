"""Tracing overhead smoke: disabled hooks and enabled request tracing.

The observability instrumentation stays compiled into the pipeline even
when no tracer is installed; the contract is that the disabled hooks —
ambient-tracer lookups, ``enabled`` checks, and no-op span entries —
cost under 5% of compile wall-clock.  There is no un-instrumented build
to diff against, so the measurement is constructive:

1. time an untraced othello compile (phase 1, config-C analysis,
   phase 2, link);
2. count every hook invocation the same compile performs, by swapping
   a counting (still-disabled) tracer into each instrumented module;
3. price the hooks with measured per-call no-op costs and assert that
   ``hook_seconds / compile_seconds < 0.05``.

The same per-call prices also cover the service's request-span hooks
(request/lock-wait/queue-wait/compile spans plus the event guards an
untraced daemon still executes per request), asserted to cost well
under a millisecond per request.  A second test prices *enabled*
request tracing end-to-end: the same serial edit/recompile session is
driven through an untraced and a traced daemon (best of three each),
and the traced run's server-reported compile seconds must stay within
5% of the untraced run.

Results are recorded in ``benchmarks/BENCH_results.json`` under
``"observability_overhead"``.
"""

import os
import tempfile
import timeit

from repro.analyzer.options import AnalyzerOptions
from repro.driver.scheduler import CompilationScheduler
from repro.obs.tracer import NULL_TRACER, NullTracer, current_tracer
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.verify.progen import FuzzProgramGenerator
from repro.workloads import get_workload

from conftest import _OBSERVABILITY, record_note

WORKLOAD = "othello"
CONFIG = "C"
BUDGET_FRACTION = 0.05

#: Null spans an untraced daemon opens per compile request (request,
#: lock-wait, queue-wait, compile) and the event guards it still
#: evaluates (worker-handoff, request-error).
REQUEST_SPAN_SITES = 4
REQUEST_EVENT_GUARDS = 2

#: Edit/recompile rounds of the enabled-tracing service measurement.
SERVICE_EDIT_ROUNDS = 3


class _CountingNullTracer(NullTracer):
    """Disabled tracer that tallies hook invocations.

    ``enabled`` stays ``False``, so guarded sites behave exactly as in
    the untraced compile: payload construction is skipped and only the
    guard itself runs.
    """

    def __init__(self):
        self.span_calls = 0
        self.event_calls = 0
        self.lookups = 0

    def span(self, name, **attrs):
        self.span_calls += 1
        return super().span(name, **attrs)

    def event(self, type_, **payload):
        self.event_calls += 1


#: Modules that bound ``current_tracer`` at import time; the counting
#: pass swaps each binding so lookups are tallied too.
_INSTRUMENTED_MODULES = (
    "repro.analyzer.driver",
    "repro.analyzer.coloring",
    "repro.analyzer.clusters",
    "repro.analyzer.regsets",
    "repro.machine.simulator",
)


def _compile_once(tracer=None):
    workload = get_workload(WORKLOAD)
    with CompilationScheduler(
        jobs=1, trace=tracer if tracer is not None else NULL_TRACER,
        verify=False,
    ) as scheduler:
        phase1 = scheduler.run_phase1(workload.sources)
        database = scheduler.analyze(
            [result.summary for result in phase1],
            AnalyzerOptions.config(CONFIG),
        )
        scheduler.compile_with_database(phase1, database)


def _count_hooks() -> _CountingNullTracer:
    """One compile with every hook routed through a counting tracer."""
    import importlib

    counter = _CountingNullTracer()

    def counting_lookup():
        counter.lookups += 1
        return counter

    modules = [importlib.import_module(name)
               for name in _INSTRUMENTED_MODULES]
    saved = [module.current_tracer for module in modules]
    for module in modules:
        module.current_tracer = counting_lookup
    try:
        _compile_once(tracer=counter)
    finally:
        for module, original in zip(modules, saved):
            module.current_tracer = original
    return counter


def test_disabled_tracing_overhead_under_budget():
    # Warm caches/imports, then take the best of three untraced
    # compiles as the wall-clock denominator.
    _compile_once()
    compile_seconds = min(
        timeit.timeit(_compile_once, number=1) for _ in range(3)
    )

    counter = _count_hooks()

    # Per-call prices of the disabled primitives, measured hot.
    calls = 10_000
    lookup_seconds = timeit.timeit(current_tracer, number=calls) / calls
    null_span = NULL_TRACER.span
    span_seconds = timeit.timeit(
        lambda: null_span("x"), number=calls
    ) / calls
    null_event = NULL_TRACER.event
    event_seconds = timeit.timeit(
        lambda: null_event("x"), number=calls
    ) / calls

    hook_seconds = (
        counter.lookups * lookup_seconds
        + counter.span_calls * span_seconds
        + counter.event_calls * event_seconds
    )
    fraction = hook_seconds / compile_seconds

    # Price the service's per-request disabled hooks with the same
    # measured primitives: the null spans an untraced daemon opens per
    # compile request plus its `tracer.enabled` event guards.
    flag_probe = NULL_TRACER
    flag_seconds = timeit.timeit(
        lambda: flag_probe.enabled, number=calls
    ) / calls
    request_hook_seconds = (
        REQUEST_SPAN_SITES * span_seconds
        + REQUEST_EVENT_GUARDS * flag_seconds
    )

    payload = {
        "workload": WORKLOAD,
        "config": CONFIG,
        "compile_seconds": compile_seconds,
        "hook_invocations": {
            "current_tracer_lookups": counter.lookups,
            "span_calls": counter.span_calls,
            "event_calls": counter.event_calls,
        },
        "per_call_seconds": {
            "lookup": lookup_seconds,
            "span": span_seconds,
            "event": event_seconds,
            "enabled_check": flag_seconds,
        },
        "estimated_hook_seconds": hook_seconds,
        "request_hook_seconds": request_hook_seconds,
        "overhead_fraction": fraction,
        "budget_fraction": BUDGET_FRACTION,
    }
    _OBSERVABILITY.update(payload)
    record_note(
        f"observability: disabled-tracing overhead "
        f"{100.0 * fraction:.3f}% of {compile_seconds:.3f}s compile "
        f"({counter.lookups} lookups, {counter.span_calls} spans, "
        f"{counter.event_calls} events) — budget "
        f"{100.0 * BUDGET_FRACTION:.0f}%; disabled request-span hooks "
        f"{1e6 * request_hook_seconds:.2f}µs/request"
    )
    assert fraction < BUDGET_FRACTION, (
        f"disabled tracing hooks cost {100.0 * fraction:.2f}% of "
        f"compile wall-clock (budget {100.0 * BUDGET_FRACTION:.0f}%)"
    )
    assert counter.span_calls > 0
    assert counter.lookups > 0
    # Per-request price of the untraced daemon's span hooks: four null
    # span entries and two flag checks must stay deep in the noise.
    assert request_hook_seconds < 1e-4, request_hook_seconds


def _service_session_seconds(trace_path) -> float:
    """Server-reported compile seconds of one serial edit session.

    ``trace_path`` empty forces request tracing *off* even when the
    surrounding environment sets ``REPRO_SERVICE_TRACE`` (CI's traced
    smoke step does), so the untraced control stays untraced.
    """
    generator = FuzzProgramGenerator(7)
    program = generator.generate()
    total = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-obs-svc-") as tmp, \
            ServiceThread(
                unix_path=os.path.join(tmp, "svc.sock"),
                trace_path=trace_path or "",
            ) as handle:
        with ServiceClient.connect_unix(
            handle.service.unix_path, trace="obs-overhead"
        ) as conn:
            session = conn.open_session(
                dict(program), config=CONFIG
            )["session"]
            total += conn.compile(session)["seconds"]
            for step in range(1, SERVICE_EDIT_ROUNDS + 1):
                mutated = generator.mutate(program, step=step)
                for name in sorted(mutated):
                    if program.get(name) != mutated[name]:
                        conn.edit(session, name, mutated[name])
                program = mutated
                total += conn.compile(session)["seconds"]
            conn.close_session(session)
    return total


def test_enabled_request_tracing_overhead_under_budget(tmp_path):
    # Warm imports and code paths once, then best-of-five per mode,
    # *interleaved* so machine-wide slow phases (frequency scaling,
    # other CI jobs) hit both modes alike; the min of each side is the
    # noise-free floor.  Server-reported compile seconds (not
    # wall-clock) keep socket and event-loop noise out of the
    # comparison; each run gets a fresh daemon with a cold private
    # cache, so both modes do the same work.
    _service_session_seconds("")
    trace_file = str(tmp_path / "overhead-trace.jsonl")
    untraced_runs, traced_runs = [], []
    for _ in range(5):
        untraced_runs.append(_service_session_seconds(""))
        traced_runs.append(_service_session_seconds(trace_file))
    untraced = min(untraced_runs)
    traced = min(traced_runs)
    overhead = (traced - untraced) / untraced

    _OBSERVABILITY["service_tracing"] = {
        "edit_rounds": SERVICE_EDIT_ROUNDS,
        "untraced_compile_seconds": untraced,
        "traced_compile_seconds": traced,
        "overhead_fraction": overhead,
        "budget_fraction": BUDGET_FRACTION,
    }
    record_note(
        f"observability: enabled request tracing "
        f"{untraced:.3f}s -> {traced:.3f}s compile "
        f"({100.0 * overhead:+.2f}%, budget "
        f"{100.0 * BUDGET_FRACTION:.0f}%)"
    )
    assert overhead < BUDGET_FRACTION, (
        f"enabled request tracing costs {100.0 * overhead:.2f}% "
        f"({untraced:.3f}s -> {traced:.3f}s, budget "
        f"{100.0 * BUDGET_FRACTION:.0f}%)"
    )
