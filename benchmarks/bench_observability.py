"""Disabled-tracing overhead smoke.

The observability instrumentation stays compiled into the pipeline even
when no tracer is installed; the contract is that the disabled hooks —
ambient-tracer lookups, ``enabled`` checks, and no-op span entries —
cost under 5% of compile wall-clock.  There is no un-instrumented build
to diff against, so the measurement is constructive:

1. time an untraced othello compile (phase 1, config-C analysis,
   phase 2, link);
2. count every hook invocation the same compile performs, by swapping
   a counting (still-disabled) tracer into each instrumented module;
3. price the hooks with measured per-call no-op costs and assert that
   ``hook_seconds / compile_seconds < 0.05``.

The result is recorded in ``benchmarks/BENCH_results.json`` under
``"observability_overhead"``.
"""

import timeit

from repro.analyzer.options import AnalyzerOptions
from repro.driver.scheduler import CompilationScheduler
from repro.obs.tracer import NULL_TRACER, NullTracer, current_tracer
from repro.workloads import get_workload

from conftest import _OBSERVABILITY, record_note

WORKLOAD = "othello"
CONFIG = "C"
BUDGET_FRACTION = 0.05


class _CountingNullTracer(NullTracer):
    """Disabled tracer that tallies hook invocations.

    ``enabled`` stays ``False``, so guarded sites behave exactly as in
    the untraced compile: payload construction is skipped and only the
    guard itself runs.
    """

    def __init__(self):
        self.span_calls = 0
        self.event_calls = 0
        self.lookups = 0

    def span(self, name, **attrs):
        self.span_calls += 1
        return super().span(name, **attrs)

    def event(self, type_, **payload):
        self.event_calls += 1


#: Modules that bound ``current_tracer`` at import time; the counting
#: pass swaps each binding so lookups are tallied too.
_INSTRUMENTED_MODULES = (
    "repro.analyzer.driver",
    "repro.analyzer.coloring",
    "repro.analyzer.clusters",
    "repro.analyzer.regsets",
    "repro.machine.simulator",
)


def _compile_once(tracer=None):
    workload = get_workload(WORKLOAD)
    with CompilationScheduler(
        jobs=1, trace=tracer if tracer is not None else NULL_TRACER,
        verify=False,
    ) as scheduler:
        phase1 = scheduler.run_phase1(workload.sources)
        database = scheduler.analyze(
            [result.summary for result in phase1],
            AnalyzerOptions.config(CONFIG),
        )
        scheduler.compile_with_database(phase1, database)


def _count_hooks() -> _CountingNullTracer:
    """One compile with every hook routed through a counting tracer."""
    import importlib

    counter = _CountingNullTracer()

    def counting_lookup():
        counter.lookups += 1
        return counter

    modules = [importlib.import_module(name)
               for name in _INSTRUMENTED_MODULES]
    saved = [module.current_tracer for module in modules]
    for module in modules:
        module.current_tracer = counting_lookup
    try:
        _compile_once(tracer=counter)
    finally:
        for module, original in zip(modules, saved):
            module.current_tracer = original
    return counter


def test_disabled_tracing_overhead_under_budget():
    # Warm caches/imports, then take the best of three untraced
    # compiles as the wall-clock denominator.
    _compile_once()
    compile_seconds = min(
        timeit.timeit(_compile_once, number=1) for _ in range(3)
    )

    counter = _count_hooks()

    # Per-call prices of the disabled primitives, measured hot.
    calls = 10_000
    lookup_seconds = timeit.timeit(current_tracer, number=calls) / calls
    null_span = NULL_TRACER.span
    span_seconds = timeit.timeit(
        lambda: null_span("x"), number=calls
    ) / calls
    null_event = NULL_TRACER.event
    event_seconds = timeit.timeit(
        lambda: null_event("x"), number=calls
    ) / calls

    hook_seconds = (
        counter.lookups * lookup_seconds
        + counter.span_calls * span_seconds
        + counter.event_calls * event_seconds
    )
    fraction = hook_seconds / compile_seconds

    payload = {
        "workload": WORKLOAD,
        "config": CONFIG,
        "compile_seconds": compile_seconds,
        "hook_invocations": {
            "current_tracer_lookups": counter.lookups,
            "span_calls": counter.span_calls,
            "event_calls": counter.event_calls,
        },
        "per_call_seconds": {
            "lookup": lookup_seconds,
            "span": span_seconds,
            "event": event_seconds,
        },
        "estimated_hook_seconds": hook_seconds,
        "overhead_fraction": fraction,
        "budget_fraction": BUDGET_FRACTION,
    }
    _OBSERVABILITY.update(payload)
    record_note(
        f"observability: disabled-tracing overhead "
        f"{100.0 * fraction:.3f}% of {compile_seconds:.3f}s compile "
        f"({counter.lookups} lookups, {counter.span_calls} spans, "
        f"{counter.event_calls} events) — budget "
        f"{100.0 * BUDGET_FRACTION:.0f}%"
    )
    assert fraction < BUDGET_FRACTION, (
        f"disabled tracing hooks cost {100.0 * fraction:.2f}% of "
        f"compile wall-clock (budget {100.0 * BUDGET_FRACTION:.0f}%)"
    )
    assert counter.span_calls > 0
    assert counter.lookups > 0
