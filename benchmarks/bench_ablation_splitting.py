"""Ablation: sparse-web splitting (section 7.6.1).

The paper proposes splitting large-but-sparse webs into tighter webs
that save/restore the promoted register around certain external calls,
reducing interference and freeing the register along the middle of long
call chains.  This bench compares config C with and without splitting on
every workload.
"""

from repro import (
    AnalyzerOptions,
    compile_with_database,
    run_executable,
)
from repro.analyzer.driver import analyze_program
from repro.analyzer.webs import WebOptions

from conftest import print_table, record_note


def test_web_splitting_ablation(paper_results, benchmark):
    rows = []
    for name, results in paper_results.items():
        baseline_cycles = results.baseline.cycles
        summaries = [r.summary for r in results.phase1]

        plain_db = results.databases["C"]
        plain = results.configs["C"]

        split_options = AnalyzerOptions(
            global_promotion="webs",
            coloring="priority",
            num_web_registers=6,
            web_options=WebOptions(split_sparse_webs=True),
        )
        split_db = analyze_program(summaries, split_options)
        split_stats = run_executable(
            compile_with_database(results.phase1, split_db, 2)
        )
        assert split_stats.output == results.baseline.output, name

        def improvement(stats):
            return 100.0 * (baseline_cycles - stats.cycles) / baseline_cycles

        rows.append(
            (
                name,
                plain_db.statistics.webs_colored,
                split_db.statistics.webs_colored,
                f"{improvement(plain):.1f}%",
                f"{improvement(split_stats):.1f}%",
            )
        )
    print_table(
        "Sparse-web splitting ablation (config C vs C + splitting)",
        ["Benchmark", "webs (C)", "webs (split)", "gain (C)",
         "gain (split)"],
        rows,
    )
    record_note(
        "splitting trades web-entry locality for save/restore around "
        "wrapped calls; it helps when sparse chains block coloring"
    )

    # Splitting must never be a correctness problem and should stay in
    # the same performance ballpark.
    for name, _, _, plain_gain, split_gain in rows:
        plain_value = float(plain_gain.rstrip("%"))
        split_value = float(split_gain.rstrip("%"))
        assert split_value > plain_value - 8.0, name

    summaries = [r.summary for r in paper_results["paopt"].phase1]
    benchmark(
        analyze_program,
        summaries,
        AnalyzerOptions(
            global_promotion="webs",
            web_options=WebOptions(split_sparse_webs=True),
        ),
    )
