"""Shared infrastructure for the paper-reproduction benchmarks.

``paper_results`` runs the full experimental matrix once per pytest
session: every Table 3 workload is compiled at the level-2 baseline and
under every analyzer configuration A-F, then simulated.  Individual
benchmark modules print their table from these cached results and use
``benchmark`` to time a representative kernel of the stage they cover.

The matrix is compiled through one shared
:class:`~repro.driver.scheduler.CompilationScheduler` (parallel worker
processes when the host has more than one CPU, plus a per-session
artifact cache), so the seven analyzer configurations share every
phase-1 artifact and every phase-2 object module whose directives a
configuration change left untouched.  Alongside the printed tables the
session writes ``benchmarks/BENCH_results.json`` with the per-workload
counters and the scheduler's wall-clock/cache statistics.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

import pytest

from repro import (
    AnalyzerOptions,
    CompilationScheduler,
    ProgramDatabase,
    collect_profile,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.machine.simulator import ExecutionStats
from repro.workloads import all_workloads

CONFIG_LEGEND = {
    "A": "Spill motion only",
    "B": "Spill motion w/profile info",
    "C": "Spill motion & 6 reg coloring",
    "D": "Spill motion & greedy coloring",
    "E": "Spill motion & blanket promotion",
    "F": "Spill motion & 6 reg coloring w/profile info",
}


@dataclass
class WorkloadResults:
    """Everything measured for one workload."""

    name: str
    baseline: ExecutionStats
    configs: dict = field(default_factory=dict)  # letter -> ExecutionStats
    databases: dict = field(default_factory=dict)  # letter -> ProgramDatabase
    phase1: list = field(default_factory=list)
    profile: object = None

    def cycle_improvement(self, config: str) -> float:
        stats = self.configs[config]
        return 100.0 * (self.baseline.cycles - stats.cycles) / self.baseline.cycles

    def singleton_reduction(self, config: str) -> float:
        stats = self.configs[config]
        base = max(1, self.baseline.singleton_references)
        return 100.0 * (base - stats.singleton_references) / base


def _run_workload(name, workload, scheduler) -> WorkloadResults:
    phase1 = run_phase1(workload.sources, 2, scheduler=scheduler)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase(), 2,
                              scheduler=scheduler),
        max_cycles=workload.max_cycles,
    )
    profile = collect_profile(phase1, max_cycles=workload.max_cycles,
                              scheduler=scheduler)
    results = WorkloadResults(name, baseline, phase1=phase1,
                              profile=profile)
    for config in "ABCDEF":
        options = AnalyzerOptions.config(
            config, profile if config in "BF" else None
        )
        database = scheduler.analyze(summaries, options)
        stats = run_executable(
            compile_with_database(phase1, database, 2,
                                  scheduler=scheduler),
            max_cycles=workload.max_cycles,
        )
        if stats.output != baseline.output:  # pragma: no cover
            raise AssertionError(
                f"{name}/{config}: output diverged from baseline"
            )
        results.configs[config] = stats
        results.databases[config] = database
    _BENCH_WORKLOADS[name] = {
        "baseline": _stats_payload(baseline),
        "configs": {
            config: _stats_payload(stats)
            for config, stats in results.configs.items()
        },
    }
    return results


def _stats_payload(stats: ExecutionStats) -> dict:
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "memory_references": stats.memory_references,
        "singleton_references": stats.singleton_references,
    }


# Machine-readable mirror of the printed tables, written at session end.
_BENCH_WORKLOADS: dict = {}


# Scheduler statistics for the whole matrix, captured for the JSON
# report written at session end.
_SCHEDULER_METRICS: dict = {}


# Incremental-analyzer editing-session totals (bench_incremental.py),
# written alongside the tables at session end.
_INCREMENTAL_SESSION: dict = {}


# Disabled-tracing overhead measurements (bench_observability.py),
# written alongside the tables at session end.
_OBSERVABILITY: dict = {}


# Simulator backend throughput (bench_simulator_throughput.py), written
# alongside the tables at session end.
_SIM_THROUGHPUT: dict = {}


# Allocator-strategy tournament (bench_allocator_tournament.py): the
# full matrix re-measured under every registered allocation strategy,
# written alongside the tables at session end.
_ALLOCATOR_TOURNAMENT: dict = {}


# Analyzer scale harness (bench_analyzer_scale.py): procedures/sec of
# the packed vs reference dataflow kernels on synthesized 1k-50k
# procedure programs, written alongside the tables at session end.
_SCALABILITY: dict = {}


# Compile-service load harness (bench_service_load.py): concurrent
# edit-session throughput, cache hit rate, and request latency
# percentiles against the daemon, written alongside the tables at
# session end.
_SERVICE_LOAD: dict = {}


@pytest.fixture(scope="session")
def paper_results():
    """name -> :class:`WorkloadResults` for every Table 3 workload."""
    cpus = os.cpu_count() or 1
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        with CompilationScheduler(
            jobs=min(cpus, 8) if cpus > 1 else 1, cache_dir=cache
        ) as scheduler:
            for name, workload in all_workloads().items():
                results[name] = _run_workload(name, workload, scheduler)
            _SCHEDULER_METRICS.update(
                scheduler.metrics_snapshot().to_json_dict()
            )
    return results


FIGURE3_PROCS = {
    "A": {"calls": {"B": 1, "C": 1}, "refs": {"g3": 10}},
    "B": {"calls": {"D": 1, "E": 1}, "refs": {"g1": 10, "g3": 10}},
    "C": {"calls": {"F": 1, "G": 1}, "refs": {"g2": 10, "g3": 10}},
    "D": {"refs": {"g1": 10}},
    "E": {"refs": {"g1": 10, "g2": 10}},
    "F": {"calls": {"H": 1}, "refs": {"g2": 10}},
    "G": {"calls": {"H": 1}, "refs": {"g2": 10}},
    "H": {},
}


def figure3_graph():
    """The paper's Figure 3 call graph, built from synthetic summaries."""
    from repro.callgraph.graph import CallGraph
    from repro.frontend.summary import (
        GlobalSummary,
        ModuleSummary,
        ProcedureSummary,
    )

    summary = ModuleSummary(module_name="fig3")
    for name, spec in FIGURE3_PROCS.items():
        summary.procedures.append(
            ProcedureSummary(
                name=name,
                module="fig3",
                calls=dict(spec.get("calls", {})),
                global_refs=dict(spec.get("refs", {})),
                global_stores=dict(spec.get("refs", {})),
            )
        )
    summary.globals = [
        GlobalSummary(name=g, module="fig3") for g in ("g1", "g2", "g3")
    ]
    graph = CallGraph.build([summary])
    graph.normalize_weights()
    return graph, summary


# Rendered tables accumulate here and are replayed at session end (pytest
# captures per-test stdout, which would otherwise hide them under
# --benchmark-only) and written to benchmarks/latest_results.txt.
_RESULT_LINES: list = []


def print_table(title, headers, rows):
    """Uniform table printer for benchmark output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [
        "",
        title,
        "-" * len(title),
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    for line in lines:
        print(line)
    _RESULT_LINES.extend(lines)


def record_note(text):
    """Print and record a free-form line alongside the tables."""
    print(text)
    _RESULT_LINES.append(text)


def write_bench_report(json_path) -> dict:
    """Merge this session's sections over ``json_path`` and rewrite it.

    A partial session (one bench module selected) refreshes only the
    sections it measured instead of clobbering the full matrix.
    """
    payload = {}
    try:
        with open(json_path) as handle:
            payload.update(json.load(handle))
    except (OSError, ValueError):
        pass
    # The legend must come from this build, not the merged report: a
    # stale file written before a legend change would otherwise
    # resurrect the old wording.
    payload["legend"] = CONFIG_LEGEND
    for key, section in (
        ("workloads", _BENCH_WORKLOADS),
        ("scheduler", _SCHEDULER_METRICS),
        ("incremental_session", _INCREMENTAL_SESSION),
        ("observability_overhead", _OBSERVABILITY),
        ("simulator_throughput", _SIM_THROUGHPUT),
        ("allocator_tournament", _ALLOCATOR_TOURNAMENT),
        ("scalability", _SCALABILITY),
        ("service_load", _SERVICE_LOAD),
    ):
        if section:
            payload[key] = section
        else:
            payload.setdefault(key, {})
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _append_bench_history(json_path):
    """Fold the session into BENCH_history.jsonl (sentinel input).

    Loaded by path: ``benchmarks/`` is not a package, and the bench
    modules are imported by pytest under their own names.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "repro_bench_history",
        os.path.join(os.path.dirname(__file__), "bench_history.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.append_session(results_path=json_path)
    return os.path.join(
        os.path.dirname(__file__), "BENCH_history.jsonl"
    )


def pytest_sessionfinish(session, exitstatus):
    written = []
    if (_BENCH_WORKLOADS or _SCHEDULER_METRICS or _INCREMENTAL_SESSION
            or _OBSERVABILITY or _SIM_THROUGHPUT
            or _ALLOCATOR_TOURNAMENT or _SCALABILITY or _SERVICE_LOAD):
        json_path = os.path.join(
            os.path.dirname(__file__), "BENCH_results.json"
        )
        write_bench_report(json_path)
        written.append(json_path)
        # Refresh the tracked repo-root snapshot too, so each PR's CI
        # benchmark run leaves a committable perf-trajectory diff.
        snapshot = os.path.join(
            os.path.dirname(os.path.dirname(__file__)),
            "BENCH_results.json",
        )
        write_bench_report(snapshot)
        written.append(snapshot)
        # One history point per session (keyed by SHA, so partial CI
        # runs converge): the perf-regression sentinel's time series.
        try:
            written.append(_append_bench_history(json_path))
        except Exception as err:  # noqa: BLE001 — history is advisory;
            # a bench session must not fail for want of its bookkeeping.
            _RESULT_LINES.append(f"(bench history not recorded: {err})")
    if not _RESULT_LINES:
        return
    path = os.path.join(os.path.dirname(__file__), "latest_results.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(_RESULT_LINES) + "\n")
    written.append(path)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line("")
        reporter.write_line(
            "================ reproduced paper tables ================"
        )
        for line in _RESULT_LINES:
            reporter.write_line(line)
        reporter.write_line(
            f"(also written to {', '.join(written)})"
        )
