"""Table 3: the benchmark program inventory.

Prints our workload listing next to the paper's originals and benchmarks
the compiler first phase (the front-end cost of the two-pass system).
"""

from repro import run_phase1
from repro.workloads import all_workloads, get_workload

from conftest import print_table


def test_table3_program_inventory(benchmark):
    workloads = all_workloads()

    rows = []
    for name, workload in workloads.items():
        rows.append(
            (
                name,
                workload.lines_of_code,
                f"{workload.paper_counterpart} ({workload.paper_lines})",
                workload.description,
            )
        )
    print_table(
        "Table 3: benchmark programs (ours vs the paper's)",
        ["Name", "LoC", "Paper counterpart (LoC)", "Description"],
        rows,
    )
    assert len(rows) == 7

    # Benchmark: phase 1 over the whole suite's smallest program.
    dhrystone = get_workload("dhrystone")
    benchmark(run_phase1, dhrystone.sources, 2)


def test_phase1_scales_to_largest_program(benchmark):
    paopt = get_workload("paopt")
    results = benchmark(run_phase1, paopt.sources, 2)
    assert len(results) == len(paopt.sources)
