"""Protocol robustness: every malformed input maps to a structured
error, and nothing a client does — hostile frames, half-written
frames, vanishing mid-compile — wedges the daemon."""

import socket
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL_VERSION, request_frame
from repro.service.server import ServiceThread
from repro.verify.progen import FuzzProgramGenerator


def send_and_expect(client: ServiceClient, raw: bytes, code: str):
    client.send_raw(raw)
    response = client.recv_response()
    assert response["ok"] is False
    assert response["error"]["code"] == code
    return response


class TestMalformedFrames:
    def test_garbage_then_connection_survives(self, client):
        send_and_expect(client, b"this is not json\n", "bad-json")
        assert client.ping()["pong"] is True

    def test_non_object_frame(self, client):
        response = send_and_expect(client, b"[1, 2, 3]\n", "not-object")
        assert response["id"] is None
        assert client.ping()["pong"] is True

    def test_missing_id(self, client):
        send_and_expect(
            client, b'{"type": "ping", "version": 1}\n', "missing-id"
        )
        assert client.ping()["pong"] is True

    def test_version_mismatch(self, client):
        response = send_and_expect(
            client,
            b'{"id": 9, "type": "ping", "version": 99}\n',
            "version-mismatch",
        )
        assert response["id"] == 9  # still correlated for the client
        assert client.ping()["pong"] is True

    def test_unknown_type(self, client):
        send_and_expect(
            client,
            b'{"id": 1, "type": "rm-rf", "version": 1}\n',
            "unknown-type",
        )
        assert client.ping()["pong"] is True

    def test_missing_field(self, client):
        send_and_expect(
            client,
            b'{"id": 1, "type": "compile", "version": 1}\n',
            "missing-field",
        )
        assert client.ping()["pong"] is True

    def test_bad_field_type(self, client):
        send_and_expect(
            client,
            b'{"id": 1, "type": "compile", "version": 1, '
            b'"session": 42}\n',
            "bad-field",
        )
        assert client.ping()["pong"] is True

    def test_blank_lines_ignored(self, client):
        client.send_raw(b"\n\n")
        assert client.ping()["pong"] is True

    def test_many_bad_frames_then_work(self, client):
        for _ in range(20):
            send_and_expect(client, b"}{\n", "bad-json")
        session = client.open_session(
            {"m": "int main() { print(1); return 0; }"}
        )["session"]
        assert client.compile(session)["fingerprint"]
        client.close_session(session)


class TestSessionErrors:
    def test_unknown_session(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.compile("nope")
        assert excinfo.value.code == "unknown-session"

    def test_compile_error_is_structured(self, client):
        session = client.open_session(
            {"m": "int main( { this is not tiny-c"}
        )["session"]
        with pytest.raises(ServiceError) as excinfo:
            client.compile(session)
        assert excinfo.value.code == "internal-error"
        # The failure belongs to the client, not the daemon: the
        # session is intact and a fixed source compiles.
        client.edit(session, "m", "int main() { print(2); return 0; }")
        assert client.compile(session)["fingerprint"]
        client.close_session(session)


class TestOversizedFrames:
    def test_oversized_payload(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_MAX_FRAME", "4096")
        with ServiceThread(unix_path=str(tmp_path / "small.sock")) as handle:
            path = handle.service.unix_path
            with ServiceClient.connect_unix(path) as conn:
                try:
                    conn.send_raw(request_frame(
                        1, "open_session", sources={"m": "x" * 100_000}
                    ))
                except BrokenPipeError:
                    # The server detects the overflow, replies, and
                    # hangs up while we are still sending; the reply
                    # is already buffered on our side.
                    pass
                response = conn.recv_response()
                assert response["ok"] is False
                assert response["error"]["code"] == "frame-too-large"
                # The stream is desynced past repair, so the server
                # hangs up on this connection...
                with pytest.raises(ConnectionError):
                    conn.send_raw(
                        request_frame(2, "ping") * 200
                    )  # enough traffic to surface the close
                    while True:
                        conn.recv_response()
            # ...but the daemon itself is fine.
            with ServiceClient.connect_unix(path) as fresh:
                assert fresh.ping()["pong"] is True

    def test_frame_just_under_limit_ok(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_MAX_FRAME", "4096")
        with ServiceThread(unix_path=str(tmp_path / "ok.sock")) as handle:
            with ServiceClient.connect_unix(
                handle.service.unix_path
            ) as conn:
                assert conn.ping()["pong"] is True


class TestDisconnects:
    def test_truncated_frame_then_eof(self, service):
        """A client dying mid-frame leaves nothing to answer; the
        daemon just reaps the connection."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(service.service.unix_path)
        sock.sendall(b'{"id": 1, "type": "pi')  # no newline, ever
        sock.close()
        with ServiceClient.connect_unix(
            service.service.unix_path
        ) as fresh:
            assert fresh.ping()["pong"] is True

    def test_disconnect_mid_compile(self, service):
        """A client that fires a compile and vanishes: the job still
        completes against the session, and the daemon stays healthy."""
        sources = FuzzProgramGenerator(31).generate()
        with ServiceClient.connect_unix(
            service.service.unix_path
        ) as conn:
            session = conn.open_session(dict(sources))["session"]
        # Fire-and-vanish on a raw socket: request sent, reply unread.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(service.service.unix_path)
        sock.sendall(request_frame(1, "compile", session=session))
        sock.close()
        # The daemon finishes the abandoned job; its result lands on
        # the session state where any other connection can see it.
        deadline = time.monotonic() + 120
        with ServiceClient.connect_unix(
            service.service.unix_path
        ) as fresh:
            while time.monotonic() < deadline:
                stats = fresh.stats(session)
                if stats["compiles"] == 1:
                    break
                time.sleep(0.1)
            assert stats["compiles"] == 1
            assert stats["last_fingerprint"]
            fresh.close_session(session)

    def test_pipelined_requests_one_connection(self, client):
        """Several frames shipped before any reply is read: responses
        come back in order, ids intact."""
        frames = b"".join(
            request_frame(n, "ping") for n in range(1, 6)
        )
        client.send_raw(frames)
        for expected in range(1, 6):
            response = client.recv_response()
            assert response["id"] == expected
            assert response["ok"] is True
