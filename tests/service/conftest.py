"""Shared fixtures: one daemon per test module, clients per test."""

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceThread


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A running daemon (unix + TCP + metrics) shared by one module."""
    tmp = tmp_path_factory.mktemp("service")
    with ServiceThread(
        unix_path=str(tmp / "svc.sock"),
        host="127.0.0.1",
        metrics_port=0,
    ) as handle:
        yield handle


@pytest.fixture
def client(service):
    with ServiceClient.connect_unix(service.service.unix_path) as conn:
        yield conn
