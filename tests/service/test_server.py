"""Daemon behavior: session lifecycle, determinism vs serial compiles,
shared-cache dedupe, concurrency, metrics, graceful drain."""

import threading
import urllib.request

import pytest

from repro import AnalyzerOptions, CompilationScheduler
from repro.linker.link import executable_fingerprint
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceThread
from repro.verify.progen import FuzzProgramGenerator

SOURCES = {
    "main": """
int total;
int scale;
extern int accumulate(int x);
int main() {
  int i;
  scale = 3;
  for (i = 0; i < 20; i++) total = accumulate(i);
  print(total);
  return 0;
}
""",
    "lib": """
extern int total;
extern int scale;
int accumulate(int x) {
  total = total + x * scale;
  return total;
}
""",
}


def serial_fingerprint(sources, config="C", opt_level=2) -> str:
    """The oracle: a fresh, serial, uncached, non-incremental compile."""
    with CompilationScheduler(jobs=1) as scheduler:
        options = (
            AnalyzerOptions.config(config) if config is not None else None
        )
        result = scheduler.compile_program(sources, opt_level, options)
    return executable_fingerprint(result.executable)


class TestLifecycle:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["protocol_version"] == 1

    def test_open_compile_close(self, client):
        opened = client.open_session(dict(SOURCES))
        session = opened["session"]
        assert opened["modules"] == ["lib", "main"]
        assert opened["config"] == "C"

        out = client.compile(session)
        assert out["fingerprint"] == serial_fingerprint(SOURCES)
        assert out["modules"] == 2
        assert out["phase1_compiled"] + out["phase1_cached"] == 2

        closed = client.close_session(session)
        assert closed["closed"] is True
        with pytest.raises(ServiceError) as excinfo:
            client.compile(session)
        assert excinfo.value.code == "unknown-session"

    def test_recompile_reuses_everything(self, client):
        session = client.open_session(dict(SOURCES))["session"]
        client.compile(session)
        again = client.compile(session)
        # Unchanged sources: every phase-1/phase-2 artifact comes from
        # the shared cache and the analyzer run is incremental.
        assert again["phase1_compiled"] == 0
        assert again["phase2_compiled"] == 0
        assert again["analyze"].get("incremental") == 1
        client.close_session(session)

    def test_edit_recompiles_only_dirty_module(self, client):
        session = client.open_session(dict(SOURCES))["session"]
        first = client.compile(session)
        edited = SOURCES["lib"].replace("x * scale", "x * scale + 1")
        client.edit(session, "lib", edited)
        second = client.compile(session)
        assert second["phase1_compiled"] == 1  # only lib
        assert second["fingerprint"] != first["fingerprint"]
        assert second["fingerprint"] == serial_fingerprint(
            {**SOURCES, "lib": edited}
        )
        client.close_session(session)

    def test_edit_remove_module(self, client):
        session = client.open_session(
            {"a": "int main() { print(1); return 0; }",
             "b": "int unused(int x) { return x; }"}
        )["session"]
        out = client.edit(session, "b", None)
        assert out["modules"] == ["a"]
        with pytest.raises(ServiceError) as excinfo:
            client.edit(session, "b", None)
        assert excinfo.value.code == "unknown-module"
        client.close_session(session)

    def test_baseline_config_null(self, client):
        session = client.open_session(dict(SOURCES), config=None)["session"]
        out = client.compile(session)
        assert out["fingerprint"] == serial_fingerprint(
            SOURCES, config=None
        )
        assert out["analyze"] == {}  # no analyzer stage at baseline
        client.close_session(session)

    def test_profile_feeds_config_b(self, client):
        session = client.open_session(
            dict(SOURCES), config="B", max_cycles=2_000_000
        )["session"]
        profiled = client.profile(session)
        assert profiled["call_counts"].get("accumulate") == 20
        out = client.compile(session)

        with CompilationScheduler(jobs=1) as scheduler:
            phase1 = scheduler.run_phase1(SOURCES, 2)
            from repro.driver.pipeline import collect_profile

            profile = collect_profile(
                phase1, 2, 2_000_000, scheduler=scheduler
            )
            database = scheduler.analyze(
                [r.summary for r in phase1],
                AnalyzerOptions.config("B", profile),
            )
            executable = scheduler.compile_with_database(
                phase1, database, 2
            )
        assert out["fingerprint"] == executable_fingerprint(executable)
        client.close_session(session)

    def test_empty_session_compile_is_structured(self, client):
        session = client.open_session()["session"]
        with pytest.raises(ServiceError) as excinfo:
            client.compile(session)
        assert excinfo.value.code == "empty-session"
        client.close_session(session)


class TestSharedCache:
    def test_sessions_dedupe_against_each_other(self, client, service):
        first = client.open_session(dict(SOURCES))["session"]
        client.compile(first)
        second = client.open_session(dict(SOURCES))["session"]
        out = client.compile(second)
        # The second session never saw these sources, but the shared
        # cache did: zero phase-1 and zero phase-2 recompiles.
        assert out["phase1_compiled"] == 0
        assert out["phase2_compiled"] == 0
        assert out["fingerprint"] == serial_fingerprint(SOURCES)
        client.close_session(first)
        client.close_session(second)

    def test_server_stats_report_shared_cache(self, client):
        stats = client.stats()
        assert stats["cache"]["shards"] >= 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["workers"] >= 1

    def test_session_stats(self, client):
        session = client.open_session(dict(SOURCES))["session"]
        client.compile(session)
        stats = client.stats(session)
        assert stats["compiles"] == 1
        assert stats["modules"] == ["lib", "main"]
        assert stats["stage_tasks"].get("analyze") == 1
        client.close_session(session)


class TestConcurrency:
    def test_concurrent_sessions_match_serial(self, service):
        """Seeded edit sessions driven from racing threads produce
        byte-identical executables vs fresh serial compiles."""
        seeds = (11, 23, 47)
        failures = []
        fingerprints = {}

        def drive(seed: int) -> None:
            try:
                generator = FuzzProgramGenerator(seed)
                sources = generator.generate()
                with ServiceClient.connect_unix(
                    service.service.unix_path
                ) as conn:
                    session = conn.open_session(dict(sources))["session"]
                    first = conn.compile(session)["fingerprint"]
                    mutated = generator.mutate(sources, step=1)
                    for name, text in mutated.items():
                        if sources.get(name) != text:
                            conn.edit(session, name, text)
                    second = conn.compile(session)["fingerprint"]
                    conn.close_session(session)
                fingerprints[seed] = (sources, mutated, first, second)
            except Exception as err:  # propagated to the main thread
                failures.append((seed, repr(err)))

        threads = [
            threading.Thread(target=drive, args=(seed,))
            for seed in seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures
        for seed in seeds:
            sources, mutated, first, second = fingerprints[seed]
            assert first == serial_fingerprint(sources), seed
            assert second == serial_fingerprint(mutated), seed

    def test_tcp_listener(self, service):
        host, port = service.tcp_address
        with ServiceClient.connect_tcp(host, port) as conn:
            assert conn.ping()["pong"] is True
            session = conn.open_session(
                {"m": "int main() { print(7); return 0; }"}
            )["session"]
            assert conn.compile(session)["modules"] == 1
            conn.close_session(session)


class TestMetricsEndpoint:
    def test_prometheus_text(self, client, service):
        client.ping()  # ensure at least one request is on the books
        host, port = service.metrics_address
        body = urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=30
        ).read().decode("utf-8")
        assert "# TYPE repro_service_requests_total counter" in body
        assert "repro_service_sessions_open" in body
        assert "repro_service_cache_shards" in body
        assert "repro_service_request_seconds_bucket" in body

    def test_unknown_path_404(self, service):
        host, port = service.metrics_address
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://{host}:{port}/nope", timeout=30
            )
        assert excinfo.value.code == 404

    def test_healthz(self, service):
        host, port = service.metrics_address
        body = urllib.request.urlopen(
            f"http://{host}:{port}/healthz", timeout=30
        ).read()
        assert body == b"ok\n"


class TestDrain:
    def test_shutdown_drains_gracefully(self, tmp_path):
        with ServiceThread(unix_path=str(tmp_path / "drain.sock")) as handle:
            path = handle.service.unix_path
            with ServiceClient.connect_unix(path) as conn:
                session = conn.open_session(
                    {"m": "int main() { print(3); return 0; }"}
                )["session"]
                compiled = conn.compile(session)
                assert compiled["fingerprint"]
                assert conn.shutdown()["draining"] is True
                # The existing connection stays readable, but new work
                # is refused with a structured error.
                with pytest.raises((ServiceError, ConnectionError)) as excinfo:
                    conn.open_session({"m": "int main() { return 0; }"})
                if isinstance(excinfo.value, ServiceError):
                    assert excinfo.value.code == "shutting-down"

    def test_shutdown_mid_compile_finishes_job(self, tmp_path):
        """A shutdown racing an in-flight compile: the compile's
        response is still delivered before the daemon goes down."""
        with ServiceThread(unix_path=str(tmp_path / "race.sock")) as handle:
            path = handle.service.unix_path
            sources = FuzzProgramGenerator(5).generate()
            with ServiceClient.connect_unix(path) as conn:
                session = conn.open_session(dict(sources))["session"]
                result = {}
                refused = []

                def compile_now():
                    try:
                        result.update(conn.compile(session))
                    except ServiceError as err:
                        refused.append(err)

                worker = threading.Thread(target=compile_now)
                worker.start()
                import time

                time.sleep(0.2)  # let the compile reach the queue
                with ServiceClient.connect_unix(path) as other:
                    try:
                        other.shutdown()
                    except (ServiceError, ConnectionError):
                        pass  # lost the race with its own drain
                worker.join(timeout=300)
                if refused:  # shutdown won the race: structured refusal
                    assert refused[0].code == "shutting-down"
                else:  # drain waited for the in-flight compile
                    assert result.get(
                        "fingerprint"
                    ) == serial_fingerprint(sources)
