"""Frame-level protocol validation (no server involved)."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    request_frame,
    validate_request,
)


def frame(**overrides) -> dict:
    payload = {"id": 1, "type": "ping", "version": PROTOCOL_VERSION}
    payload.update(overrides)
    return payload


def expect_error(payload: dict, code: str) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        validate_request(payload)
    assert excinfo.value.code == code
    return excinfo.value


class TestFraming:
    def test_round_trip(self):
        payload = frame(type="stats")
        assert decode_frame(encode_frame(payload)) == payload

    def test_frame_is_one_line(self):
        assert encode_frame(frame()).endswith(b"\n")
        assert encode_frame(frame()).count(b"\n") == 1

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"this is not json\n")
        assert excinfo.value.code == "bad-json"

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b'\xff\xfe"x"\n')
        assert excinfo.value.code == "bad-json"

    def test_not_object(self):
        for literal in (b"[1,2,3]\n", b'"hello"\n', b"42\n", b"null\n"):
            with pytest.raises(ProtocolError) as excinfo:
                decode_frame(literal)
            assert excinfo.value.code == "not-object"

    def test_frame_too_large(self):
        line = encode_frame(frame(sources={"m": "x" * 100}))
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(line, limit=16)
        assert excinfo.value.code == "frame-too-large"

    def test_request_frame_validates(self):
        line = request_frame(7, "edit", session="s1", module="m",
                             text="int main() { return 0; }")
        request_id, operation, params = validate_request(
            decode_frame(line)
        )
        assert request_id == 7
        assert operation == "edit"
        assert params["module"] == "m"


class TestValidation:
    def test_missing_id(self):
        payload = frame()
        del payload["id"]
        error = expect_error(payload, "missing-id")
        assert error.request_id is None

    def test_non_scalar_id(self):
        expect_error(frame(id=[1]), "missing-id")

    def test_version_mismatch(self):
        error = expect_error(frame(version=99), "version-mismatch")
        # The error names both versions so clients can self-diagnose.
        assert "99" in error.message
        assert str(PROTOCOL_VERSION) in error.message
        assert error.request_id == 1

    def test_version_absent(self):
        payload = frame()
        del payload["version"]
        expect_error(payload, "version-mismatch")

    def test_missing_type(self):
        payload = frame()
        del payload["type"]
        expect_error(payload, "missing-type")

    def test_unknown_type(self):
        error = expect_error(frame(type="explode"), "unknown-type")
        assert "explode" in error.message

    def test_missing_required_field(self):
        expect_error(frame(type="edit", module="m", text="x"),
                     "missing-field")

    def test_wrong_field_type(self):
        expect_error(
            frame(type="edit", session=5, module="m", text="x"),
            "bad-field",
        )

    def test_unexpected_field(self):
        expect_error(frame(type="ping", shoes=2), "bad-field")

    def test_bad_sources_mapping(self):
        expect_error(
            frame(type="open_session", sources={"m": 42}), "bad-field"
        )

    def test_bad_config_letter(self):
        expect_error(
            frame(type="open_session", config="Z"), "bad-field"
        )

    def test_bad_opt_level(self):
        expect_error(
            frame(type="open_session", opt_level=9), "bad-field"
        )

    def test_null_text_removes(self):
        _id, _op, params = validate_request(
            frame(type="edit", session="s1", module="m", text=None)
        )
        assert params["text"] is None

    def test_all_operations_have_schemas(self):
        for operation in ("open_session", "edit", "compile", "profile",
                          "stats", "close", "ping", "shutdown"):
            payload = frame(type=operation)
            if operation in ("edit",):
                payload.update(session="s", module="m", text="x")
            elif operation in ("compile", "profile", "close"):
                payload.update(session="s")
            _id, parsed, _params = validate_request(payload)
            assert parsed == operation


class TestResponses:
    def test_ok_shape(self):
        response = ok_response(3, {"pong": True})
        assert response == {"id": 3, "ok": True,
                            "result": {"pong": True}}

    def test_error_shape(self):
        response = error_response(None, "bad-json", "nope")
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["code"] == "bad-json"

    def test_responses_encode(self):
        for response in (ok_response(1, {}),
                         error_response(2, "x", "y")):
            assert json.loads(encode_frame(response).decode())
