"""End-to-end request tracing through the daemon.

The contract under test: with ``trace_path`` set, every request's span
tree lands in one daemon JSONL stream tagged with the client's trace
id, and each trace id's canonicalized stream is *deterministic* — a
session driven concurrently alongside others produces byte-identical
per-trace streams to the same session driven serially against a fresh
daemon.  Plus the supporting surface: timing fields on the compile
reply, span-tree accounting, and tracing staying fully off without a
trace path.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

from repro.obs.flame import request_summaries, span_tree
from repro.obs.tracer import (
    canonicalize_request_trace,
    read_trace,
    trace_groups,
)
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.verify.progen import FuzzProgramGenerator

CONFIG = "C"
SESSIONS = 3


def _program(seed: int) -> dict:
    """Distinct program per seed: distinct artifact keys, so sessions
    cannot perturb each other's cache hit/miss pattern."""
    return FuzzProgramGenerator(100 + seed).generate()


def _drive(path: str, seed: int) -> None:
    """One session under trace id ``trace-<seed>``: compile, edit one
    module, recompile, close."""
    sources = _program(seed)
    with ServiceClient.connect_unix(
        path, trace=f"trace-{seed}"
    ) as conn:
        session = conn.open_session(
            dict(sources), config=CONFIG
        )["session"]
        conn.compile(session)
        module = sorted(sources)[0]
        conn.edit(
            session, module, sources[module] + "\nint extra_fn_t() { return 7; }\n"
        )
        conn.compile(session)
        conn.close_session(session)


def _traced_run(tmp_path, name, concurrent: bool) -> dict:
    """Run all sessions against one traced daemon; return the trace
    grouped by trace id."""
    trace = str(tmp_path / f"{name}.jsonl")
    with ServiceThread(
        unix_path=str(tmp_path / f"{name}.sock"), trace_path=trace
    ) as handle:
        path = handle.service.unix_path
        if concurrent:
            with ThreadPoolExecutor(max_workers=SESSIONS) as pool:
                list(pool.map(
                    lambda seed: _drive(path, seed), range(SESSIONS)
                ))
        else:
            for seed in range(SESSIONS):
                _drive(path, seed)
    return trace_groups(read_trace(trace))


def _stream_bytes(records) -> bytes:
    return "\n".join(
        json.dumps(record, sort_keys=True)
        for record in canonicalize_request_trace(records)
    ).encode()


def test_concurrent_traces_match_serial_byte_for_byte(tmp_path):
    concurrent = _traced_run(tmp_path, "concurrent", True)
    serial = _traced_run(tmp_path, "serial", False)
    assert sorted(concurrent) == sorted(serial) == [
        f"trace-{seed}" for seed in range(SESSIONS)
    ]
    for trace_id in serial:
        assert (
            _stream_bytes(concurrent[trace_id])
            == _stream_bytes(serial[trace_id])
        ), f"trace {trace_id} diverged between concurrent and serial"


def test_request_span_tree_shape(tmp_path):
    trace = str(tmp_path / "shape.jsonl")
    with ServiceThread(
        unix_path=str(tmp_path / "shape.sock"), trace_path=trace
    ) as handle:
        with ServiceClient.connect_unix(
            handle.service.unix_path, trace="shape"
        ) as conn:
            session = conn.open_session(
                _program(0), config=CONFIG
            )["session"]
            reply = conn.compile(session)
            conn.close_session(session)

    # The compile reply surfaces the server-side waits.
    assert reply["queue_seconds"] >= 0.0
    assert reply["lock_seconds"] >= 0.0
    assert reply["seconds"] > 0.0

    records = trace_groups(read_trace(trace))["shape"]
    roots = span_tree(records)
    assert [root["name"] for root in roots] == [
        "request", "request", "request"
    ]
    compile_root = roots[1]
    assert compile_root["data"]["op"] == "compile"
    child_names = [child["name"] for child in compile_root["children"]]
    assert child_names == ["lock-wait", "compile"]
    compile_span = compile_root["children"][1]
    inner = [child["name"] for child in compile_span["children"]]
    assert inner[0] == "queue-wait"
    for phase in ("phase1", "analyze", "phase2", "link"):
        assert phase in inner, inner
    # The worker-handoff event rides on the compile span with its
    # timing in the payload.
    assert any(
        event["type"] == "worker-handoff"
        and "seconds" in event["data"]
        for event in compile_span["events"]
    )


def test_child_spans_sum_within_request_duration(tmp_path):
    """Self-time accounting: children never exceed their parent."""
    trace = str(tmp_path / "sum.jsonl")
    with ServiceThread(
        unix_path=str(tmp_path / "sum.sock"), trace_path=trace
    ) as handle:
        with ServiceClient.connect_unix(
            handle.service.unix_path, trace="sum"
        ) as conn:
            session = conn.open_session(
                _program(1), config=CONFIG
            )["session"]
            conn.compile(session)
            conn.close_session(session)

    def check(node):
        child_total = sum(
            child["seconds"] for child in node["children"]
        )
        assert child_total <= node["seconds"] + 1e-6, (
            node["name"], child_total, node["seconds"]
        )
        for child in node["children"]:
            check(child)

    roots = span_tree(trace_groups(read_trace(trace))["sum"])
    assert roots
    for root in roots:
        check(root)

    # And the per-request summary agrees with the raw tree.
    rows = request_summaries(read_trace(trace))
    compile_rows = [row for row in rows if row["op"] == "compile"]
    assert len(compile_rows) == 1
    row = compile_rows[0]
    breakdown = (
        row["queue_wait"]
        + row["lock_wait"]
        + sum(row["phases"].values())
    )
    assert 0.0 < breakdown <= row["seconds"] + 1e-6


def test_untraced_daemon_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_TRACE", raising=False)
    with ServiceThread(
        unix_path=str(tmp_path / "plain.sock")
    ) as handle:
        assert handle.service.trace_path is None
        with ServiceClient.connect_unix(
            handle.service.unix_path, trace="ignored"
        ) as conn:
            session = conn.open_session(
                _program(2), config=CONFIG
            )["session"]
            reply = conn.compile(session)
            stats = conn.stats()
            conn.close_session(session)
    # The trace field is accepted and dropped; timing still reported.
    assert reply["queue_seconds"] >= 0.0
    assert stats["trace_path"] is None
    assert not [
        name for name in os.listdir(tmp_path)
        if name.endswith(".jsonl")
    ]


def test_trace_env_knob(tmp_path, monkeypatch):
    trace = str(tmp_path / "env.jsonl")
    monkeypatch.setenv("REPRO_SERVICE_TRACE", trace)
    with ServiceThread(
        unix_path=str(tmp_path / "env.sock")
    ) as handle:
        assert handle.service.trace_path == trace
        with ServiceClient.connect_unix(
            handle.service.unix_path
        ) as conn:
            conn.ping()
            assert conn.stats()["trace_path"] == trace
    records = read_trace(trace)
    assert records
    # Untagged clients fall back to "-" (no session either on ping).
    assert {record["trace"] for record in records} == {"-"}


def test_request_error_lands_in_trace(tmp_path):
    trace = str(tmp_path / "err.jsonl")
    with ServiceThread(
        unix_path=str(tmp_path / "err.sock"), trace_path=trace
    ) as handle:
        with ServiceClient.connect_unix(
            handle.service.unix_path, trace="err"
        ) as conn:
            try:
                conn.compile("no-such-session")
            except Exception:
                pass
    rows = request_summaries(read_trace(trace))
    assert rows[-1]["error"] == "unknown-session"
