"""PRISM instruction smoke tests: one construct/inspect/print check per
opcode, plus the operand protocol (uses/defs/rename/successors) the
allocator and liveness engine depend on."""

import copy

from repro.target import isa
from repro.target.registers import RP, RV, SP


def vregs(n):
    return [isa.VReg(i + 1, f"t{i + 1}") for i in range(n)]


def test_ldi():
    v, = vregs(1)
    instr = isa.LDI(v, 7)
    assert instr.defs() == [v] and instr.uses() == []
    instr.rename({v: 9})
    assert instr.rd == 9
    assert repr(instr) == "LDI r9, 7"


def test_lda():
    v, = vregs(1)
    instr = isa.LDA(v, "g", False)
    assert instr.symbol == "g" and not instr.is_function
    assert instr.resolved is None
    assert instr.defs() == [v]
    instr.resolved = 1024
    assert "g" in repr(instr) and "1024" in repr(instr)
    fn = isa.LDA(v, "f", True)
    assert fn.is_function and "code" in repr(fn)


def test_mov():
    a, b = vregs(2)
    instr = isa.MOV(a, b)
    assert instr.uses() == [b] and instr.defs() == [a]
    instr.rename({a: 8, b: 9})
    assert (instr.rd, instr.rs) == (8, 9)
    assert repr(instr) == "MOV r8, r9"


def test_alu():
    d, a, b = vregs(3)
    instr = isa.ALU("+", d, a, b)
    assert instr.uses() == [a, b] and instr.defs() == [d]
    instr.rename({d: 8, a: 9, b: 10})
    assert repr(instr) == "ALU[+] r8, r9, r10"


def test_alui():
    d, a = vregs(2)
    instr = isa.ALUI("-", d, a, 4)
    assert instr.uses() == [a] and instr.defs() == [d]
    assert instr.imm == 4
    instr.rename({d: SP, a: SP})
    assert repr(instr) == "ALUI[-] sp, sp, 4"


def test_cmp():
    d, a, b = vregs(3)
    instr = isa.CMP("<", d, a, b)
    assert instr.uses() == [a, b] and instr.defs() == [d]
    instr.rename({d: 8, a: 9, b: 10})
    assert repr(instr) == "CMP[<] r8, r9, r10"


def test_ldw():
    d, base = vregs(2)
    instr = isa.LDW(d, base, 3, singleton=True)
    assert instr.uses() == [base] and instr.defs() == [d]
    assert instr.singleton
    instr.rename({d: 8, base: SP})
    assert repr(instr) == "LDW r8, 3(sp) !s"
    assert not isa.LDW(d, base, 0).singleton


def test_stw():
    s, base = vregs(2)
    instr = isa.STW(s, base, 2)
    assert instr.uses() == [s, base] and instr.defs() == []
    instr.rename({s: 8, base: SP})
    assert repr(instr) == "STW r8, 2(sp)"


def test_b():
    instr = isa.B("loop")
    assert instr.successors() == ["loop"]
    assert instr.uses() == [] and instr.defs() == []
    assert repr(instr) == "B loop"
    # After object emission targets are indices: no label successors.
    instr.target = 12
    assert instr.successors() == []


def test_bc():
    a, b = vregs(2)
    instr = isa.BC("<=", a, b, "then")
    assert instr.successors() == ["then"]
    assert instr.uses() == [a, b] and instr.defs() == []
    instr.rename({a: 8, b: 9})
    assert repr(instr) == "BC[<=] r8, r9, then"
    instr.target = 3
    assert instr.successors() == []


def test_bl():
    instr = isa.BL("callee", [4, 5], [RV, RP, 4, 5])
    assert instr.is_call
    assert instr.uses() == [4, 5]
    assert set(instr.defs()) == {RV, RP, 4, 5}
    assert instr.resolved is None
    assert repr(instr) == "BL callee(r4, r5)"


def test_blr():
    t, = vregs(1)
    instr = isa.BLR(t, [4], [RV, RP])
    assert instr.is_call
    assert instr.uses() == [t, 4]
    assert instr.defs() == [RV, RP]
    instr.rename({t: 9})
    assert repr(instr) == "BLR r9(r4)"


def test_ret():
    instr = isa.RET([RV])
    assert not instr.is_call
    assert instr.uses() == [RV] and instr.defs() == []
    assert repr(instr) == "RET rv"
    assert repr(isa.RET()) == "RET"


def test_sys():
    r, = vregs(1)
    instr = isa.SYS("print", r)
    assert instr.kind == "print"
    assert instr.uses() == [r] and instr.defs() == []
    instr.rename({r: 4})
    assert repr(instr) == "SYS[print] r4"


def test_halt():
    instr = isa.HALT()
    assert instr.uses() == [] and instr.defs() == []
    assert instr.successors() == []
    assert repr(instr) == "HALT"


def test_only_calls_flagged_as_calls():
    call_classes = {isa.BL, isa.BLR}
    all_classes = [
        isa.ALU, isa.ALUI, isa.B, isa.BC, isa.BL, isa.BLR, isa.CMP,
        isa.HALT, isa.LDA, isa.LDI, isa.LDW, isa.MOV, isa.RET, isa.STW,
        isa.SYS,
    ]
    for cls in all_classes:
        assert cls.is_call == (cls in call_classes)


def test_rename_leaves_unmapped_operands_alone():
    a, b = vregs(2)
    instr = isa.ALU("*", a, b, 8)
    instr.rename({b: 9})
    assert instr.rd is a and instr.ra == 9 and instr.rb == 8


def test_copies_are_independent():
    # Object emission shallow-copies instructions and then rewrites the
    # copy's branch target; the linker mutates deep copies.  Both must
    # leave the original untouched and print identically beforehand.
    instr = isa.BC("==", 8, 9, "exit")
    shallow = copy.copy(instr)
    assert repr(shallow) == repr(instr)
    shallow.target = 5
    assert instr.target == "exit"
    call = isa.BL("f", [4], [RV, RP])
    deep = copy.deepcopy(call)
    deep.resolved = 17
    assert call.resolved is None


def test_vreg_identity_semantics():
    # Two vregs with equal uids are distinct allocator nodes: functions
    # never share vregs, and the allocator keys dicts by identity.
    a1 = isa.VReg(1, "x")
    a2 = isa.VReg(1, "x")
    assert a1 != a2
    assert len({a1, a2}) == 2
    assert repr(a1) == "v1.x"
    assert repr(isa.VReg(2)) == "v2"
