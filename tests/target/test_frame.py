"""Frame layout invariants: area ordering, non-overlap, and the
incoming/outgoing duality that lets a callee find overflow arguments
without knowing its caller's frame."""

import pytest

from repro.target.frame import FrameLayout, FrameLoc
from repro.target.registers import MAX_REG_ARGS


def full_layout():
    return FrameLayout(
        slot_sizes=[4, 1],
        num_spills=2,
        saved_registers=[16, 20, 31],
        save_rp=True,
        max_outgoing_args=6,
    )


def test_empty_layout_has_no_frame():
    layout = FrameLayout()
    assert layout.frame_size == 0


def test_frame_size_totals_every_area():
    layout = full_layout()
    # outgoing overflow (6-4=2) + spills (2) + RP (1) + saves (3)
    # + slots (4+1).
    assert layout.frame_size == 2 + 2 + 1 + 3 + 5


def test_all_offsets_distinct_and_in_frame():
    layout = full_layout()
    locations = (
        [FrameLoc("outgoing", MAX_REG_ARGS + i) for i in range(2)]
        + [FrameLoc("spill", i) for i in range(2)]
        + [FrameLoc("saved_rp")]
        + [FrameLoc("saved_reg", r) for r in (16, 20, 31)]
        + [FrameLoc("slot", i) for i in range(2)]
    )
    offsets = [layout.resolve(loc) for loc in locations]
    assert len(set(offsets)) == len(offsets)
    for offset in offsets:
        assert 0 <= offset < layout.frame_size


def test_slot_offsets_leave_room_for_slot_sizes():
    layout = full_layout()
    slot0 = layout.resolve(FrameLoc("slot", 0))
    slot1 = layout.resolve(FrameLoc("slot", 1))
    assert slot1 - slot0 == 4  # slot 0 occupies 4 words
    assert slot1 + 1 <= layout.frame_size


def test_incoming_mirrors_callers_outgoing():
    # Callee SP = caller SP - callee frame size, so for any argument
    # index: callee's incoming offset == frame_size + caller's outgoing
    # offset for the same index.
    layout = full_layout()
    for index in (MAX_REG_ARGS, MAX_REG_ARGS + 1):
        outgoing = layout.resolve(FrameLoc("outgoing", index))
        incoming = layout.resolve(FrameLoc("incoming", index))
        assert incoming == layout.frame_size + outgoing


def test_outgoing_area_sits_at_stack_bottom():
    layout = full_layout()
    assert layout.resolve(FrameLoc("outgoing", MAX_REG_ARGS)) == 0


def test_no_outgoing_words_for_register_only_calls():
    layout = FrameLayout(max_outgoing_args=MAX_REG_ARGS)
    assert layout.outgoing_words == 0
    assert layout.frame_size == 0


def test_saved_reg_lookup_by_register_number():
    layout = full_layout()
    offsets = [
        layout.resolve(FrameLoc("saved_reg", r)) for r in (16, 20, 31)
    ]
    assert offsets == sorted(offsets)
    with pytest.raises(KeyError):
        layout.resolve(FrameLoc("saved_reg", 17))  # not saved here


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FrameLoc("stack")


def test_frameloc_equality_and_repr():
    assert FrameLoc("spill", 1) == FrameLoc("spill", 1)
    assert FrameLoc("spill", 1) != FrameLoc("spill", 2)
    assert FrameLoc("spill", 1) != FrameLoc("slot", 1)
    assert len({FrameLoc("spill", 1), FrameLoc("spill", 1)}) == 1
    assert repr(FrameLoc("saved_rp")) == "{saved_rp}"
    assert repr(FrameLoc("slot", 3)) == "{slot.3}"
