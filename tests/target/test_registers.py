"""Linkage-convention invariants of the PRISM register file.

Every layer of the system leans on these properties: the analyzer's
Figure 6 sets start from CALLER_SAVES/CALLEE_SAVES, the backend draws
from ALL_ALLOCATABLE, and the simulator's convention checker assumes
exactly this partition.
"""

from repro.target.registers import (
    ALL_ALLOCATABLE,
    ARG_REGISTERS,
    CALLEE_SAVES,
    CALLER_SAVES,
    MAX_REG_ARGS,
    NUM_REGISTERS,
    RP,
    RV,
    SP,
    ZERO,
    register_name,
    register_number,
)


def test_register_file_shape():
    # DESIGN.md: 32 registers, 16 callee-saves, 13 caller-saves.
    assert NUM_REGISTERS == 32
    assert len(CALLEE_SAVES) == 16
    assert len(CALLER_SAVES) == 13


def test_special_registers_are_distinct_and_in_range():
    specials = {ZERO, RV, SP, RP}
    assert len(specials) == 4
    for register in specials:
        assert 0 <= register < NUM_REGISTERS
    assert ZERO == 0  # the simulator drops writes to register 0


def test_caller_and_callee_sets_disjoint():
    assert not CALLER_SAVES & CALLEE_SAVES


def test_allocatable_is_exactly_the_two_conventions():
    assert ALL_ALLOCATABLE == CALLER_SAVES | CALLEE_SAVES


def test_reserved_registers_never_allocatable():
    for register in (ZERO, SP, RP):
        assert register not in ALL_ALLOCATABLE


def test_return_value_register_is_caller_saves():
    assert RV in CALLER_SAVES


def test_argument_registers_consistent():
    # docs/TINYC.md: up to four arguments travel in r4-r7.
    assert ARG_REGISTERS == (4, 5, 6, 7)
    assert MAX_REG_ARGS == len(ARG_REGISTERS)
    assert set(ARG_REGISTERS) <= CALLER_SAVES
    assert RV not in ARG_REGISTERS


def test_every_register_accounted_for():
    reserved = {ZERO, SP, RP}
    assert reserved | ALL_ALLOCATABLE == set(range(NUM_REGISTERS))
    assert len(reserved) + len(ALL_ALLOCATABLE) == NUM_REGISTERS


def test_register_name_round_trips():
    for register in range(NUM_REGISTERS):
        assert register_number(register_name(register)) == register


def test_register_names_unique():
    names = [register_name(r) for r in range(NUM_REGISTERS)]
    assert len(set(names)) == NUM_REGISTERS


def test_register_name_rejects_out_of_range():
    import pytest

    with pytest.raises(ValueError):
        register_name(NUM_REGISTERS)
    with pytest.raises(ValueError):
        register_name(-1)
    with pytest.raises(ValueError):
        register_number("r99")
    with pytest.raises(ValueError):
        register_number("bogus")
