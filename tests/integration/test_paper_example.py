"""The paper's worked example (Figure 3, Tables 1 and 2), end to end.

This is the closest thing the paper gives to a unit test of the whole
analyzer: the L_REF/C_REF/P_REF sets of Table 1, the four webs of Table
2, and the 2-register coloring in which different webs of the same
variable may receive different registers.
"""

from repro.analyzer.coloring import color_webs_priority
from repro.analyzer.driver import analyze_program
from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.options import AnalyzerOptions
from repro.analyzer.webs import (
    WebOptions,
    check_web_invariants,
    identify_webs,
)
from repro.callgraph.dataflow import compute_reference_sets
from tests.support import figure3_graph

LOOSE = WebOptions(min_lref_ratio=0.0, min_single_node_refs=0.0)


def test_full_figure3_pipeline():
    graph, summary = figure3_graph()
    eligible = {"g1", "g2", "g3"}

    # Table 1.
    sets = compute_reference_sets(graph, eligible)
    assert sets.c_ref["A"] == frozenset({"g1", "g2", "g3"})
    assert sets.p_ref["H"] == frozenset({"g2", "g3"})

    # Table 2: webs.
    webs = identify_webs(graph, sets, eligible, LOOSE)
    check_web_invariants(graph, sets, webs)
    assert len(webs) == 4

    # Table 2: two registers color all four webs, with one register
    # shared between web 1 (g3: ABC) and web 4 (g2: E), the other
    # between web 2 (g2: CFG) and web 3 (g1: BDE).
    interference = WebInterferenceGraph(webs)
    color_webs_priority(webs, interference, graph, num_registers=2)
    by_shape = {frozenset(w.nodes): w for w in webs}
    assert by_shape[frozenset("ABC")].register == by_shape[
        frozenset("E")
    ].register
    assert by_shape[frozenset("CFG")].register == by_shape[
        frozenset("BDE")
    ].register
    regs = {w.register for w in webs}
    assert len(regs) == 2

    # Same-variable webs may land on different registers (the paper
    # points at Web 4 vs Web 2 for g2).
    assert by_shape[frozenset("CFG")].register != by_shape[
        frozenset("E")
    ].register


def test_figure3_through_analyzer_driver():
    _, summary = figure3_graph()
    database = analyze_program(
        [summary],
        AnalyzerOptions(
            num_web_registers=2,
            spill_code_motion=False,
            web_options=LOOSE,
        ),
    )
    assert database.statistics.webs_colored == 4
    # B is a web entry for g1 (the paper's running example).
    b = database.get("B")
    g1 = next(p for p in b.promoted if p.name == "g1")
    assert g1.is_entry
