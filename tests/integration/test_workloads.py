"""Workload sanity tests: every Table 3 program compiles, runs, and
exhibits the structural features its paper counterpart is chosen for."""

import pytest

from repro import AnalyzerOptions, compile_and_run, compile_program
from repro.workloads import all_workloads, get_workload

WORKLOAD_NAMES = list(all_workloads())


def test_registry_matches_table3():
    workloads = all_workloads()
    assert list(workloads) == [
        "dhrystone", "fgrep", "othello", "war", "crtool", "protoc",
        "paopt",
    ]
    counterparts = {w.paper_counterpart for w in workloads.values()}
    assert counterparts == {
        "Dhrystone", "Fgrep", "Othello", "War", "CR Tool", "Proto C",
        "PA Opt",
    }


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("nope")


@pytest.mark.parametrize("name", ["dhrystone", "fgrep", "protoc"])
def test_workload_runs_and_produces_output(name):
    workload = get_workload(name)
    stats = compile_and_run(
        workload.sources, max_cycles=workload.max_cycles
    )
    assert stats.output
    assert stats.cycles > 1000


def test_workloads_are_multi_module():
    for workload in all_workloads().values():
        assert len(workload.sources) >= 2, workload.name


def test_workloads_have_eligible_globals():
    """Every workload exposes promotable globals — otherwise it cannot
    exercise the paper's contribution."""
    from repro.callgraph.dataflow import eligible_globals
    from repro import run_phase1

    for name in ("dhrystone", "fgrep", "protoc"):
        workload = get_workload(name)
        phase1 = run_phase1(workload.sources)
        eligible = eligible_globals([r.summary for r in phase1])
        assert len(eligible) >= 3, name


def test_paopt_has_many_webs():
    """The big-application property: many globals, many webs, more than
    the blanket budget of 6."""
    workload = get_workload("paopt")
    result = compile_program(
        workload.sources, analyzer_options=AnalyzerOptions.config("C")
    )
    stats = result.database.statistics
    assert stats.eligible_globals > 20
    assert stats.total_webs > 20
    assert stats.webs_colored > 6  # more than blanket promotion can do


def test_dhrystone_promotion_improves_cycles():
    workload = get_workload("dhrystone")
    baseline = compile_and_run(workload.sources)
    promoted = compile_and_run(
        workload.sources, analyzer_options=AnalyzerOptions.config("C")
    )
    assert promoted.output == baseline.output
    assert promoted.cycles < baseline.cycles
    assert promoted.singleton_references < baseline.singleton_references
