"""The master correctness oracle: differential execution.

Every program must produce byte-identical output and the same exit code
at every optimization level and under every analyzer configuration
A-F (profile-driven B and F included, via :func:`collect_profile`).

All compilation is routed through a parallel, cached
:class:`~repro.driver.scheduler.CompilationScheduler`, so the fast path
— worker processes replaying warm cache entries — is exactly what gets
differentially tested against the simulator.
"""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    collect_profile,
    compile_and_run,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.driver.scheduler import CompilationScheduler
from repro.testing import generate_program
from repro.workloads import get_workload

MAX_CYCLES = 60_000_000

ALL_CONFIGS = "ABCDEF"


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    """Two forced workers + a warm artifact cache: exercises the
    process-pool and cache-replay paths on any host."""
    with CompilationScheduler(
        jobs=2, cache_dir=tmp_path_factory.mktemp("diff-cache")
    ) as sched:
        yield sched


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_all_levels_and_configs(seed, scheduler):
    sources = generate_program(seed * 31 + 7)
    phase1 = run_phase1(sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    reference = run_executable(
        compile_with_database(
            phase1, ProgramDatabase(), scheduler=scheduler
        ),
        max_cycles=MAX_CYCLES,
    )
    for level in (0, 1):
        stats = compile_and_run(
            sources, level, max_cycles=MAX_CYCLES, scheduler=scheduler
        )
        assert stats.output == reference.output, level
        assert stats.exit_code == reference.exit_code, level
    profile = collect_profile(
        phase1, max_cycles=MAX_CYCLES, scheduler=scheduler
    )
    for config in ALL_CONFIGS:
        database = analyze_program(
            summaries,
            AnalyzerOptions.config(
                config, profile if config in "BF" else None
            ),
        )
        stats = run_executable(
            compile_with_database(phase1, database, scheduler=scheduler),
            max_cycles=MAX_CYCLES,
        )
        assert stats.output == reference.output, config
        assert stats.exit_code == reference.exit_code, config


@pytest.mark.parametrize("seed", range(4))
def test_random_programs_with_profile_configs(seed, scheduler):
    sources = generate_program(seed * 17 + 3)
    phase1 = run_phase1(sources, scheduler=scheduler)
    profile = collect_profile(
        phase1, max_cycles=MAX_CYCLES, scheduler=scheduler
    )
    reference = run_executable(
        compile_with_database(
            phase1, ProgramDatabase(), scheduler=scheduler
        ),
        max_cycles=MAX_CYCLES,
    )
    summaries = [result.summary for result in phase1]
    for config in ("B", "F"):
        database = analyze_program(
            summaries, AnalyzerOptions.config(config, profile)
        )
        stats = run_executable(
            compile_with_database(phase1, database, scheduler=scheduler),
            max_cycles=MAX_CYCLES,
        )
        assert stats.output == reference.output, config


@pytest.mark.parametrize("name", ["dhrystone", "fgrep", "protoc"])
def test_workload_differential_fast(name, scheduler):
    """The three fastest workloads under every config."""
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    reference = run_executable(
        compile_with_database(
            phase1, ProgramDatabase(), scheduler=scheduler
        ),
        max_cycles=workload.max_cycles,
    )
    profile = collect_profile(
        phase1, max_cycles=workload.max_cycles, scheduler=scheduler
    )
    for config in ALL_CONFIGS:
        options = AnalyzerOptions.config(
            config, profile if config in "BF" else None
        )
        database = analyze_program(summaries, options)
        # Run under the calling-convention checker: outputs must match
        # AND every call must respect its declared clobber set.
        from repro.machine.simulator import Simulator

        stats = Simulator(
            compile_with_database(phase1, database, scheduler=scheduler),
            check_conventions=True,
            volatile_registers=database.convention_volatile_registers(),
        ).run(workload.max_cycles)
        assert stats.output == reference.output, (name, config)
        assert stats.exit_code == reference.exit_code, (name, config)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", ["othello", "war", "crtool", "paopt"]
)
def test_workload_differential_slow(name, scheduler):
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    reference = run_executable(
        compile_with_database(
            phase1, ProgramDatabase(), scheduler=scheduler
        ),
        max_cycles=workload.max_cycles,
    )
    profile = collect_profile(
        phase1, max_cycles=workload.max_cycles, scheduler=scheduler
    )
    for config in ALL_CONFIGS:
        database = analyze_program(
            summaries,
            AnalyzerOptions.config(
                config, profile if config in "BF" else None
            ),
        )
        stats = run_executable(
            compile_with_database(phase1, database, scheduler=scheduler),
            max_cycles=workload.max_cycles,
        )
        assert stats.output == reference.output, (name, config)
