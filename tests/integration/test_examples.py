"""Every example script must run cleanly (they are living documentation)."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _example_env():
    # pytest's ``pythonpath`` ini setting puts src/ on *this* process's
    # path but is not inherited by subprocesses; examples import repro,
    # so hand them the path explicitly.
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src + os.pathsep + existing if existing else src
    )
    return env


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
