"""Every example script must run cleanly (they are living documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
