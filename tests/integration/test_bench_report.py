"""Benchmark-report merge semantics (``benchmarks/conftest.py``).

``write_bench_report`` merges a session's measured sections over the
previous ``BENCH_results.json`` so partial runs refresh only what they
measured.  The merge must keep unmeasured sections, overwrite measured
ones, and never let a stale legend from the old file shadow the
current ``CONFIG_LEGEND`` (a real regression: the legend was seeded
before the merge and then clobbered by ``payload.update``).
"""

import importlib.util
import json
import os
import sys

import pytest

_BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "benchmarks",
)


@pytest.fixture()
def bench_conftest():
    """Load ``benchmarks/conftest.py`` as a throwaway module so tests
    can poke its session accumulators without touching real state."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test",
        os.path.join(_BENCH_DIR, "conftest.py"),
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def test_current_legend_survives_merge(bench_conftest, tmp_path):
    path = tmp_path / "BENCH_results.json"
    path.write_text(json.dumps({
        "legend": {"A": "stale wording from an old build"},
        "workloads": {"othello": {"baseline": {"cycles": 1}}},
    }))
    bench_conftest._SCHEDULER_METRICS.update({"jobs": 2})

    payload = bench_conftest.write_bench_report(str(path))

    assert payload["legend"] == bench_conftest.CONFIG_LEGEND
    on_disk = json.loads(path.read_text())
    assert on_disk["legend"] == bench_conftest.CONFIG_LEGEND
    # Unmeasured sections from the previous report survive; measured
    # ones are refreshed.
    assert on_disk["workloads"] == {
        "othello": {"baseline": {"cycles": 1}}
    }
    assert on_disk["scheduler"] == {"jobs": 2}


def test_fresh_report_without_previous_file(bench_conftest, tmp_path):
    path = tmp_path / "BENCH_results.json"
    bench_conftest._SIM_THROUGHPUT.update(
        {"othello": {"speedup": 6.0}}
    )

    payload = bench_conftest.write_bench_report(str(path))

    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["legend"] == bench_conftest.CONFIG_LEGEND
    assert on_disk["simulator_throughput"] == {
        "othello": {"speedup": 6.0}
    }
    # Sections nothing measured still exist, empty, so consumers can
    # index unconditionally.
    assert on_disk["workloads"] == {}
    assert on_disk["incremental_session"] == {}


def test_corrupt_previous_report_is_replaced(bench_conftest, tmp_path):
    path = tmp_path / "BENCH_results.json"
    path.write_text("{not json")
    bench_conftest._OBSERVABILITY.update({"overhead_fraction": 0.01})

    bench_conftest.write_bench_report(str(path))

    on_disk = json.loads(path.read_text())
    assert on_disk["legend"] == bench_conftest.CONFIG_LEGEND
    assert on_disk["observability_overhead"] == {
        "overhead_fraction": 0.01
    }
