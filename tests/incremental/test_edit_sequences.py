"""Randomized edit-sequence equivalence: the incremental analyzer is
byte-identical to from-scratch analysis at every step of a mutation
chain, for every configuration.

Each seeded fuzz program is pushed through a 20-step chain of seeded
mutations (body edits, call-edge additions/removals, address-taking,
new global references — :meth:`FuzzProgramGenerator.mutate`); after
every step, every configuration's incrementally patched database must
serialize identically to ``analyze_program`` run from scratch on the
same summaries.  ``REPRO_INCREMENTAL_CHECK`` (on suite-wide) shadows
each update a second time inside the engine itself.

Configs B and F consume a profile collected once from the *unmutated*
program and then held fixed across the chain — deliberately stale, the
way a real edit session's profile would be.  Mutants themselves are
never executed (call-edge mutations may create runtime recursion).
"""

import pytest

from repro import AnalyzerOptions, collect_profile, run_phase1
from repro.analyzer.driver import analyze_program
from repro.incremental import IncrementalAnalyzer
from repro.verify.progen import FuzzProgramGenerator

MAX_CYCLES = 60_000_000
STEPS = 20
SEEDS = (0, 7)


def summaries_for(sources: dict) -> list:
    return [r.summary for r in run_phase1(sources)]


@pytest.mark.parametrize("seed", SEEDS)
def test_edit_sequence_equivalence(seed):
    generator = FuzzProgramGenerator(seed)
    sources = generator.generate()
    profile = collect_profile(run_phase1(sources), max_cycles=MAX_CYCLES)

    option_sets = {
        config: AnalyzerOptions.config(
            config, profile if config in "BF" else None
        )
        for config in "ABCDEF"
    }
    engines = {config: IncrementalAnalyzer() for config in option_sets}
    saw_incremental = {config: False for config in option_sets}

    for step in range(STEPS + 1):
        if step:
            sources = generator.mutate(sources, step)
        summaries = summaries_for(sources)
        for config, options in option_sets.items():
            database, report = engines[config].update(summaries, options)
            reference = analyze_program(summaries, options)
            assert database.to_json() == reference.to_json(), (
                seed, step, config, report.mode, report.reason
            )
            if report.mode == "incremental":
                saw_incremental[config] = True

    # The chain must actually exercise the incremental path — a suite
    # that silently full-fell-back every step proves nothing.
    for config in "ABCDF":
        assert saw_incremental[config], (seed, config)
    # Config E (blanket promotion) is the documented permanent fallback.
    assert not saw_incremental["E"]


@pytest.mark.parametrize("seed", SEEDS)
def test_mutation_chain_is_deterministic(seed):
    def final_sources():
        generator = FuzzProgramGenerator(seed)
        sources = generator.generate()
        for step in range(1, STEPS + 1):
            sources = generator.mutate(sources, step)
        return sources

    first = final_sources()
    assert first == final_sources()
    # ... and every step changed something analyzable at least once
    # over the chain: the final program differs from the seed program.
    assert first != FuzzProgramGenerator(seed).generate()


def test_mutation_kinds_all_reachable():
    """Across a modest seed sweep every mutation helper fires at least
    once, so the equivalence chains cover every edit kind."""
    fired = set()
    for seed in range(6):
        generator = FuzzProgramGenerator(seed)
        sources = generator.generate()
        for step in range(1, 11):
            before = sources
            sources = generator.mutate(sources, step)
            diff = "".join(
                text for module, text in sorted(sources.items())
                if before.get(module) != text
            )
            if f"mb{step}" in diff:
                fired.add("body")
            if f"pa{step}" in diff:
                fired.add("take-address")
            if "> 999983" in diff:
                fired.add("add-call")
            if "+= 0 + (" in diff:
                fired.add("remove-call")
    assert {"body", "take-address", "add-call", "remove-call"} <= fired
