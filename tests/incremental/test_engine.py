"""Unit tests for the incremental analyzer engine.

``tests/conftest.py`` turns on ``REPRO_INCREMENTAL_CHECK``, so every
update below is already shadowed by a from-scratch analysis; the
explicit byte-identity assertions restate the contract where the test
name promises it.
"""

import pytest

from repro.analyzer.driver import analyze_program
from repro.analyzer.options import AnalyzerOptions
from repro.driver.pipeline import run_phase1
from repro.driver.scheduler import CompilationScheduler
from repro.incremental import (
    IncrementalAnalyzer,
    IncrementalMismatchError,
    diff_summaries,
)
from repro.machine.profiler import ProfileData
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def othello_sources() -> dict:
    return dict(get_workload("othello").sources)


@pytest.fixture(scope="module")
def othello_summaries(othello_sources) -> list:
    return [r.summary for r in run_phase1(othello_sources)]


def summaries_for(sources: dict) -> list:
    return [r.summary for r in run_phase1(sources)]


def edit_body(sources: dict) -> dict:
    """A single-module body edit: ``take_turn`` (oth_ai) gains a
    reference to ``evals_done``, a global it never touched."""
    edited = dict(sources)
    edited["oth_ai"] = edited["oth_ai"].replace(
        "int player = to_move;",
        "int player = to_move;\n  evals_done++;",
    )
    assert edited["oth_ai"] != sources["oth_ai"]
    return edited


# -- modes and fallbacks --------------------------------------------------


def test_first_sight_is_a_full_run(othello_summaries):
    engine = IncrementalAnalyzer()
    database, report = engine.update(
        othello_summaries, AnalyzerOptions.config("C")
    )
    assert report.mode == "full"
    assert report.reason == "cold"
    assert report.webs_recomputed == report.webs_total > 0
    assert report.clusters_recomputed == report.clusters_total > 0
    assert database.to_json() == analyze_program(
        othello_summaries, AnalyzerOptions.config("C")
    ).to_json()


def test_unchanged_rerun_reuses_everything(othello_summaries):
    engine = IncrementalAnalyzer()
    first, _ = engine.update(othello_summaries, AnalyzerOptions.config("C"))
    second, report = engine.update(
        othello_summaries, AnalyzerOptions.config("C")
    )
    assert second is first  # the retained database, patched in place
    assert report.mode == "incremental"
    assert report.webs_reused == report.webs_total > 0
    assert report.clusters_reused == report.clusters_total > 0
    assert report.webs_recomputed == report.clusters_recomputed == 0
    assert report.procedures_patched == 0
    assert report.procedures_retained == len(first.procedures)
    assert report.fraction_reanalyzed == 0.0


def test_each_options_configuration_keeps_its_own_state(othello_summaries):
    engine = IncrementalAnalyzer()
    for config in ("A", "C", "D"):
        engine.update(othello_summaries, AnalyzerOptions.config(config))
    for config in ("A", "C", "D"):
        _db, report = engine.update(
            othello_summaries, AnalyzerOptions.config(config)
        )
        assert report.mode == "incremental", config


def test_blanket_promotion_always_falls_back(othello_summaries):
    engine = IncrementalAnalyzer()
    engine.update(othello_summaries, AnalyzerOptions.config("E"))
    _db, report = engine.update(
        othello_summaries, AnalyzerOptions.config("E")
    )
    assert report.mode == "full"
    assert report.reason == "blanket-promotion"


def test_profile_swap_falls_back(othello_summaries):
    profile_a = ProfileData(
        call_counts={"main": 1, "take_turn": 60},
        call_edges={("main", "take_turn"): 60},
    )
    profile_b = ProfileData(
        call_counts={"main": 1, "take_turn": 90},
        call_edges={("main", "take_turn"): 90},
    )
    engine = IncrementalAnalyzer()
    engine.update(othello_summaries, AnalyzerOptions.config("F", profile_a))
    _db, report = engine.update(
        othello_summaries, AnalyzerOptions.config("F", profile_a)
    )
    assert report.mode == "incremental"
    _db, report = engine.update(
        othello_summaries, AnalyzerOptions.config("F", profile_b)
    )
    assert report.mode == "full"
    assert report.reason == "profile-swap"


def test_eligibility_change_falls_back(othello_sources, othello_summaries):
    engine = IncrementalAnalyzer()
    engine.update(othello_summaries, AnalyzerOptions.config("C"))
    edited = dict(othello_sources)
    # Taking a global's address makes it aliased and thus ineligible.
    edited["oth_ai"] = edited["oth_ai"].replace(
        "int player = to_move;",
        "int player = to_move;\n  { int *ap = &evals_done; *ap += 1; }",
    )
    assert edited["oth_ai"] != othello_sources["oth_ai"]
    _db, report = engine.update(
        summaries_for(edited), AnalyzerOptions.config("C")
    )
    assert report.mode == "full"
    assert report.reason == "eligibility-changed"


# -- the acceptance property ----------------------------------------------


def test_body_edit_reanalyzes_less_than_half(
    othello_sources, othello_summaries
):
    """A single-module body edit on othello re-analyzes fewer than half
    of the program's webs+clusters, and the patched database is
    byte-identical to a from-scratch analysis."""
    options = AnalyzerOptions.config("C")
    engine = IncrementalAnalyzer()
    database, _ = engine.update(othello_summaries, options)

    edited_summaries = summaries_for(edit_body(othello_sources))
    patched, report = engine.update(edited_summaries, options)

    assert report.mode == "incremental"
    assert report.changed_modules == ("oth_ai",)
    assert report.change_kinds == {"take_turn": ("global-set",)}
    assert "evals_done" in report.dirty_variables
    assert patched is database

    total = report.webs_total + report.clusters_total
    reanalyzed = report.webs_recomputed + report.clusters_recomputed
    assert total > 0
    assert reanalyzed < total / 2
    assert report.fraction_reanalyzed < 0.5
    assert report.webs_reused + report.webs_recomputed == report.webs_total

    reference = analyze_program(edited_summaries, options)
    assert patched.to_json() == reference.to_json()


def test_patching_keeps_untouched_directive_objects(
    othello_sources, othello_summaries
):
    options = AnalyzerOptions.config("C")
    engine = IncrementalAnalyzer()
    database, _ = engine.update(othello_summaries, options)
    before = dict(database.procedures)
    _db, report = engine.update(
        summaries_for(edit_body(othello_sources)), options
    )
    retained = sum(
        1
        for name, directives in database.procedures.items()
        if before.get(name) is directives
    )
    assert retained == report.procedures_retained
    assert report.procedures_retained + report.procedures_patched >= len(
        database.procedures
    )


def test_cross_check_catches_a_corrupted_patch(othello_summaries):
    engine = IncrementalAnalyzer(cross_check=True)
    database, _ = engine.update(othello_summaries, AnalyzerOptions.config("C"))
    # Corrupt the retained state behind the engine's back: the replayed
    # webs will no longer match what a fresh construction produces.
    state = next(iter(engine._states.values()))
    for entry in state.web_cache.values():
        entry["webs"] = [
            (offset, nodes, from_split, "sparse")
            for offset, nodes, from_split, _reason in entry["webs"]
        ]
    if any(entry["webs"] for entry in state.web_cache.values()):
        with pytest.raises(IncrementalMismatchError):
            engine.update(othello_summaries, AnalyzerOptions.config("C"))


# -- summary diffing ------------------------------------------------------


def test_diff_classifies_change_kinds(othello_summaries):
    import copy

    old = {s.module_name: s for s in othello_summaries}
    new = {
        s.module_name: copy.deepcopy(s) for s in othello_summaries
    }
    ai = new["oth_ai"]
    take_turn = next(p for p in ai.procedures if p.name == "take_turn")
    take_turn.calls["legal_gain"] = take_turn.calls.get("legal_gain", 0) + 1
    take_turn.global_refs["to_move"] += 1
    take_turn.callee_saves_needed += 1
    delta = diff_summaries(old, new)
    kinds = delta.procedure_changes["take_turn"]
    assert {"global-freqs", "estimates"} <= kinds
    assert "call-edges" in kinds or "call-freqs" in kinds
    assert "to_move" in delta.variables_touched
    assert delta.modules_changed == {"oth_ai"}


# -- scheduler wiring -----------------------------------------------------


def test_scheduler_incremental_analyze(othello_sources):
    with CompilationScheduler(incremental=True) as scheduler:
        options = AnalyzerOptions.config("C")
        first = scheduler.compile_program(
            othello_sources, analyzer_options=options
        )
        assert scheduler.last_invalidation_report.mode == "full"
        assert first.metrics.stage_tasks.get("analyze") == 1
        assert first.metrics.analyze.get("full_fallbacks") == 1

        second = scheduler.compile_program(
            edit_body(othello_sources), analyzer_options=options
        )
        report = scheduler.last_invalidation_report
        assert report.mode == "incremental"
        assert second.metrics.analyze.get("incremental") == 1
        assert second.metrics.analyze.get("webs_reused", 0) > 0
        assert second.metrics.stage_tasks.get("analyze") == 1
        assert second.executable is not None


def test_scheduler_env_toggle(othello_sources, monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    scheduler = CompilationScheduler()
    assert scheduler.incremental_analyzer is not None
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    assert CompilationScheduler().incremental_analyzer is None


def test_non_incremental_analyze_counts_tasks(othello_sources):
    with CompilationScheduler() as scheduler:
        result = scheduler.compile_program(
            othello_sources, analyzer_options=AnalyzerOptions.config("A")
        )
        assert result.metrics.stage_tasks.get("analyze") == 1
        assert result.metrics.analyze == {}
