"""Canonical summary fingerprints and the versioned summary store."""

import json

from repro.frontend.phase1 import compile_module_phase1
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)
from repro.incremental.summarydb import SummaryDB


def sample_summary(module: str = "m") -> ModuleSummary:
    return ModuleSummary(
        module_name=module,
        globals=[
            GlobalSummary("g_b", module),
            GlobalSummary("g_a", module, is_static=True),
        ],
        procedures=[
            ProcedureSummary(
                name="beta",
                module=module,
                global_refs={"g_b": 4, "g_a": 2},
                global_stores={"g_b": 1},
                calls={"alpha": 3, "gamma": 1},
                address_taken_procs=["gamma"],
                callee_saves_needed=2,
            ),
            ProcedureSummary(name="alpha", module=module),
        ],
        aliased_globals=["g_b"],
    )


# -- fingerprint canonicality ---------------------------------------------


def test_fingerprint_is_stable():
    assert sample_summary().fingerprint() == sample_summary().fingerprint()


def test_fingerprint_is_order_insensitive():
    base = sample_summary()
    shuffled = sample_summary()
    shuffled.globals.reverse()
    shuffled.procedures.reverse()
    shuffled.procedures[1].global_refs = {"g_a": 2, "g_b": 4}
    shuffled.procedures[1].calls = {"gamma": 1, "alpha": 3}
    assert base.fingerprint() == shuffled.fingerprint()
    assert (
        base.procedures[0].fingerprint()
        == shuffled.procedures[1].fingerprint()
    )


def test_fingerprint_sees_every_analyzer_visible_field():
    def fingerprints_differ(mutate):
        edited = sample_summary()
        mutate(edited)
        return edited.fingerprint() != sample_summary().fingerprint()

    assert fingerprints_differ(
        lambda s: s.procedures[0].global_refs.update(g_b=5)
    )
    assert fingerprints_differ(
        lambda s: s.procedures[0].calls.update(alpha=4)
    )
    assert fingerprints_differ(
        lambda s: s.procedures[0].address_taken_procs.append("alpha")
    )
    assert fingerprints_differ(
        lambda s: setattr(s.procedures[0], "makes_indirect_calls", True)
    )
    assert fingerprints_differ(
        lambda s: setattr(s.procedures[0], "callee_saves_needed", 3)
    )
    assert fingerprints_differ(
        lambda s: setattr(s.globals[0], "address_taken", True)
    )
    assert fingerprints_differ(lambda s: s.aliased_globals.append("g_a"))


def test_fingerprint_survives_json_round_trip():
    base = sample_summary()
    restored = ModuleSummary.from_json(base.to_json())
    assert restored.fingerprint() == base.fingerprint()
    assert [p.fingerprint() for p in restored.procedures] == [
        p.fingerprint() for p in base.procedures
    ]


def test_fingerprint_distinct_from_phase1_fingerprint():
    """Summary fingerprints key on analyzer-visible *content*: two
    source texts with different bodies but identical summaries must
    fingerprint identically (the property ``phase1_fingerprint``,
    which keys on source text, deliberately does not have)."""
    first = compile_module_phase1(
        "int g;\nint f() { g = g + 1; return g; }\n", "m"
    )
    second = compile_module_phase1(
        "int g;\nint f() { g = g + 1; return g;  }\n", "m"
    )
    assert first.fingerprint != second.fingerprint
    assert first.summary.fingerprint() == second.summary.fingerprint()


# -- the store ------------------------------------------------------------


def test_record_advances_epoch_only_on_change():
    db = SummaryDB()
    assert db.record([sample_summary()]) is True
    assert db.epoch == 1
    assert db.record([sample_summary()]) is False
    assert db.epoch == 1
    edited = sample_summary()
    edited.procedures[0].global_refs["g_b"] = 9
    assert db.record([edited]) is True
    assert db.epoch == 2


def test_changed_modules_and_procedures():
    db = SummaryDB()
    db.record([sample_summary()])
    edited = sample_summary()
    edited.procedures[0].calls["alpha"] = 7
    assert db.changed_modules([sample_summary()]) == set()
    assert db.changed_modules([edited]) == {"m"}
    assert db.changed_procedures(edited) == {"beta"}


def test_record_prune_missing():
    db = SummaryDB()
    db.record([sample_summary("m1"), sample_summary("m2")])
    db.record([sample_summary("m1")])
    assert set(db.modules) == {"m1"}
    db.record([sample_summary("m2")], prune_missing=False)
    assert set(db.modules) == {"m1", "m2"}


def test_store_round_trips_on_disk(tmp_path):
    path = tmp_path / "summaries.json"
    db = SummaryDB(path)
    db.record([sample_summary()])
    reloaded = SummaryDB(path)
    assert reloaded.epoch == db.epoch
    assert reloaded.modules == db.modules
    assert reloaded.changed_modules([sample_summary()]) == set()


def test_store_discards_foreign_schema(tmp_path):
    path = tmp_path / "summaries.json"
    db = SummaryDB(path)
    db.record([sample_summary()])
    raw = json.loads(path.read_text())
    raw["summary_schema"] = -1
    path.write_text(json.dumps(raw))
    reloaded = SummaryDB(path)
    assert reloaded.epoch == 0
    assert reloaded.modules == {}
