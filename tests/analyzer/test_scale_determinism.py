"""Determinism at scale: 1000 synthesized procedures, byte-pinned.

The analyzer's output must be a pure function of its input — independent
of kernel mode (``REPRO_DATAFLOW``) and of Python's per-process hash
randomization.  Unordered-set iteration leaking into web numbering,
cluster membership, or directive order shows up exactly here: the same
program analyzed under two ``PYTHONHASHSEED`` values (or two kernels)
producing different database bytes.
"""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.analyzer.driver import AnalyzerOptions, analyze_program
from repro.verify.progen import FuzzProgramGenerator

MODULES = 20
PROCEDURES = 1000


def _digest() -> str:
    summaries = FuzzProgramGenerator(0).synthesize_large(
        MODULES, PROCEDURES
    )
    database = analyze_program(summaries, AnalyzerOptions.config("C"))
    return hashlib.sha256(database.to_json().encode()).hexdigest()


def test_packed_matches_reference_at_1k_scale(monkeypatch):
    digests = {}
    for mode in ("packed", "reference"):
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        digests[mode] = _digest()
    assert digests["packed"] == digests["reference"]


_SUBPROCESS_SCRIPT = """
import hashlib, sys
from repro.analyzer.driver import AnalyzerOptions, analyze_program
from repro.verify.progen import FuzzProgramGenerator

summaries = FuzzProgramGenerator(0).synthesize_large({modules}, {procs})
database = analyze_program(summaries, AnalyzerOptions.config("C"))
sys.stdout.write(hashlib.sha256(database.to_json().encode()).hexdigest())
"""


@pytest.mark.slow
def test_database_bytes_stable_across_hash_seeds():
    """Same program, different ``PYTHONHASHSEED`` -> same bytes.  Set
    iteration order changes between these runs; sorted()/insertion-order
    discipline in the analyzer must absorb that."""
    script = _SUBPROCESS_SCRIPT.format(modules=MODULES, procs=PROCEDURES)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    pythonpath = os.path.abspath(src)
    if os.environ.get("PYTHONPATH"):
        pythonpath += os.pathsep + os.environ["PYTHONPATH"]
    digests = {}
    for seed in ("0", "42"):
        env = dict(
            os.environ, PYTHONHASHSEED=seed, PYTHONPATH=pythonpath
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        digests[seed] = result.stdout.strip()
    assert digests["0"] == digests["42"]
    assert len(digests["0"]) == 64  # a real sha256, not an empty run
