"""Cluster identification tests (paper section 4.2, Figure 5)."""

import random

from hypothesis import given, settings, strategies as st

from repro.analyzer.clusters import (
    Cluster,
    ClusterOptions,
    check_cluster_invariants,
    identify_clusters,
)
from tests.support import build_graph


def clusters_for(procs, globals_=(), **kwargs):
    graph, _ = build_graph(procs, globals_)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators, **kwargs)
    check_cluster_invariants(graph, dominators, clusters)
    return graph, clusters


def test_hot_callees_form_cluster():
    # main calls helper pair very often: main is the root.
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"s": 50, "t": 50}},
            "s": {},
            "t": {},
        }
    )
    assert len(clusters) == 1
    assert clusters[0].root == "main"
    assert clusters[0].members == {"s", "t"}


def test_cold_callees_do_not_form_cluster():
    # Members called less often than the root is: no benefit.
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"mid": 100}},
            "mid": {"calls": {"leaf": 1}},
            "leaf": {},
        }
    )
    roots = {c.root for c in clusters}
    assert "mid" not in roots


def test_member_with_external_predecessor_excluded():
    # "shared" is called from both the would-be cluster and outside.
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"root": 10, "outside": 1}},
            "root": {"calls": {"shared": 100}},
            "outside": {"calls": {"shared": 1}},
            "shared": {},
        }
    )
    for cluster in clusters:
        if cluster.root == "root":
            assert "shared" not in cluster.members


def test_recursive_procedure_not_in_cluster():
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"rec": 100}},
            "rec": {"calls": {"rec": 1}},
        }
    )
    for cluster in clusters:
        assert "rec" not in cluster.members


def test_mutual_recursion_not_enclosed():
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"a": 100}},
            "a": {"calls": {"b": 100}},
            "b": {"calls": {"a": 1}},
        }
    )
    # a and b form a cycle; no cluster may contain the whole cycle.
    for cluster in clusters:
        assert not ({"a", "b"} <= cluster.all_nodes)


def test_clusters_within_cycles_allowed():
    # The paper: clusters can live inside larger call-graph cycles.
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"j": 10}},
            "j": {"calls": {"k": 100, "main": 1}},  # j->main closes a cycle
            "k": {},
        }
    )
    assert any(c.root == "j" and "k" in c.members for c in clusters)


def test_nested_clusters_child_root_is_parent_leaf():
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"leaf1": 50, "leaf2": 50}},
            "leaf1": {},
            "leaf2": {},
        }
    )
    by_root = {c.root: c for c in clusters}
    assert "main" in by_root and "mid" in by_root
    assert by_root["main"].members == {"mid"}
    assert by_root["mid"].members == {"leaf1", "leaf2"}


def test_nearest_root_claims_node():
    # "deep" is dominated by both roots; it belongs to the nearest (mid).
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"deep": 50}},
            "deep": {},
        }
    )
    by_root = {c.root: c for c in clusters}
    assert "deep" in by_root["mid"].members
    assert "deep" not in by_root.get(
        "main", Cluster("main", set())
    ).members


def test_root_benefit_ratio_respected():
    procs = {
        "main": {"calls": {"s": 5}},
        "s": {},
    }
    _, eager = clusters_for(procs, options=ClusterOptions(
        root_benefit_ratio=1.0))
    _, reluctant = clusters_for(procs, options=ClusterOptions(
        root_benefit_ratio=100.0))
    assert eager and not reluctant


def test_diamond_cluster():
    # Figure 7 shape: J -> K, L; K, L -> M.
    graph, clusters = clusters_for(
        {
            "main": {"calls": {"j": 1}},
            "j": {"calls": {"k": 50, "l": 50}},
            "k": {"calls": {"m": 50}},
            "l": {"calls": {"m": 50}},
            "m": {},
        }
    )
    by_root = {c.root: c for c in clusters}
    assert by_root["j"].members == {"k", "l", "m"}


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_cluster_invariants_on_random_graphs(seed):
    rng = random.Random(seed)
    size = rng.randint(3, 14)
    names = [f"p{i}" for i in range(size)]
    procs = {}
    for i, name in enumerate(names):
        calls = {}
        for _ in range(rng.randint(0, 3)):
            if rng.random() < 0.85 and names[i + 1:]:
                target = rng.choice(names[i + 1:])
            else:
                target = rng.choice(names)
            if target != name or rng.random() < 0.2:
                calls[target] = rng.randint(1, 200)
        procs[name] = {"calls": calls}
    graph, _ = build_graph(procs)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    check_cluster_invariants(graph, dominators, clusters)
