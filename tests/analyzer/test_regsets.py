"""Register usage set computation tests (paper sections 4.2.3-4.2.4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyzer import regsets
from repro.analyzer.clusters import identify_clusters
from repro.analyzer.regsets import (
    RegisterSets,
    check_register_set_invariants,
    compute_register_sets,
)
from repro.target.registers import CALLEE_SAVES, CALLER_SAVES
from tests.support import build_graph


def analyze(procs, globals_=(), web_reserved=None):
    graph, _ = build_graph(procs, globals_)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    sets = compute_register_sets(graph, clusters, dominators, web_reserved)
    roots = {c.root for c in clusters}
    check_register_set_invariants(sets, roots)
    return graph, clusters, sets


def test_no_clusters_standard_convention():
    graph, clusters, sets = analyze(
        {"main": {"calls": {"leaf": 1}}, "leaf": {}}
    )
    for name in graph.nodes:
        rs = sets[name]
        if not clusters or name not in {c.root for c in clusters}:
            assert rs.caller >= set(CALLER_SAVES)


def test_member_gets_free_registers_root_gets_mspill():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "t": 50}},
            "s": {"need": 2},
            "t": {"need": 3},
        }
    )
    (cluster,) = clusters
    assert cluster.root == "main"
    assert len(sets["s"].free) == 2
    assert len(sets["t"].free) == 3
    # Every FREE register in a member is spilled by the root.
    assert sets["s"].free <= sets["main"].mspill
    assert sets["t"].free <= sets["main"].mspill


def test_members_with_no_need_get_nothing():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": 0},
        }
    )
    assert sets["s"].free == set()
    assert sets["main"].mspill == set()


def test_sibling_sharing_of_spilled_registers():
    # The paper: "R could spill a single set of registers that could be
    # used by both S and T."  Siblings may share FREE registers.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "t": 50}},
            "s": {"need": 2},
            "t": {"need": 2},
        }
    )
    assert sets["s"].free == sets["t"].free
    assert len(sets["main"].mspill) == 2


def test_caller_callee_free_disjoint_along_paths():
    # K calls M: FREE[M] must not overlap FREE[K] (K holds values in its
    # FREE registers across the call).
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"k": 50}},
            "k": {"calls": {"m": 50}, "need": 2},
            "m": {"need": 2},
        }
    )
    assert sets["k"].free
    assert sets["m"].free
    assert not (sets["k"].free & sets["m"].free)


def test_figure7_caller_post_pass():
    # Diamond: J -> K, L -> M.  M needs registers; K does not use them,
    # so MSPILL[J] registers still available at K become extra
    # caller-saves registers there.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"j": 1}},
            "j": {"calls": {"k": 50, "l": 50}},
            "k": {"calls": {"m": 50}, "need": 1},
            "l": {"calls": {"m": 50}, "need": 2},
            "m": {"need": 1},
        }
    )
    j_sets = sets["j"]
    assert j_sets.mspill  # spill code hoisted to J
    extra_caller_k = sets["k"].caller - set(CALLER_SAVES)
    assert extra_caller_k  # K gained caller-saves use of J's spills
    assert extra_caller_k <= j_sets.mspill
    # And those registers are callee-saves by convention.
    assert extra_caller_k <= set(CALLEE_SAVES)


def test_nested_cluster_spill_motion_moves_up():
    # main -> mid -> leaves; both are roots; mid's MSPILL migrates into
    # main's MSPILL because the registers are still available at mid.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"leaf1": 50, "leaf2": 50}},
            "leaf1": {"need": 1},
            "leaf2": {"need": 1},
        }
    )
    by_root = {c.root: c for c in clusters}
    assert "main" in by_root and "mid" in by_root
    # The leaves' free registers end up spilled at main, not mid.
    leaf_free = sets["leaf1"].free | sets["leaf2"].free
    assert leaf_free
    assert leaf_free <= sets["main"].mspill
    assert not (leaf_free & sets["mid"].mspill)


def test_nested_root_own_callee_becomes_free():
    # mid needs registers of its own; as a member of main's cluster its
    # CALLEE registers become FREE (main spills them).
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"leaf": 50}, "need": 2},
            "leaf": {"need": 1},
        }
    )
    assert len(sets["mid"].free) == 2
    assert sets["mid"].free <= sets["main"].mspill


def test_web_reserved_registers_never_distributed():
    reserved_reg = max(CALLEE_SAVES)
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": len(CALLEE_SAVES)},
        },
        web_reserved={"s": {reserved_reg}},
    )
    assert reserved_reg not in sets["s"].free
    assert reserved_reg not in sets["s"].callee
    assert reserved_reg not in sets["main"].mspill
    assert reserved_reg not in sets["main"].callee


def test_non_cluster_nodes_keep_standard_sets():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "cold": 1}},
            "s": {"need": 1},
            "cold": {"calls": {}},
        }
    )
    # cold is not in the cluster (called rarely)... whether it is or not,
    # its sets must satisfy the convention; if not a member, they are
    # exactly standard.
    in_cluster = any("cold" in c.members for c in clusters)
    if not in_cluster:
        assert sets["cold"].caller == set(CALLER_SAVES)
        assert sets["cold"].free == set()


def test_need_capped_by_available_registers():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": 99},
        }
    )
    assert len(sets["s"].free) <= len(CALLEE_SAVES)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_register_set_invariants_on_random_graphs(seed):
    rng = random.Random(seed)
    size = rng.randint(3, 12)
    names = [f"p{i}" for i in range(size)]
    procs = {}
    for i, name in enumerate(names):
        calls = {}
        for _ in range(rng.randint(0, 3)):
            if names[i + 1:] and rng.random() < 0.9:
                target = rng.choice(names[i + 1:])
                calls[target] = rng.randint(1, 200)
        procs[name] = {"calls": calls, "need": rng.randint(0, 6)}
    web_reserved = {}
    if rng.random() < 0.5:
        web_reserved[rng.choice(names)] = {max(CALLEE_SAVES)}
    graph, _ = build_graph(procs)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    sets = compute_register_sets(graph, clusters, dominators, web_reserved)
    roots = {c.root for c in clusters}
    check_register_set_invariants(sets, roots)
    # FREE registers of a callee never overlap FREE of a caller on an
    # edge inside any cluster (the paths-disjointness invariant).
    for cluster in clusters:
        for name in cluster.all_nodes:
            for callee in graph.nodes[name].successors:
                if callee in cluster.all_nodes:
                    assert not (sets[name].free & sets[callee].free), (
                        name, callee,
                    )


# -- the invariant checker itself must have teeth -----------------------
#
# Each test below hands check_register_set_invariants a directive
# assignment violating exactly one rule and asserts the checker refuses
# it; a checker that silently accepts any of these would let the
# analyzer ship contradictory directives to phase 2.


def _sets(**kwargs):
    base = dict(free=set(), caller=set(), callee=set(), mspill=set())
    base.update(kwargs)
    return {"p": RegisterSets(**base)}


def test_invariant_rejects_overlapping_sets():
    reg = min(CALLEE_SAVES)
    with pytest.raises(AssertionError, match="overlap"):
        check_register_set_invariants(
            _sets(free={reg}, callee={reg}), roots=set()
        )


def test_invariant_rejects_mspill_at_non_root():
    reg = min(CALLEE_SAVES)
    with pytest.raises(AssertionError, match="non-root"):
        check_register_set_invariants(_sets(mspill={reg}), roots=set())
    # The same assignment at a root is legal.
    check_register_set_invariants(_sets(mspill={reg}), roots={"p"})


@pytest.mark.parametrize("label", ["free", "callee", "mspill"])
def test_invariant_rejects_caller_saves_leakage(label):
    reg = min(CALLER_SAVES)
    assert reg not in CALLEE_SAVES
    sets = _sets(**{label: {reg}})
    with pytest.raises(AssertionError, match="non-callee-saves"):
        check_register_set_invariants(sets, roots={"p"})


def test_invariant_rejects_unearned_extra_caller():
    extra = min(CALLEE_SAVES)
    sets = {
        "root": RegisterSets(
            free=set(), caller=set(), callee=set(), mspill=set()
        ),
        "p": RegisterSets(
            free=set(),
            caller=set(CALLER_SAVES) | {extra},
            callee=set(),
            mspill=set(),
        ),
    }
    with pytest.raises(AssertionError, match="MSPILL"):
        check_register_set_invariants(sets, roots={"root"})
    # Once a root actually spills the register, the grant is earned.
    sets["root"].mspill = {extra}
    check_register_set_invariants(sets, roots={"root"})


def test_invariant_rejects_web_reserved_in_any_set():
    reg = max(CALLEE_SAVES)
    for label in ("free", "caller", "callee", "mspill"):
        sets = _sets(**{label: {reg}})
        roots = {"p"}  # legitimizes mspill placement
        with pytest.raises(AssertionError, match="web-reserved"):
            check_register_set_invariants(
                sets, roots, web_reserved={"p": {reg}}
            )
    # Absent from every set: fine.
    check_register_set_invariants(
        _sets(), {"p"}, web_reserved={"p": {reg}}
    )


# -- worklist rewrite equivalence ---------------------------------------
#
# _process_cluster orders members with a Kahn worklist; the original
# implementation re-sorted and re-scanned the whole pending set after
# every node.  The reference below reproduces that historical sweep
# verbatim so the suite can assert the rewrite is a pure strength
# reduction: identical RegisterSets, node for node.


def _reference_process_cluster(graph, cluster, roots, sets, avail,
                               web_reserved):
    root = cluster.root
    members = cluster.members

    child_mspill = set()
    for name in members:
        if name in roots:
            child_mspill |= sets[name].mspill
    order = regsets._cluster_register_order(child_mspill)

    reserved_in_cluster = set()
    for name in cluster.all_nodes:
        reserved_in_cluster |= set(web_reserved.get(name, ()))

    selectable = [r for r in order if r not in reserved_in_cluster]
    need = graph.nodes[root].summary.callee_saves_needed
    root_sets = sets[root]
    root_callee = set(selectable[max(0, len(selectable) - need):])
    root_sets.callee = root_callee
    avail[root] = set(selectable) - root_callee

    used = set()
    visited = {root}
    pending = set(members)
    while pending:
        progressed = False
        for name in sorted(pending):
            predecessors = set(graph.nodes[name].predecessors)
            if not predecessors <= visited:
                continue
            regsets._preallocate_node(
                graph, name, roots, sets, avail, order, used
            )
            visited.add(name)
            pending.discard(name)
            progressed = True
            break
        if not progressed:
            raise AssertionError(
                f"cluster {root}: could not order members {pending}"
            )

    root_sets.mspill |= used
    for name in members:
        if name in roots:
            continue
        sets[name].caller |= avail[name] & root_sets.mspill


def _reference_compute_register_sets(graph, clusters, dominators=None,
                                     web_reserved=None):
    if dominators is None:
        dominators = graph.dominator_tree()
    web_reserved = web_reserved or {}
    sets = {}
    for name in graph.nodes:
        reserved = set(web_reserved.get(name, ()))
        sets[name] = RegisterSets(
            free=set(),
            caller=set(CALLER_SAVES),
            callee=set(CALLEE_SAVES) - reserved,
            mspill=set(),
        )
    roots = {cluster.root for cluster in clusters}
    avail = {}
    for cluster in regsets._bottom_up(clusters, dominators):
        _reference_process_cluster(
            graph, cluster, roots, sets, avail, web_reserved
        )
    return sets


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_worklist_matches_reference_sweep_on_random_graphs(seed):
    rng = random.Random(seed ^ 0x5EED)
    size = rng.randint(3, 14)
    names = [f"p{i}" for i in range(size)]
    procs = {}
    for i, name in enumerate(names):
        calls = {}
        for _ in range(rng.randint(0, 3)):
            if names[i + 1:]:
                calls[rng.choice(names[i + 1:])] = rng.randint(1, 200)
        procs[name] = {"calls": calls, "need": rng.randint(0, 6)}
    web_reserved = {}
    if rng.random() < 0.5:
        web_reserved[rng.choice(names)] = {max(CALLEE_SAVES)}
    graph, _ = build_graph(procs)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    new = compute_register_sets(graph, clusters, dominators, web_reserved)
    old = _reference_compute_register_sets(
        graph, clusters, dominators, web_reserved
    )
    assert new == old


@pytest.mark.parametrize("workload", ["dhrystone", "othello", "paopt"])
def test_worklist_matches_reference_sweep_on_workloads(workload):
    from repro import run_phase1
    from repro.callgraph.graph import CallGraph
    from repro.workloads import get_workload

    phase1 = run_phase1(get_workload(workload).sources)
    summaries = [result.summary for result in phase1]
    graph = CallGraph.build(summaries, None)
    graph.normalize_weights(None)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    assert clusters, "benchmark workloads must form clusters"
    new = compute_register_sets(graph, clusters, dominators)
    old = _reference_compute_register_sets(graph, clusters, dominators)
    assert new == old
