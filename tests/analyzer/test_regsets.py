"""Register usage set computation tests (paper sections 4.2.3-4.2.4)."""

import random

from hypothesis import given, settings, strategies as st

from repro.analyzer.clusters import identify_clusters
from repro.analyzer.regsets import (
    check_register_set_invariants,
    compute_register_sets,
)
from repro.target.registers import CALLEE_SAVES, CALLER_SAVES
from tests.support import build_graph


def analyze(procs, globals_=(), web_reserved=None):
    graph, _ = build_graph(procs, globals_)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    sets = compute_register_sets(graph, clusters, dominators, web_reserved)
    roots = {c.root for c in clusters}
    check_register_set_invariants(sets, roots)
    return graph, clusters, sets


def test_no_clusters_standard_convention():
    graph, clusters, sets = analyze(
        {"main": {"calls": {"leaf": 1}}, "leaf": {}}
    )
    for name in graph.nodes:
        rs = sets[name]
        if not clusters or name not in {c.root for c in clusters}:
            assert rs.caller >= set(CALLER_SAVES)


def test_member_gets_free_registers_root_gets_mspill():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "t": 50}},
            "s": {"need": 2},
            "t": {"need": 3},
        }
    )
    (cluster,) = clusters
    assert cluster.root == "main"
    assert len(sets["s"].free) == 2
    assert len(sets["t"].free) == 3
    # Every FREE register in a member is spilled by the root.
    assert sets["s"].free <= sets["main"].mspill
    assert sets["t"].free <= sets["main"].mspill


def test_members_with_no_need_get_nothing():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": 0},
        }
    )
    assert sets["s"].free == set()
    assert sets["main"].mspill == set()


def test_sibling_sharing_of_spilled_registers():
    # The paper: "R could spill a single set of registers that could be
    # used by both S and T."  Siblings may share FREE registers.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "t": 50}},
            "s": {"need": 2},
            "t": {"need": 2},
        }
    )
    assert sets["s"].free == sets["t"].free
    assert len(sets["main"].mspill) == 2


def test_caller_callee_free_disjoint_along_paths():
    # K calls M: FREE[M] must not overlap FREE[K] (K holds values in its
    # FREE registers across the call).
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"k": 50}},
            "k": {"calls": {"m": 50}, "need": 2},
            "m": {"need": 2},
        }
    )
    assert sets["k"].free
    assert sets["m"].free
    assert not (sets["k"].free & sets["m"].free)


def test_figure7_caller_post_pass():
    # Diamond: J -> K, L -> M.  M needs registers; K does not use them,
    # so MSPILL[J] registers still available at K become extra
    # caller-saves registers there.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"j": 1}},
            "j": {"calls": {"k": 50, "l": 50}},
            "k": {"calls": {"m": 50}, "need": 1},
            "l": {"calls": {"m": 50}, "need": 2},
            "m": {"need": 1},
        }
    )
    j_sets = sets["j"]
    assert j_sets.mspill  # spill code hoisted to J
    extra_caller_k = sets["k"].caller - set(CALLER_SAVES)
    assert extra_caller_k  # K gained caller-saves use of J's spills
    assert extra_caller_k <= j_sets.mspill
    # And those registers are callee-saves by convention.
    assert extra_caller_k <= set(CALLEE_SAVES)


def test_nested_cluster_spill_motion_moves_up():
    # main -> mid -> leaves; both are roots; mid's MSPILL migrates into
    # main's MSPILL because the registers are still available at mid.
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"leaf1": 50, "leaf2": 50}},
            "leaf1": {"need": 1},
            "leaf2": {"need": 1},
        }
    )
    by_root = {c.root: c for c in clusters}
    assert "main" in by_root and "mid" in by_root
    # The leaves' free registers end up spilled at main, not mid.
    leaf_free = sets["leaf1"].free | sets["leaf2"].free
    assert leaf_free
    assert leaf_free <= sets["main"].mspill
    assert not (leaf_free & sets["mid"].mspill)


def test_nested_root_own_callee_becomes_free():
    # mid needs registers of its own; as a member of main's cluster its
    # CALLEE registers become FREE (main spills them).
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"mid": 50}},
            "mid": {"calls": {"leaf": 50}, "need": 2},
            "leaf": {"need": 1},
        }
    )
    assert len(sets["mid"].free) == 2
    assert sets["mid"].free <= sets["main"].mspill


def test_web_reserved_registers_never_distributed():
    reserved_reg = max(CALLEE_SAVES)
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": len(CALLEE_SAVES)},
        },
        web_reserved={"s": {reserved_reg}},
    )
    assert reserved_reg not in sets["s"].free
    assert reserved_reg not in sets["s"].callee
    assert reserved_reg not in sets["main"].mspill
    assert reserved_reg not in sets["main"].callee


def test_non_cluster_nodes_keep_standard_sets():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50, "cold": 1}},
            "s": {"need": 1},
            "cold": {"calls": {}},
        }
    )
    # cold is not in the cluster (called rarely)... whether it is or not,
    # its sets must satisfy the convention; if not a member, they are
    # exactly standard.
    in_cluster = any("cold" in c.members for c in clusters)
    if not in_cluster:
        assert sets["cold"].caller == set(CALLER_SAVES)
        assert sets["cold"].free == set()


def test_need_capped_by_available_registers():
    graph, clusters, sets = analyze(
        {
            "main": {"calls": {"s": 50}},
            "s": {"need": 99},
        }
    )
    assert len(sets["s"].free) <= len(CALLEE_SAVES)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_register_set_invariants_on_random_graphs(seed):
    rng = random.Random(seed)
    size = rng.randint(3, 12)
    names = [f"p{i}" for i in range(size)]
    procs = {}
    for i, name in enumerate(names):
        calls = {}
        for _ in range(rng.randint(0, 3)):
            if names[i + 1:] and rng.random() < 0.9:
                target = rng.choice(names[i + 1:])
                calls[target] = rng.randint(1, 200)
        procs[name] = {"calls": calls, "need": rng.randint(0, 6)}
    web_reserved = {}
    if rng.random() < 0.5:
        web_reserved[rng.choice(names)] = {max(CALLEE_SAVES)}
    graph, _ = build_graph(procs)
    dominators = graph.dominator_tree()
    clusters = identify_clusters(graph, dominators)
    sets = compute_register_sets(graph, clusters, dominators, web_reserved)
    roots = {c.root for c in clusters}
    check_register_set_invariants(sets, roots)
    # FREE registers of a callee never overlap FREE of a caller on an
    # edge inside any cluster (the paths-disjointness invariant).
    for cluster in clusters:
        for name in cluster.all_nodes:
            for callee in graph.nodes[name].successors:
                if callee in cluster.all_nodes:
                    assert not (sets[name].free & sets[callee].free), (
                        name, callee,
                    )
