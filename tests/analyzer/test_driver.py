"""Program analyzer driver tests (whole-tool behaviour)."""

import pytest

from repro.analyzer.driver import analyze_program
from repro.analyzer.options import AnalyzerOptions
from repro.frontend.phase1 import compile_module_phase1
from tests.support import FIGURE3_GLOBALS, FIGURE3_PROCS, build_graph


def figure3_summaries():
    _, summary = build_graph(FIGURE3_PROCS, FIGURE3_GLOBALS)
    return [summary]


def test_directives_produced_for_every_procedure():
    database = analyze_program(figure3_summaries())
    for name in "ABCDEFGH":
        assert name in database


def test_webs_recorded_with_registers():
    database = analyze_program(
        figure3_summaries(),
        AnalyzerOptions(num_web_registers=2,
                        spill_code_motion=False),
    )
    colored = [w for w in database.webs if w.register is not None]
    assert len(colored) == 4
    assert database.statistics.webs_colored == 4
    assert database.statistics.total_webs == 4
    assert database.statistics.eligible_globals == 3


def test_promoted_directives_mark_entries():
    database = analyze_program(
        figure3_summaries(), AnalyzerOptions(spill_code_motion=False)
    )
    b = database.get("B")
    promoted_names = {p.name for p in b.promoted}
    assert "g1" in promoted_names  # B is in web {B,D,E}
    g1 = next(p for p in b.promoted if p.name == "g1")
    assert g1.is_entry  # the paper: B is the entry of web 3
    d = database.get("D")
    g1_at_d = next(p for p in d.promoted if p.name == "g1")
    assert not g1_at_d.is_entry


def test_promotion_reserves_registers_out_of_sets():
    database = analyze_program(figure3_summaries())
    for name in "ABCDEFGH":
        directives = database.get(name)
        directives.validate()
        for promoted in directives.promoted:
            assert promoted.register not in directives.free
            assert promoted.register not in directives.callee
            assert promoted.register not in directives.caller
            assert promoted.register not in directives.mspill


def test_needs_store_false_for_read_only_web():
    procs = {
        "main": {"calls": {"reader": 10}},
        "reader": {"refs": {"g": 50}},  # no stores
    }
    _, summary = build_graph(procs, ("g",))
    database = analyze_program([summary])
    reader = database.get("reader")
    if reader.promoted:
        assert not reader.promoted[0].needs_store


def test_blanket_mode_reserves_everywhere():
    database = analyze_program(
        figure3_summaries(),
        AnalyzerOptions(global_promotion="blanket", blanket_count=2),
    )
    # Every procedure carries the blanket reservations.
    registers = None
    for name in "ABCDEFGH":
        directives = database.get(name)
        regs = directives.reserved_web_registers
        if registers is None:
            registers = regs
        assert regs == registers
        for promoted in directives.promoted:
            # Only start nodes (A) are entries.
            assert promoted.is_entry == (name == "A")


def test_promotion_none_mode():
    database = analyze_program(
        figure3_summaries(), AnalyzerOptions(global_promotion="none")
    )
    for name in "ABCDEFGH":
        assert database.get(name).promoted == ()


def test_unknown_modes_rejected():
    with pytest.raises(ValueError):
        analyze_program(
            figure3_summaries(),
            AnalyzerOptions(global_promotion="bogus"),
        )
    with pytest.raises(ValueError):
        analyze_program(
            figure3_summaries(), AnalyzerOptions(coloring="bogus")
        )


def test_config_presets():
    assert AnalyzerOptions.config("A").global_promotion == "none"
    assert AnalyzerOptions.config("C").num_web_registers == 6
    assert AnalyzerOptions.config("D").coloring == "greedy"
    assert AnalyzerOptions.config("E").global_promotion == "blanket"
    with pytest.raises(ValueError):
        AnalyzerOptions.config("B")  # needs a profile
    with pytest.raises(ValueError):
        AnalyzerOptions.config("Z")


def test_analyzer_from_real_phase1_summaries():
    source = """
    int hot;
    int work(int n) {
      int i;
      for (i = 0; i < n; i++) hot += i;
      return hot;
    }
    int main() {
      int r = work(100);
      print(r);
      return 0;
    }
    """
    result = compile_module_phase1(source, "m", 2)
    database = analyze_program([result.summary])
    work = database.get("work")
    assert any(p.name == "hot" for p in work.promoted)
