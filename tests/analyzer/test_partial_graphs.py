"""Partial call graph tests (paper section 7.2).

When the analyzer sees only part of the program (e.g. a library), a
pseudo "<external>" caller stands in for unknown outside callers of the
exported procedures; the analyzer must degrade conservatively rather
than miscompile.
"""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.callgraph.graph import EXTERNAL_CALLER, CallGraph
from tests.support import build_graph

LIBRARY = {
    "lib": """
        int lib_state;
        static int internal_calls;

        int helper(int x) {
          internal_calls++;
          lib_state += x;
          return lib_state;
        }

        int api_entry(int x) {
          int i;
          int acc = 0;
          for (i = 0; i < 10; i++) acc += helper(x + i);
          return acc;
        }

        int api_other(int x) {
          lib_state = x;
          return helper(x);
        }
    """,
    "main": """
        extern int api_entry(int);
        extern int api_other(int);
        int main() {
          int r = api_entry(3) + api_other(7) + api_entry(1);
          print(r);
          return r & 255;
        }
    """,
}

EXPORTED = frozenset({"api_entry", "api_other", "main"})


def test_external_caller_node_added():
    _, summary = build_graph(
        {"entry": {"calls": {"inner": 5}}, "inner": {}}
    )
    graph = CallGraph.build([summary], exported={"entry"})
    assert EXTERNAL_CALLER in graph.nodes
    assert "entry" in graph.nodes[EXTERNAL_CALLER].successors
    assert EXTERNAL_CALLER in graph.nodes["entry"].predecessors


def test_external_caller_reaches_address_taken_procs():
    _, summary = build_graph(
        {
            "entry": {"calls": {}, "address_taken": ["callback"]},
            "callback": {},
        }
    )
    graph = CallGraph.build([summary], exported={"entry"})
    assert "callback" in graph.nodes[EXTERNAL_CALLER].successors


def test_exported_proc_may_still_be_web_entry():
    # An exported procedure with only-external callers is a legitimate
    # web entry: it loads the global from memory at entry and stores it
    # back at exit, which is correct for arbitrary unknown callers (who,
    # by the section 7.2 assumption, never touch the global).
    procs = {
        "entry": {"calls": {"helper": 10}, "refs": {"g": 5}},
        "helper": {"refs": {"g": 5}},
    }
    _, summary = build_graph(procs, ("g",))
    partial = analyze_program(
        [summary],
        AnalyzerOptions(exported_procedures=frozenset({"entry"})),
    )
    assert partial.statistics.webs_colored == 1
    entry = partial.get("entry")
    assert entry.promoted and entry.promoted[0].is_entry


def test_web_needing_internal_exported_proc_is_discarded():
    # entry2 is exported AND called from inside the web: it would have
    # both internal and external predecessors, so the correctness
    # closure absorbs "<external>" and the web must be discarded.
    procs = {
        "entry1": {"calls": {"entry2": 10}, "refs": {"g": 5}},
        "entry2": {"refs": {"g": 5}},
    }
    _, summary = build_graph(procs, ("g",))
    whole = analyze_program([summary], AnalyzerOptions())
    assert whole.statistics.webs_colored >= 1

    partial = analyze_program(
        [summary],
        AnalyzerOptions(
            exported_procedures=frozenset({"entry1", "entry2"})
        ),
    )
    assert partial.statistics.webs_colored == 0
    assert not partial.get("entry1").promoted
    discarded = [w for w in partial.webs if w.discarded_reason]
    assert any(
        w.discarded_reason == "external-caller" for w in discarded
    )


def test_no_directives_for_pseudo_node():
    _, summary = build_graph({"entry": {}})
    database = analyze_program(
        [summary],
        AnalyzerOptions(exported_procedures=frozenset({"entry"})),
    )
    assert EXTERNAL_CALLER not in database


def test_externally_visible_globals_ineligible():
    procs = {"entry": {"refs": {"g": 50}, "calls": {"leaf": 5}},
             "leaf": {"refs": {"g": 50}}}
    _, summary = build_graph(procs, ("g",))
    database = analyze_program(
        [summary],
        AnalyzerOptions(
            externally_visible_globals=frozenset({"g"}),
        ),
    )
    assert database.statistics.webs_colored == 0


def test_blanket_rejected_for_partial_graphs():
    _, summary = build_graph({"entry": {}})
    with pytest.raises(ValueError, match="whole program"):
        analyze_program(
            [summary],
            AnalyzerOptions(
                global_promotion="blanket",
                exported_procedures=frozenset({"entry"}),
            ),
        )


def test_partial_analysis_preserves_semantics():
    """Compile the library with partial-graph conservatism and the whole
    program normally; both must behave identically."""
    phase1 = run_phase1(LIBRARY)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase())
    )
    partial_db = analyze_program(
        summaries,
        AnalyzerOptions(exported_procedures=EXPORTED),
    )
    stats = run_executable(compile_with_database(phase1, partial_db))
    assert stats.output == baseline.output
    assert stats.exit_code == baseline.exit_code


def test_partial_analysis_still_promotes_internal_webs():
    """helper is not exported; webs entirely below exported entries can
    still be promoted when their entry nodes are the exported procs
    themselves...  here lib_state is referenced by the exported procs,
    so the web absorbs <external> and is discarded — but the analysis
    must still produce valid spill-motion directives."""
    phase1 = run_phase1(LIBRARY)
    summaries = [r.summary for r in phase1]
    database = analyze_program(
        summaries,
        AnalyzerOptions(exported_procedures=EXPORTED),
    )
    for result in phase1:
        for name in result.ir_module.functions:
            database.get(name).validate()


def test_exported_procs_not_in_clusters_as_members():
    procs = {
        "entry": {"calls": {"hot": 100}},
        "other_entry": {"calls": {"hot": 1}},
        "hot": {"need": 2},
    }
    _, summary = build_graph(procs)
    database = analyze_program(
        [summary],
        AnalyzerOptions(
            exported_procedures=frozenset({"entry", "other_entry"})
        ),
    )
    # hot has two predecessors (entry, other_entry); neither cluster can
    # own it unless it owns both preds, whose preds include <external>.
    for record in database.clusters:
        assert EXTERNAL_CALLER not in record.members
        assert record.root != EXTERNAL_CALLER
