"""Caller-saves preallocation tests (paper section 7.6.2 / [Chow 88])."""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.callersaves import (
    SELECTION_ORDER,
    allocation_prefix,
    arg_registers_for,
    compute_subtree_caller_usage,
)
from repro.analyzer.driver import analyze_program
from repro.machine.simulator import Simulator
from repro.target.registers import ARG_REGISTERS, CALLER_SAVES, RV
from tests.support import build_graph


def test_selection_order_covers_non_special_caller_saves():
    assert set(SELECTION_ORDER) == set(CALLER_SAVES) - {RV}
    # Non-argument registers come first.
    for register in SELECTION_ORDER[: len(SELECTION_ORDER) - 4]:
        assert register not in ARG_REGISTERS


def test_allocation_prefix_monotone():
    assert allocation_prefix(0) == ()
    assert len(allocation_prefix(3)) == 3
    assert len(allocation_prefix(99)) == len(SELECTION_ORDER)
    assert allocation_prefix(2) == allocation_prefix(5)[:2]


def test_arg_registers_for():
    assert arg_registers_for(0) == set()
    assert arg_registers_for(2) == set(ARG_REGISTERS[:2])
    assert arg_registers_for(9) == set(ARG_REGISTERS)


def _subtree(procs):
    graph, _ = build_graph(procs)
    return compute_subtree_caller_usage(graph)


def test_leaf_subtree_is_own_usage():
    def spec(**kw):
        return kw

    graph, _ = build_graph({"main": {"calls": {"leaf": 1}}, "leaf": {}})
    # Give leaf a known demand via its summary.
    graph.nodes["leaf"].summary.caller_saves_needed = 1
    graph.nodes["leaf"].summary.num_params = 0
    graph.nodes["main"].summary.num_params = 0
    prefixes, subtree = compute_subtree_caller_usage(graph)
    leaf_used = subtree["leaf"]
    assert RV in leaf_used
    assert leaf_used < frozenset(CALLER_SAVES)  # genuinely refined


def test_subtree_accumulates_over_callees():
    graph, _ = build_graph(
        {"main": {"calls": {"mid": 1}},
         "mid": {"calls": {"leaf": 1}},
         "leaf": {}}
    )
    for name in graph.nodes:
        graph.nodes[name].summary.num_params = 0
    graph.nodes["leaf"].summary.caller_saves_needed = 2
    _, subtree = compute_subtree_caller_usage(graph)
    assert subtree["leaf"] <= subtree["mid"] <= subtree["main"]


def test_incoming_parameters_counted():
    graph, _ = build_graph({"main": {"calls": {"f": 1}}, "f": {}})
    graph.nodes["f"].summary.num_params = 3
    graph.nodes["main"].summary.num_params = 0
    _, subtree = compute_subtree_caller_usage(graph)
    assert set(ARG_REGISTERS[:3]) <= set(subtree["f"])


def test_recursive_procedures_unbounded():
    graph, _ = build_graph(
        {"main": {"calls": {"rec": 1}}, "rec": {"calls": {"rec": 1}}}
    )
    _, subtree = compute_subtree_caller_usage(graph)
    assert subtree["rec"] == frozenset(CALLER_SAVES)
    # And the caller of a recursive proc inherits the full set.
    assert subtree["main"] == frozenset(CALLER_SAVES)


def test_indirect_targets_unbounded():
    graph, _ = build_graph(
        {
            "main": {"calls": {}, "address_taken": ["target"],
                     "indirect": True},
            "target": {},
        }
    )
    _, subtree = compute_subtree_caller_usage(graph)
    assert subtree["target"] == frozenset(CALLER_SAVES)
    assert subtree["main"] == frozenset(CALLER_SAVES)


SOURCES = {
    "lib": """
        int leaf(int x) { return x * 3 + 1; }
        int worker(int a, int b) {
          int keep = a * b + 7;
          int r1 = leaf(a);
          int r2 = leaf(b);
          return keep + r1 + r2;
        }
    """,
    "main": """
        extern int worker(int, int);
        int main() {
          int i;
          int total = 0;
          for (i = 0; i < 200; i++) total += worker(i, i + 1);
          print(total);
          return total & 255;
        }
    """,
}


def _compile(options):
    phase1 = run_phase1(SOURCES)
    summaries = [r.summary for r in phase1]
    if options is None:
        database = ProgramDatabase()
    else:
        database = analyze_program(summaries, options)
    return database, compile_with_database(phase1, database)


def test_preallocation_preserves_semantics_and_conventions():
    _, baseline_exe = _compile(None)
    baseline = run_executable(baseline_exe)
    options = AnalyzerOptions.config("C")
    options.caller_saves_preallocation = True
    database, exe = _compile(options)
    stats = Simulator(
        exe,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run()
    assert stats.output == baseline.output


def test_preallocation_reduces_save_restore_traffic():
    """`keep` lives across two calls to a leaf that uses almost no
    caller-saves registers; with preallocation it can stay in a
    caller-saves register, with the standard convention it needs a
    callee-saves register plus save/restore."""
    standard_options = AnalyzerOptions(
        global_promotion="none", spill_code_motion=False
    )
    _, standard_exe = _compile(standard_options)
    standard = run_executable(standard_exe)

    prealloc_options = AnalyzerOptions(
        global_promotion="none",
        spill_code_motion=False,
        caller_saves_preallocation=True,
    )
    database, prealloc_exe = _compile(prealloc_options)
    prealloc = Simulator(
        prealloc_exe,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run()
    assert prealloc.output == standard.output
    assert prealloc.singleton_references < standard.singleton_references
    assert prealloc.cycles < standard.cycles


def test_directives_carry_prefix_and_subtree():
    options = AnalyzerOptions(caller_saves_preallocation=True)
    database, _ = _compile(options)
    worker = database.get("worker")
    assert worker.caller_prefix is not None
    assert RV in worker.subtree_caller_used
    leaf = database.get("leaf")
    assert leaf.subtree_caller_used < frozenset(CALLER_SAVES)


def test_json_round_trip_with_prefix():
    options = AnalyzerOptions(caller_saves_preallocation=True)
    database, _ = _compile(options)
    restored = ProgramDatabase.from_json(database.to_json())
    worker = restored.get("worker")
    assert worker.caller_prefix == database.get("worker").caller_prefix
    assert worker.subtree_caller_used == database.get(
        "worker"
    ).subtree_caller_used


@pytest.mark.parametrize("seed", range(6))
def test_preallocation_differential_on_random_programs(seed):
    from repro.testing import generate_program

    sources = generate_program(seed * 7 + 11)
    phase1 = run_phase1(sources)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase()),
        max_cycles=50_000_000,
    )
    options = AnalyzerOptions.config("C")
    options.caller_saves_preallocation = True
    database = analyze_program(summaries, options)
    exe = compile_with_database(phase1, database)
    stats = Simulator(
        exe,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run(50_000_000)
    assert stats.output == baseline.output
