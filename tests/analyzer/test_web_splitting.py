"""Sparse web splitting tests (paper section 7.6.1).

A web with isolated references at the two ends of a long call chain can
be split into two tight webs; members of split webs save/restore the
promoted register around calls from which the variable is reachable
outside the web.
"""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.analyzer.webs import (
    WebOptions,
    check_web_invariants,
    identify_webs,
)
from repro.callgraph.dataflow import compute_reference_sets
from tests.support import build_graph

SPLIT_OPTIONS = WebOptions(
    min_lref_ratio=0.0,
    min_single_node_refs=0.0,
    split_sparse_webs=True,
    split_lref_ratio=0.5,
)

# g referenced at the top (driver) and at the bottom (leaf) of a long
# chain of middlemen that never touch it.
CHAIN = {
    "main": {"calls": {"driver": 1}},
    "driver": {"calls": {"mid1": 10}, "refs": {"g": 20},
               "stores": {"g": 10}},
    "mid1": {"calls": {"mid2": 1}},
    "mid2": {"calls": {"mid3": 1}},
    "mid3": {"calls": {"leaf": 1}},
    "leaf": {"refs": {"g": 20}, "stores": {"g": 10}},
}


def split_webs(procs, globals_):
    graph, summary = build_graph(procs, globals_)
    sets = compute_reference_sets(graph, set(globals_))
    webs = identify_webs(graph, sets, set(globals_), SPLIT_OPTIONS)
    return graph, sets, webs, summary


def test_sparse_chain_web_splits_into_two():
    graph, sets, webs, _ = split_webs(CHAIN, ("g",))
    live = [w for w in webs if w.is_live]
    assert len(live) == 2
    shapes = {frozenset(w.nodes) for w in live}
    assert frozenset({"driver"}) in shapes
    assert frozenset({"leaf"}) in shapes
    assert all(w.from_split for w in live)
    check_web_invariants(graph, sets, live)


def test_dense_web_not_split():
    procs = {
        "main": {"calls": {"a": 1}},
        "a": {"calls": {"b": 1}, "refs": {"g": 5}},
        "b": {"refs": {"g": 5}},
    }
    graph, sets, webs, _ = split_webs(procs, ("g",))
    (web,) = [w for w in webs if w.is_live]
    assert not web.from_split
    assert web.nodes == {"a", "b"}


def test_indirect_callers_block_splitting():
    procs = dict(CHAIN)
    procs["driver"] = {
        "calls": {"mid1": 10}, "refs": {"g": 20},
        "indirect": True, "address_taken": ["leaf"],
    }
    graph, sets, webs, _ = split_webs(procs, ("g",))
    assert all(not w.from_split for w in webs)


def test_wrap_callees_directive_emitted():
    _, _, _, summary = split_webs(CHAIN, ("g",))
    database = analyze_program(
        [summary],
        AnalyzerOptions(web_options=SPLIT_OPTIONS,
                        spill_code_motion=False),
    )
    driver = database.get("driver")
    g = next(p for p in driver.promoted if p.name == "g")
    assert g.wrap_callees == ("mid1",)
    leaf = database.get("leaf")
    g_leaf = next(p for p in leaf.promoted if p.name == "g")
    assert g_leaf.wrap_callees == ()


def test_intermediate_procs_do_not_reserve_the_register():
    _, _, _, summary = split_webs(CHAIN, ("g",))
    database = analyze_program(
        [summary],
        AnalyzerOptions(web_options=SPLIT_OPTIONS,
                        spill_code_motion=False),
    )
    for middle in ("mid1", "mid2", "mid3"):
        assert not database.get(middle).promoted
    # That is the point of splitting: the register is free for other
    # uses in the middle of the chain.
    driver_regs = database.get("driver").reserved_web_registers
    assert driver_regs
    for middle in ("mid1", "mid2", "mid3"):
        assert not database.get(middle).reserved_web_registers


SPLIT_PROGRAM = {
    "top": """
        int shared;
        extern int mid1(int);
        int driver(int n) {
          int i;
          int acc = 0;
          for (i = 0; i < n; i++) {
            shared = shared + i;
            acc += mid1(i);
            acc += shared;
          }
          return acc;
        }
        int main() {
          int r = driver(30);
          print(r);
          return r & 255;
        }
    """,
    "middle": """
        extern int leaf(int);
        int mid3(int x) { return leaf(x) + 1; }
        int mid2(int x) { return mid3(x * 2) - 1; }
        int mid1(int x) {
          int a = x * 3 + 1;
          int b = mid2(a);
          return a + b;
        }
    """,
    "bottom": """
        extern int shared;
        int leaf(int x) {
          shared = shared ^ x;
          return shared & 15;
        }
    """,
}


def test_split_webs_preserve_semantics_end_to_end():
    phase1 = run_phase1(SPLIT_PROGRAM)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase())
    )
    database = analyze_program(
        summaries,
        AnalyzerOptions(web_options=SPLIT_OPTIONS),
    )
    stats = run_executable(compile_with_database(phase1, database))
    assert stats.output == baseline.output
    assert stats.exit_code == baseline.exit_code
    # And splitting actually happened: driver wraps its call into the
    # chain, and the middlemen do not reserve the register.
    driver = database.get("driver")
    assert any(p.wrap_callees == ("mid1",) for p in driver.promoted)
    for middle in ("mid1", "mid2", "mid3"):
        assert not database.get(middle).promoted


@pytest.mark.parametrize("seed", range(6))
def test_split_webs_differential_on_random_programs(seed):
    from repro.testing import generate_program

    sources = generate_program(seed * 13 + 5)
    phase1 = run_phase1(sources)
    summaries = [r.summary for r in phase1]
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase()),
        max_cycles=50_000_000,
    )
    database = analyze_program(
        summaries,
        AnalyzerOptions(
            web_options=WebOptions(split_sparse_webs=True)
        ),
    )
    stats = run_executable(
        compile_with_database(phase1, database),
        max_cycles=50_000_000,
    )
    assert stats.output == baseline.output
