"""Web identification tests (paper section 4.1, Figure 2)."""

import random

from hypothesis import given, settings, strategies as st

from repro.callgraph.dataflow import compute_reference_sets
from repro.analyzer.webs import (
    WebOptions,
    check_web_invariants,
    identify_webs,
)
from tests.support import build_graph, figure3_graph

LOOSE = WebOptions(min_lref_ratio=0.0, min_single_node_refs=0.0)


def webs_for(graph, eligible, options=LOOSE, static_modules=None):
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(graph, sets, eligible, options, static_modules)
    return webs, sets


def test_figure3_webs_match_table2():
    graph, _ = figure3_graph()
    webs, sets = webs_for(graph, {"g1", "g2", "g3"})
    check_web_invariants(graph, sets, webs)
    shapes = {(w.variable, frozenset(w.nodes)) for w in webs}
    assert shapes == {
        ("g3", frozenset("ABC")),
        ("g2", frozenset("CFG")),
        ("g2", frozenset("E")),
        ("g1", frozenset("BDE")),
    }


def test_figure3_entry_nodes():
    graph, _ = figure3_graph()
    webs, _ = webs_for(graph, {"g1", "g2", "g3"})
    entries = {
        frozenset(w.nodes): w.entry_nodes(graph) for w in webs
    }
    assert entries[frozenset("BDE")] == {"B"}  # the paper's example
    assert entries[frozenset("ABC")] == {"A"}
    assert entries[frozenset("CFG")] == {"C"}


def test_disjoint_regions_one_variable_two_webs():
    graph, _ = build_graph(
        {
            "main": {"calls": {"left": 1, "right": 1}},
            "left": {"refs": {"g": 5}},
            "right": {"refs": {"g": 5}},
        },
        ("g",),
    )
    webs, sets = webs_for(graph, {"g"})
    check_web_invariants(graph, sets, webs)
    assert len(webs) == 2
    assert {frozenset(w.nodes) for w in webs} == {
        frozenset({"left"}), frozenset({"right"}),
    }


def test_overlapping_candidates_merged():
    # Both "top1" and "top2" are candidate entries whose expansions meet.
    graph, _ = build_graph(
        {
            "main": {"calls": {"top1": 1, "top2": 1}},
            "top1": {"calls": {"shared": 1}, "refs": {"g": 5}},
            "top2": {"calls": {"shared": 1}, "refs": {"g": 5}},
            "shared": {"refs": {"g": 5}},
        },
        ("g",),
    )
    webs, sets = webs_for(graph, {"g"})
    check_web_invariants(graph, sets, webs)
    assert len(webs) == 1
    assert webs[0].nodes == {"top1", "top2", "shared"}


def test_entry_node_closure_pulls_in_predecessors():
    # "inner" is reached both from inside the web and from "outside":
    # the outside predecessor must be absorbed (section 4.1.2
    # correctness conditions).
    graph, _ = build_graph(
        {
            "main": {"calls": {"top": 1, "outside": 1}},
            "top": {"calls": {"inner": 1}, "refs": {"g": 5}},
            "outside": {"calls": {"inner": 1}},
            "inner": {"refs": {"g": 5}},
        },
        ("g",),
    )
    webs, sets = webs_for(graph, {"g"})
    check_web_invariants(graph, sets, webs)
    (web,) = webs
    assert "outside" in web.nodes


def test_recursive_cycle_web():
    # Mutual recursion references g, but no candidate entry exists on the
    # entry path (main does not reference g).
    graph, _ = build_graph(
        {
            "main": {"calls": {"even": 1}, "refs": {"g": 1}},
            "even": {"calls": {"odd": 1}},
            "odd": {"calls": {"even": 1}, "refs": {"g": 5}},
        },
        ("g",),
    )
    webs, sets = webs_for(graph, {"g"})
    check_web_invariants(graph, sets, webs)
    covered = set()
    for web in webs:
        covered |= web.nodes
    assert "odd" in covered


def test_every_referencing_node_covered_by_some_web():
    graph, _ = figure3_graph()
    webs, sets = webs_for(graph, {"g1", "g2", "g3"})
    for variable in ("g1", "g2", "g3"):
        covered = set()
        for web in webs:
            if web.variable == variable:
                covered |= web.nodes
        for name in graph.nodes:
            if variable in sets.l_ref[name]:
                assert name in covered, (variable, name)


def test_sparse_web_discarded():
    graph, _ = build_graph(
        {
            "main": {"calls": {"a": 1}, "refs": {"g": 1}},
            "a": {"calls": {"b": 1}},
            "b": {"calls": {"c": 1}},
            "c": {"calls": {"d": 1}},
            "d": {"refs": {"g": 1}},
        },
        ("g",),
    )
    options = WebOptions(min_lref_ratio=0.5, min_single_node_refs=0.0)
    webs, _ = webs_for(graph, {"g"}, options)
    assert any(w.discarded_reason == "sparse" for w in webs)


def test_single_node_low_frequency_discarded():
    graph, _ = build_graph(
        {
            "main": {"calls": {"a": 1}},
            "a": {"refs": {"g": 1}},
        },
        ("g",),
    )
    options = WebOptions(min_lref_ratio=0.0, min_single_node_refs=1e9)
    webs, _ = webs_for(graph, {"g"}, options)
    assert webs[0].discarded_reason == "single-node-low-frequency"


def test_static_cross_module_entry_discarded():
    # The web's entry lands in a module that cannot name the static.
    from repro.callgraph.graph import CallGraph
    from repro.frontend.summary import (
        GlobalSummary,
        ModuleSummary,
        ProcedureSummary,
    )

    mod_a = ModuleSummary(module_name="a")
    mod_a.globals = [
        GlobalSummary(name="a.s", module="a", is_static=True)
    ]
    mod_a.procedures = [
        ProcedureSummary(name="user", module="a", global_refs={"a.s": 5}),
    ]
    mod_b = ModuleSummary(module_name="b")
    mod_b.procedures = [
        ProcedureSummary(name="main", module="b", calls={"entry": 1}),
        ProcedureSummary(
            name="entry", module="b", calls={"user": 1},
            global_refs={"a.s": 5},
        ),
    ]
    graph = CallGraph.build([mod_a, mod_b])
    graph.normalize_weights()
    sets = compute_reference_sets(graph, {"a.s"})
    webs = identify_webs(
        graph, sets, {"a.s"}, LOOSE, static_modules={"a.s": "a"}
    )
    assert any(
        w.discarded_reason == "static-cross-module-entry" for w in webs
    )


def test_static_same_module_entry_kept():
    graph, _ = build_graph(
        {
            "main": {"calls": {"user": 1}},
            "user": {"refs": {"m.s": 5}},
        },
    )
    sets = compute_reference_sets(graph, {"m.s"})
    webs = identify_webs(
        graph, sets, {"m.s"}, LOOSE, static_modules={"m.s": "m"}
    )
    assert webs[0].discarded_reason is None


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_web_invariants_on_random_graphs(seed):
    """Property: the section 4.1.2 invariants hold on arbitrary DAG-ish
    call graphs with random global reference patterns."""
    rng = random.Random(seed)
    size = rng.randint(3, 14)
    names = [f"p{i}" for i in range(size)]
    globals_ = [f"g{i}" for i in range(rng.randint(1, 4))]
    procs = {}
    for i, name in enumerate(names):
        calls = {}
        for _ in range(rng.randint(0, 3)):
            target = rng.choice(names)
            if rng.random() < 0.85:
                # Mostly forward edges; occasionally cycles.
                later = names[i + 1:]
                if later:
                    target = rng.choice(later)
            if target != name:
                calls[target] = rng.randint(1, 10)
        refs = {
            g: rng.randint(1, 20)
            for g in globals_
            if rng.random() < 0.4
        }
        procs[name] = {"calls": calls, "refs": refs}
    graph, _ = build_graph(procs, tuple(globals_))
    eligible = set(globals_)
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(graph, sets, eligible, LOOSE)
    live = [w for w in webs if w.is_live]
    check_web_invariants(graph, sets, live)
