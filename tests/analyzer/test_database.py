"""Program database tests (paper section 4.3)."""

import pytest

from repro.analyzer.database import (
    ProcedureDirectives,
    ProgramDatabase,
    PromotedGlobal,
    default_directives,
)
from repro.target.registers import CALLEE_SAVES, CALLER_SAVES


def test_default_directives_are_standard_convention():
    directives = default_directives("f")
    assert directives.caller == frozenset(CALLER_SAVES)
    assert directives.callee == frozenset(CALLEE_SAVES)
    assert directives.free == frozenset()
    assert directives.mspill == frozenset()
    assert not directives.is_cluster_root
    directives.validate()


def test_database_returns_default_for_unknown():
    database = ProgramDatabase()
    directives = database.get("library_function")
    assert directives.caller == frozenset(CALLER_SAVES)
    assert "library_function" not in database


def test_put_and_get():
    database = ProgramDatabase()
    directives = ProcedureDirectives(
        name="f",
        free=frozenset({16, 17}),
        callee=frozenset(CALLEE_SAVES) - {16, 17},
    )
    database.put(directives)
    assert database.get("f") is directives
    assert "f" in database


def test_overlapping_sets_rejected():
    directives = ProcedureDirectives(
        name="f",
        free=frozenset({16}),
        callee=frozenset(CALLEE_SAVES),  # also contains 16
    )
    with pytest.raises(ValueError, match="overlap"):
        directives.validate()


def test_mspill_requires_cluster_root():
    directives = ProcedureDirectives(
        name="f",
        mspill=frozenset({16}),
        callee=frozenset(CALLEE_SAVES) - {16},
        is_cluster_root=False,
    )
    with pytest.raises(ValueError, match="MSPILL"):
        directives.validate()


def test_web_registers_must_be_reserved():
    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31),),
        # 31 still in callee: invalid.
    )
    with pytest.raises(ValueError, match="web-reserved"):
        directives.validate()


def test_reserved_web_registers_property():
    directives = ProcedureDirectives(
        name="f",
        promoted=(
            PromotedGlobal("g", 31, is_entry=True),
            PromotedGlobal("h", 30),
        ),
        callee=frozenset(CALLEE_SAVES) - {30, 31},
    )
    assert directives.reserved_web_registers == frozenset({30, 31})


def test_json_round_trip():
    database = ProgramDatabase()
    database.put(
        ProcedureDirectives(
            name="f",
            free=frozenset({16}),
            caller=frozenset(CALLER_SAVES),
            callee=frozenset(CALLEE_SAVES) - {16, 31},
            mspill=frozenset(),
            promoted=(
                PromotedGlobal("g", 31, is_entry=True, needs_store=False),
            ),
        )
    )
    database.put(
        ProcedureDirectives(
            name="root",
            callee=frozenset(CALLEE_SAVES) - {20},
            mspill=frozenset({20}),
            is_cluster_root=True,
        )
    )
    restored = ProgramDatabase.from_json(database.to_json())
    f = restored.get("f")
    assert f.free == frozenset({16})
    assert f.promoted[0].name == "g"
    assert f.promoted[0].register == 31
    assert f.promoted[0].is_entry
    assert not f.promoted[0].needs_store
    root = restored.get("root")
    assert root.is_cluster_root
    assert root.mspill == frozenset({20})
