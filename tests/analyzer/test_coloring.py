"""Web interference and coloring tests (paper section 4.1.3, Table 2)."""

from repro.analyzer.coloring import (
    color_webs_greedy,
    color_webs_priority,
    compute_web_priority,
    select_blanket_globals,
    web_register_pool,
)
from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.webs import identify_webs, WebOptions
from repro.callgraph.dataflow import compute_reference_sets
from repro.target.registers import CALLEE_SAVES
from tests.support import build_graph, figure3_graph

LOOSE = WebOptions(min_lref_ratio=0.0, min_single_node_refs=0.0)


def figure3_webs():
    graph, _ = figure3_graph()
    eligible = {"g1", "g2", "g3"}
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(graph, sets, eligible, LOOSE)
    return graph, webs


def by_nodes(webs):
    return {frozenset(w.nodes): w for w in webs}


def test_interference_from_shared_nodes():
    graph, webs = figure3_webs()
    ig = WebInterferenceGraph(webs)
    shapes = by_nodes(webs)
    w_abc = shapes[frozenset("ABC")]
    w_cfg = shapes[frozenset("CFG")]
    w_bde = shapes[frozenset("BDE")]
    w_e = shapes[frozenset("E")]
    assert ig.interferes(w_abc, w_cfg)  # share C
    assert ig.interferes(w_abc, w_bde)  # share B
    assert ig.interferes(w_bde, w_e)  # share E
    assert not ig.interferes(w_cfg, w_bde)
    assert not ig.interferes(w_abc, w_e)
    assert ig.degree(w_abc) == 2


def test_table2_coloring_two_registers_suffice():
    graph, webs = figure3_webs()
    ig = WebInterferenceGraph(webs)
    color_webs_priority(webs, ig, graph, num_registers=2)
    shapes = by_nodes(webs)
    w_abc = shapes[frozenset("ABC")]
    w_cfg = shapes[frozenset("CFG")]
    w_bde = shapes[frozenset("BDE")]
    w_e = shapes[frozenset("E")]
    assert all(w.register is not None for w in webs)
    # Up to register renaming, the paper's Table 2 assignment.
    assert w_abc.register == w_e.register
    assert w_cfg.register == w_bde.register
    assert w_abc.register != w_cfg.register


def test_one_register_colors_highest_priority_webs_only():
    graph, webs = figure3_webs()
    ig = WebInterferenceGraph(webs)
    color_webs_priority(webs, ig, graph, num_registers=1)
    colored = [w for w in webs if w.register is not None]
    uncolored = [w for w in webs if w.register is None]
    assert colored and uncolored
    # Colored webs never interfere with each other.
    for i, a in enumerate(colored):
        for b in colored[i + 1:]:
            assert not ig.interferes(a, b)


def test_priority_orders_by_dynamic_benefit():
    graph, _ = build_graph(
        {
            "main": {"calls": {"hot": 100, "cold": 1}},
            "hot": {"refs": {"h": 50}},
            "cold": {"refs": {"c": 1}},
        },
        ("h", "c"),
    )
    sets = compute_reference_sets(graph, {"h", "c"})
    webs = identify_webs(graph, sets, {"h", "c"}, LOOSE)
    hot = next(w for w in webs if w.variable == "h")
    cold = next(w for w in webs if w.variable == "c")
    assert compute_web_priority(hot, graph) > compute_web_priority(
        cold, graph
    )


def test_non_positive_priority_webs_not_promoted():
    # A web whose entry is called far more often than it references the
    # global loses money on the entry load/store.
    graph, _ = build_graph(
        {
            "main": {"calls": {"entry": 1000}},
            "entry": {"refs": {"g": 1}},
        },
        ("g",),
    )
    sets = compute_reference_sets(graph, {"g"})
    webs = identify_webs(graph, sets, {"g"}, LOOSE)
    ig = WebInterferenceGraph(webs)
    color_webs_priority(webs, ig, graph, 6)
    assert webs[0].register is None


def test_greedy_respects_member_register_need():
    graph, _ = build_graph(
        {
            "main": {"calls": {"hungry": 10}},
            # The member needs every callee-saves register for itself.
            "hungry": {"refs": {"g": 50}, "need": len(CALLEE_SAVES)},
        },
        ("g",),
    )
    sets = compute_reference_sets(graph, {"g"})
    webs = identify_webs(graph, sets, {"g"}, LOOSE)
    ig = WebInterferenceGraph(webs)
    color_webs_greedy(webs, ig, graph)
    assert webs[0].register is None


def test_greedy_can_color_more_webs_than_fixed_pool():
    # 8 non-interfering hot webs; a 6-register pool colors only 6...
    procs = {"main": {"calls": {}}}
    globals_ = []
    for i in range(8):
        procs["main"]["calls"][f"leaf{i}"] = 10
        procs[f"leaf{i}"] = {"refs": {f"g{i}": 50}}
        globals_.append(f"g{i}")
    graph, _ = build_graph(procs, tuple(globals_))
    eligible = set(globals_)
    sets = compute_reference_sets(graph, eligible)

    webs_fixed = identify_webs(graph, sets, eligible, LOOSE)
    ig = WebInterferenceGraph(webs_fixed)
    color_webs_priority(webs_fixed, ig, graph, num_registers=6)
    # ...webs do not interfere (different nodes), so all 8 get a color
    # even from the fixed pool; shrink the pool to force the contrast.
    color_map = [w for w in webs_fixed if w.register is not None]
    assert len(color_map) == 8

    webs_greedy = identify_webs(graph, sets, eligible, LOOSE)
    ig2 = WebInterferenceGraph(webs_greedy)
    color_webs_greedy(webs_greedy, ig2, graph)
    assert sum(1 for w in webs_greedy if w.register is not None) == 8


def test_interfering_webs_get_distinct_registers_greedy():
    graph, webs = figure3_webs()
    ig = WebInterferenceGraph(webs)
    color_webs_greedy(webs, ig, graph)
    for i, a in enumerate(webs):
        for b in webs[i + 1:]:
            if a.register is None or b.register is None:
                continue
            if ig.interferes(a, b):
                assert a.register != b.register


def test_blanket_selects_hottest_globals():
    graph, _ = build_graph(
        {
            "main": {"calls": {"a": 1, "b": 1}},
            "a": {"refs": {"hot1": 100, "hot2": 90}},
            "b": {"refs": {"cold": 1, "hot3": 80}},
        },
        ("hot1", "hot2", "hot3", "cold"),
    )
    eligible = {"hot1", "hot2", "hot3", "cold"}
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(graph, sets, eligible, LOOSE)
    for web in webs:
        web.priority = compute_web_priority(web, graph)
    picks = select_blanket_globals(webs, graph, count=3)
    assert [p.variable for p in picks] == ["hot1", "hot2", "hot3"]
    registers = {p.register for p in picks}
    assert len(registers) == 3
    assert registers <= set(CALLEE_SAVES)


def test_web_register_pool_from_top_of_callee_saves():
    pool = web_register_pool(3)
    assert pool == sorted(CALLEE_SAVES, reverse=True)[:3]
