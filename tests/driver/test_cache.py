"""Cache-invalidation contract of the incremental driver.

The paper's recompilation story (sections 2 and 7.4): editing one
module re-runs phase 1 for that module only; changing analyzer options
re-runs the analyzer and then phase 2 only where a module's slice of
the program database actually changed.  These tests pin that contract
down with exact hit/miss counts — and verify the cache never trusts a
corrupt or truncated entry.
"""

import os

import pytest

from repro import AnalyzerOptions, ProgramDatabase, run_executable
from repro.backend.phase2 import module_directive_names
from repro.driver.cache import ArtifactCache, phase2_key
from repro.driver.scheduler import CompilationScheduler
from repro.frontend.phase1 import phase1_fingerprint
from repro.linker.link import executable_fingerprint

# Three modules chosen so analyzer-configuration changes move some
# modules' directives but not others (asserted by the tests below):
# "hot" has the promoted-global traffic, "pure" is leaf arithmetic.
SOURCES = {
    "hot": """
        extern int counter;
        int tick(int by) { counter += by; return counter; }
        int spin(int n) { int i; int acc; acc = 0;
          for (i = 0; i < n; i++) acc += tick(i);
          return acc; }
    """,
    "pure": """
        int square(int x) { return x * x; }
        int cube(int x) { return x * square(x); }
    """,
    "main": """
        int counter;
        extern int spin(int);
        extern int cube(int);
        int main() { int v; v = spin(25) + cube(3);
          print(v); print(counter); return v & 255; }
    """,
}


@pytest.fixture
def scheduler(tmp_path):
    with CompilationScheduler(jobs=1, cache_dir=tmp_path / "cache") as sched:
        yield sched


# -- unit level: the artifact store itself ------------------------------


def test_cache_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    cache.store("phase1", "ab" * 32, {"payload": [1, 2, 3]})
    assert cache.load("phase1", "ab" * 32) == {"payload": [1, 2, 3]}
    assert cache.stats.hits["phase1"] == 1
    assert len(cache) == 1


def test_cache_miss_counts(tmp_path):
    cache = ArtifactCache(tmp_path / "c")
    assert cache.load("phase1", "cd" * 32) is None
    assert cache.stats.misses["phase1"] == 1
    assert cache.stats.bad_entries["phase1"] == 0


@pytest.mark.parametrize(
    "corruption", ["truncate", "bitflip", "magic", "empty"]
)
def test_corrupt_entries_are_never_trusted(tmp_path, corruption):
    cache = ArtifactCache(tmp_path / "c")
    key = "ef" * 32
    cache.store("phase2", key, list(range(100)))
    path = cache._path(key)
    blob = open(path, "rb").read()
    if corruption == "truncate":
        blob = blob[: len(blob) // 2]
    elif corruption == "bitflip":
        blob = blob[:-10] + bytes([blob[-10] ^ 0xFF]) + blob[-9:]
    elif corruption == "magic":
        blob = b"not-a-cache-entry\n" + blob
    else:
        blob = b""
    with open(path, "wb") as handle:
        handle.write(blob)
    assert cache.load("phase2", key) is None
    assert cache.stats.bad_entries["phase2"] == 1
    assert not os.path.exists(path), "bad entry must be evicted"
    # The slot is reusable after eviction.
    cache.store("phase2", key, "fresh")
    assert cache.load("phase2", key) == "fresh"


def test_keys_separate_opt_levels_and_sources():
    fp = phase1_fingerprint
    assert fp("int x;", "m", 2) != fp("int x;", "m", 1)
    assert fp("int x;", "m", 2) != fp("int y;", "m", 2)
    assert fp("int x;", "m", 2) != fp("int x;", "n", 2)
    assert phase2_key("p1", "dd", 2) != phase2_key("p1", "dd", 1)
    assert phase2_key("p1", "dd", 2) != phase2_key("p1", "ee", 2)


# -- system level: invalidation granularity -----------------------------


def test_editing_one_module_recompiles_only_that_module(scheduler):
    first = scheduler.compile_program(SOURCES)
    edited = dict(SOURCES)
    edited["pure"] = SOURCES["pure"].replace(
        "x * square(x)", "square(x) * x"
    )
    scheduler.reset_metrics()
    second = scheduler.compile_program(edited)
    metrics = scheduler.metrics_snapshot()
    assert metrics.stage_tasks["phase1"] == 1, (
        "exactly the edited module's phase 1 must re-run"
    )
    assert metrics.cache_hits["phase1"] == len(SOURCES) - 1
    # Directives did not move (no analyzer), so phase 2 re-runs for the
    # edited module alone.
    assert metrics.stage_tasks["phase2"] == 1
    assert metrics.cache_hits["phase2"] == len(SOURCES) - 1
    # Behavior is unchanged by this semantics-preserving edit.
    assert (
        run_executable(second.executable).output
        == run_executable(first.executable).output
    )


def test_unchanged_rebuild_is_all_hits(scheduler):
    scheduler.compile_program(SOURCES)
    scheduler.reset_metrics()
    result = scheduler.compile_program(SOURCES)
    metrics = scheduler.metrics_snapshot()
    assert metrics.stage_tasks["phase1"] == 0
    assert metrics.stage_tasks["phase2"] == 0
    assert not metrics.cache_misses
    assert result.metrics.cache_hits["phase1"] == len(SOURCES)


def test_analyzer_change_reuses_all_phase1(scheduler):
    scheduler.compile_program(
        SOURCES, analyzer_options=AnalyzerOptions.config("C")
    )
    scheduler.reset_metrics()
    scheduler.compile_program(
        SOURCES, analyzer_options=AnalyzerOptions.config("E")
    )
    metrics = scheduler.metrics_snapshot()
    assert metrics.stage_tasks["phase1"] == 0
    assert metrics.cache_hits["phase1"] == len(SOURCES)


def test_analyzer_change_recompiles_only_digest_changed_modules(scheduler):
    """Phase-2 invalidation follows the per-module directive digest,
    not the database as a whole."""
    phase1 = scheduler.run_phase1(SOURCES)
    summaries = [result.summary for result in phase1]
    db_c = scheduler.analyze(summaries, AnalyzerOptions.config("C"))
    db_e = scheduler.analyze(summaries, AnalyzerOptions.config("E"))
    changed = {
        result.ir_module.name
        for result in phase1
        if db_c.directive_digest(module_directive_names(result.ir_module))
        != db_e.directive_digest(module_directive_names(result.ir_module))
    }
    # The fixture program is built so the switch moves some but not all
    # modules — otherwise this test would assert nothing.
    assert changed and changed != set(SOURCES)

    scheduler.compile_with_database(phase1, db_c)
    scheduler.reset_metrics()
    scheduler.compile_with_database(phase1, db_e)
    metrics = scheduler.metrics_snapshot()
    assert metrics.stage_tasks["phase2"] == len(changed)
    assert metrics.cache_hits["phase2"] == len(SOURCES) - len(changed)


def test_identical_directive_slices_share_phase2_objects(scheduler):
    """Configs that agree on every module's directive slice (C and D
    here) share all phase-2 work."""
    phase1 = scheduler.run_phase1(SOURCES)
    summaries = [result.summary for result in phase1]
    db_c = scheduler.analyze(summaries, AnalyzerOptions.config("C"))
    db_d = scheduler.analyze(summaries, AnalyzerOptions.config("D"))
    for result in phase1:
        names = module_directive_names(result.ir_module)
        assert db_c.directive_digest(names) == db_d.directive_digest(names)
    scheduler.compile_with_database(phase1, db_c)
    scheduler.reset_metrics()
    scheduler.compile_with_database(phase1, db_d)
    assert scheduler.metrics_snapshot().stage_tasks["phase2"] == 0


def test_corrupt_scheduler_entry_recomputed_bit_identically(tmp_path):
    cache_dir = tmp_path / "cache"
    with CompilationScheduler(jobs=1, cache_dir=cache_dir) as one:
        first = one.compile_program(SOURCES)
    # Vandalize every stored artifact.
    count = 0
    for dirpath, _dirnames, filenames in os.walk(cache_dir):
        for name in filenames:
            if name.endswith(".pkl"):
                path = os.path.join(dirpath, name)
                with open(path, "r+b") as handle:
                    handle.truncate(os.path.getsize(path) // 3)
                count += 1
    assert count == 2 * len(SOURCES)
    with CompilationScheduler(jobs=1, cache_dir=cache_dir) as two:
        second = two.compile_program(SOURCES)
        metrics = two.metrics_snapshot()
    assert sum(metrics.cache_bad_entries.values()) == count
    assert not metrics.cache_hits
    assert executable_fingerprint(first.executable) == \
        executable_fingerprint(second.executable)


def test_default_database_digest_equals_absent_digest(scheduler):
    """An explicitly-default directive entry and no entry at all are
    the same thing to phase 2, so they must digest identically."""
    from repro.analyzer.database import default_directives

    empty = ProgramDatabase()
    explicit = ProgramDatabase()
    explicit.put(default_directives("square"))
    names = ("square", "cube")
    assert empty.directive_digest(names) == explicit.directive_digest(names)


# -- bounded disk footprint ---------------------------------------------
#
# max_bytes caps the cache directory; stores evict the least-recently-
# accessed entries (loads refresh an entry's clock) until the total
# fits.  Mtimes are set explicitly below, so the tests are immune to
# filesystem timestamp granularity.


from repro.driver.cache import text_digest


def test_capped_cache_evicts_least_recently_accessed(tmp_path):
    cache = ArtifactCache(tmp_path / "c", max_bytes=15_000)
    blob = b"x" * 4000
    keys = [text_digest(f"entry-{i}") for i in range(3)]
    for key in keys:
        cache.store("phase1", key, blob)
    assert len(cache) == 3
    assert cache.total_bytes() <= 15_000
    # keys[1] is the coldest, keys[2] lukewarm, keys[0] untouched (hot:
    # its mtime is the recent store time).
    os.utime(cache._path(keys[1]), (1, 1))
    os.utime(cache._path(keys[2]), (2, 2))
    cache.store("phase1", text_digest("entry-3"), blob)
    assert cache.total_bytes() <= 15_000
    assert cache.load("phase1", keys[1]) is None, "coldest entry evicted"
    assert cache.load("phase1", keys[0]) == blob, "hot entry survives"
    assert cache.stats.evictions["phase1"] == 1


def test_hot_entry_keeps_hitting_under_store_pressure(tmp_path):
    cache = ArtifactCache(tmp_path / "c", max_bytes=15_000)
    hot = text_digest("hot")
    cache.store("phase1", hot, b"h" * 4000)
    for i in range(6):
        assert cache.load("phase1", hot) is not None
        filler = text_digest(f"filler-{i}")
        cache.store("phase1", filler, bytes([i]) * 4000)
        # Age the filler far into the past so every future eviction
        # round prefers it over the freshly-touched hot entry.
        os.utime(cache._path(filler), (100 + i, 100 + i))
        assert cache.total_bytes() <= cache.max_bytes
    assert cache.load("phase1", hot) is not None
    assert cache.stats.hits["phase1"] == 7
    assert cache.stats.evictions["phase1"] >= 3


def test_oversized_artifact_degrades_to_single_entry(tmp_path):
    """An artifact bigger than the whole budget is still cached (the
    just-written entry is never the victim); the next store displaces
    it."""
    cache = ArtifactCache(tmp_path / "c", max_bytes=1000)
    big = text_digest("big")
    cache.store("phase1", big, b"z" * 5000)
    assert cache.load("phase1", big) is not None
    assert len(cache) == 1
    cache.store("phase1", text_digest("other"), b"w" * 5000)
    assert cache.load("phase1", big) is None
    assert len(cache) == 1


def test_cache_limit_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
    assert ArtifactCache(tmp_path / "a").max_bytes == 12345
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
    assert ArtifactCache(tmp_path / "b").max_bytes is None
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
    assert ArtifactCache(tmp_path / "d").max_bytes is None
    # An explicit constructor argument wins over the environment.
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "999999")
    assert ArtifactCache(tmp_path / "e", max_bytes=42).max_bytes == 42


def test_eviction_counters_reach_scheduler_metrics(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "2000")
    with CompilationScheduler(jobs=1, cache_dir=tmp_path / "c") as sched:
        sched.compile_program(SOURCES)
        metrics = sched.metrics_snapshot()
    assert sum(metrics.cache_evictions.values()) > 0
    assert ArtifactCache(tmp_path / "c").total_bytes() <= 2000
