"""Scheduler-level behavior: instrumentation, the plain-API bridge, and
the parallel wall-clock win on multi-core hosts."""

import os
import time

import pytest

from repro import AnalyzerOptions, ProgramDatabase, compile_program
from repro.driver import pipeline
from repro.driver.scheduler import CompilationScheduler, MetricsSnapshot
from repro.workloads import all_workloads

MATRIX_CONFIGS = (None, "A", "C", "D", "E")


def _compile_matrix(scheduler):
    """Compile every Table-3 workload under the no-profile analyzer
    columns (the profiled columns cost the same at compile time)."""
    for workload in all_workloads().values():
        phase1 = scheduler.run_phase1(workload.sources)
        summaries = [result.summary for result in phase1]
        for config in MATRIX_CONFIGS:
            if config is None:
                database = ProgramDatabase()
            else:
                database = scheduler.analyze(
                    summaries, AnalyzerOptions.config(config)
                )
            scheduler.compile_with_database(phase1, database)


def test_metrics_surface_on_compilation_result():
    with CompilationScheduler(jobs=1) as scheduler:
        result = scheduler.compile_program(
            {"main": "int main() { print(7); return 0; }"},
            analyzer_options=AnalyzerOptions.config("C"),
        )
    metrics = result.metrics
    assert isinstance(metrics, MetricsSnapshot)
    for stage in ("phase1", "analyze", "phase2", "link"):
        assert metrics.stage_seconds.get(stage, 0) > 0, stage
    assert metrics.stage_tasks == {"phase1": 1, "analyze": 1, "phase2": 1}
    payload = metrics.to_json_dict()
    assert set(payload) == {
        "jobs", "stage_seconds", "stage_tasks",
        "cache_hits", "cache_misses", "cache_bad_entries",
        "cache_evictions", "audit", "analyze",
    }
    assert payload["audit"] == {}  # auditing was off for this compile
    assert payload["analyze"] == {}  # and so was incremental analysis


def test_metrics_track_analyze_counters():
    """MetricsSnapshot.minus diffs the analyze counters the same way it
    diffs cache counters, and to_json_dict carries them."""
    before = MetricsSnapshot(
        jobs=1, analyze={"runs": 3, "webs_reused": 40}
    )
    after = MetricsSnapshot(
        jobs=1,
        analyze={"runs": 5, "webs_reused": 55, "incremental": 2},
    )
    delta = after.minus(before)
    assert delta.analyze == {
        "runs": 2, "webs_reused": 15, "incremental": 2
    }
    assert delta.to_json_dict()["analyze"] == delta.analyze


def test_minus_carries_audit_snapshot_without_sharing():
    """The audit dict is a point-in-time snapshot with nested
    non-numeric values; ``minus`` carries the newer value (never a
    numeric diff) and never shares mutable structure."""
    before = MetricsSnapshot(
        jobs=1,
        audit={"violation_count": 1, "violations_by_check": {"a": 1}},
    )
    after = MetricsSnapshot(
        jobs=1,
        audit={"violation_count": 2, "violations_by_check": {"b": 2}},
    )
    delta = after.minus(before)
    assert delta.audit == after.audit
    assert delta.audit is not after.audit
    delta.audit["violations_by_check"]["b"] = 99
    assert after.audit["violations_by_check"]["b"] == 2
    # The receiver is always the carried side, whatever the operand.
    assert before.minus(after).audit == before.audit


def test_snapshot_json_round_trip():
    snapshot = MetricsSnapshot(
        jobs=2,
        stage_seconds={"phase1": 1.25},
        stage_tasks={"phase1": 3},
        cache_hits={"phase1": 1},
        cache_misses={"phase2": 2},
        cache_bad_entries={},
        cache_evictions={},
        analyze={"runs": 1},
        audit={"violation_count": 0, "violations_by_check": {}},
    )
    payload = snapshot.to_json_dict()
    clone = MetricsSnapshot.from_json_dict(payload)
    assert clone == snapshot
    assert clone.to_json_dict() == payload
    # to_json_dict deep-copies nested audit state: mutating the payload
    # must not reach back into the snapshot (and vice versa).
    payload["audit"]["violations_by_check"]["x"] = 1
    assert snapshot.audit["violations_by_check"] == {}
    assert clone.audit["violations_by_check"] == {}


def test_stage_timing_survives_raising_phase1():
    """A stage that raises still records its wall-clock: _timed
    finalizes in a ``finally``, so failed work never vanishes from the
    stage_seconds ledger."""
    with CompilationScheduler(jobs=1) as scheduler:
        with pytest.raises(Exception):
            scheduler.run_phase1({"bad": "int main( {"})
        snapshot = scheduler.metrics_snapshot()
    assert snapshot.stage_seconds.get("phase1", 0) > 0


def test_stage_timing_survives_raising_auditor(monkeypatch):
    """A raising auditor still shows up in both verify stage_seconds
    and the verify task count."""
    import repro.driver.scheduler as scheduler_module

    def exploding_audit(executable, database):
        time.sleep(0.005)
        raise RuntimeError("auditor exploded")

    monkeypatch.setattr(
        scheduler_module, "audit_executable", exploding_audit
    )
    with CompilationScheduler(jobs=1, verify=True) as scheduler:
        with pytest.raises(RuntimeError, match="auditor exploded"):
            scheduler.compile_program(
                {"main": "int main() { print(5); return 0; }"}
            )
        snapshot = scheduler.metrics_snapshot()
    assert snapshot.stage_seconds.get("verify", 0) > 0
    assert snapshot.stage_tasks.get("verify") == 1


def test_metrics_diff_isolates_one_compilation(tmp_path):
    with CompilationScheduler(jobs=1, cache_dir=tmp_path) as scheduler:
        sources = {"main": "int main() { print(1); return 0; }"}
        first = scheduler.compile_program(sources)
        second = scheduler.compile_program(sources)
    assert first.metrics.cache_misses.get("phase1") == 1
    assert second.metrics.cache_hits.get("phase1") == 1
    assert "phase1" not in second.metrics.cache_misses


def test_plain_api_defaults_to_serial_uncached():
    scheduler = pipeline.default_scheduler()
    assert scheduler.jobs == 1 or os.environ.get("REPRO_JOBS")
    result = compile_program(
        {"main": "int main() { print(3); return 0; }"}
    )
    assert result.metrics is not None


def test_env_overrides_select_parallel_cached(monkeypatch, tmp_path):
    monkeypatch.setattr(pipeline, "_default_scheduler", None)
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    try:
        scheduler = pipeline.default_scheduler()
        assert scheduler.jobs == 2
        assert scheduler.cache is not None
    finally:
        pipeline.default_scheduler().close()
        monkeypatch.setattr(pipeline, "_default_scheduler", None)


def test_rejects_bad_job_counts():
    with pytest.raises(ValueError):
        CompilationScheduler(jobs=0)
    with pytest.raises(ValueError):
        CompilationScheduler(jobs=-2)


@pytest.mark.slow
@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 4 if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 usable cores",
)
def test_parallel_matrix_at_least_twice_as_fast():
    """Acceptance: the full Table-3 compile matrix runs >= 2x faster
    through the process pool than serially on a 4-core host."""
    with CompilationScheduler(jobs=1) as serial:
        start = time.perf_counter()
        _compile_matrix(serial)
        serial_seconds = time.perf_counter() - start

    with CompilationScheduler(jobs=None) as parallel:
        # Warm the pool: startup is a per-session cost the scheduler
        # amortizes over the whole benchmark matrix.
        parallel.run_phase1({"warm": "int main() { return 0; }"})
        best = float("inf")
        for _attempt in range(2):
            start = time.perf_counter()
            _compile_matrix(parallel)
            best = min(best, time.perf_counter() - start)

    assert best * 2.0 <= serial_seconds, (
        f"parallel matrix {best:.2f}s vs serial {serial_seconds:.2f}s "
        f"({serial_seconds / best:.2f}x, expected >= 2x)"
    )
