"""Sharded artifact cache: prefix routing, per-shard LRU independence,
byte-identical single-shard default, shared-cache scheduler wiring."""

import os

import pytest

from repro import AnalyzerOptions, CompilationScheduler
from repro.driver.cache import ArtifactCache
from repro.linker.link import executable_fingerprint


def key_for_shard(cache: ArtifactCache, shard: int, tag: int) -> str:
    """A 64-hex-char key that routes to ``shard`` (prefix-addressed:
    the first 8 hex chars mod the shard count pick the home)."""
    prefix = format(shard, "08x")
    assert int(prefix, 16) % cache.shards == shard
    return prefix + format(tag, "056x")


class TestDefaultSingleShard:
    def test_default_is_one_shard(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert cache.shards == 1

    def test_layout_matches_historical(self, tmp_path):
        """One shard means the exact historical on-disk layout —
        no shard directory level, same two-char fan-out."""
        cache = ArtifactCache(tmp_path / "c")
        key = "ab" + "0" * 62
        cache.store("phase1", key, {"x": 1})
        expected = tmp_path / "c" / "ab" / (key + ".pkl")
        assert expected.exists()
        assert cache.load("phase1", key) == {"x": 1}

    def test_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "4")
        cache = ArtifactCache(tmp_path / "c")
        assert cache.shards == 4
        monkeypatch.delenv("REPRO_CACHE_SHARDS")
        assert ArtifactCache(tmp_path / "d").shards == 1

    def test_explicit_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "4")
        assert ArtifactCache(tmp_path / "c", shards=2).shards == 2

    def test_invalid_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path / "c", shards=0)


class TestPrefixRouting:
    def test_keys_route_by_prefix(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", shards=4)
        for shard in range(4):
            key = key_for_shard(cache, shard, tag=1)
            assert cache.shard_of(key) == shard
            cache.store("phase1", key, shard)
            expected = (
                tmp_path / "c" / f"shard-{shard:03d}"
                / key[:2] / (key + ".pkl")
            )
            assert expected.exists()

    def test_round_trip_across_shards(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", shards=8)
        keys = {}
        for shard in range(8):
            for tag in range(3):
                key = key_for_shard(cache, shard, tag)
                keys[key] = (shard, tag)
                cache.store("phase2", key, (shard, tag))
        for key, value in keys.items():
            assert cache.load("phase2", key) == value
        assert len(cache) == 24

    def test_sharded_and_single_are_independent_layouts(self, tmp_path):
        single = ArtifactCache(tmp_path / "c", shards=1)
        key = key_for_shard(ArtifactCache(tmp_path / "x", shards=2),
                            0, tag=7)
        single.store("phase1", key, "payload")
        sharded = ArtifactCache(tmp_path / "c2", shards=2)
        sharded.store("phase1", key, "payload")
        single_paths = sorted(
            os.path.relpath(os.path.join(dirpath, name), single.root)
            for dirpath, _dirs, files in os.walk(single.root)
            for name in files
        )
        assert not any(p.startswith("shard-") for p in single_paths)


class TestEvictionIndependence:
    def entry_cost(self, tmp_path) -> int:
        """On-disk bytes of one probe entry (pickle + framing)."""
        probe = ArtifactCache(tmp_path / "probe", shards=2)
        key = key_for_shard(probe, 0, tag=0)
        probe.store("phase1", key, b"v" * 1000)
        return probe.total_bytes()

    def test_filling_one_shard_never_evicts_another(self, tmp_path):
        size = self.entry_cost(tmp_path)
        cache = ArtifactCache(
            tmp_path / "c", max_bytes=3 * size, shards=2
        )
        victim_key = key_for_shard(cache, 1, tag=999)
        cache.store("phase1", victim_key, b"v" * 1000)
        # Overflow shard 0 many times over its own cap.
        for tag in range(10):
            cache.store(
                "phase1", key_for_shard(cache, 0, tag), b"v" * 1000
            )
        assert cache.stats.evictions["phase1"] > 0
        # Shard 1's only entry was never a victim of shard 0's LRU.
        assert cache.load("phase1", victim_key) == b"v" * 1000
        # And shard 0 itself respected its own cap.
        assert cache.shard_bytes(0) <= 3 * size

    def test_cap_is_per_shard_not_global(self, tmp_path):
        size = self.entry_cost(tmp_path)
        cache = ArtifactCache(
            tmp_path / "c", max_bytes=3 * size, shards=4
        )
        # 2 entries per shard: every shard is under its own cap even
        # though the cache as a whole holds 8 > 3 entries.
        for shard in range(4):
            for tag in range(2):
                cache.store(
                    "phase1",
                    key_for_shard(cache, shard, tag),
                    b"v" * 1000,
                )
        assert cache.stats.evictions == {}
        assert len(cache) == 8
        assert cache.total_bytes() > 3 * size

    def test_single_shard_eviction_unchanged(self, tmp_path):
        """The historical global-LRU behavior at shards=1: a store
        can evict any older entry, wherever its key points."""
        size = self.entry_cost(tmp_path)
        cache = ArtifactCache(tmp_path / "c", max_bytes=2 * size)
        helper = ArtifactCache(tmp_path / "h", shards=2)
        for tag in range(4):
            cache.store(
                "phase1", key_for_shard(helper, tag % 2, tag),
                b"v" * 1000,
            )
        assert cache.stats.evictions["phase1"] >= 2
        assert cache.total_bytes() <= 2 * size


class TestSchedulerSharedCache:
    SOURCES = {
        "m": "int g; int main() { g = 2; print(g * 21); return 0; }"
    }

    def test_cache_kwarg_shares_entries(self, tmp_path):
        shared = ArtifactCache(tmp_path / "c", shards=4)
        options = AnalyzerOptions.config("C")
        with CompilationScheduler(jobs=1, cache=shared) as first:
            a = first.compile_program(dict(self.SOURCES), 2, options)
        with CompilationScheduler(jobs=1, cache=shared) as second:
            b = second.compile_program(dict(self.SOURCES), 2, options)
        assert executable_fingerprint(
            a.executable
        ) == executable_fingerprint(b.executable)
        # The second scheduler recompiled nothing.
        assert b.metrics.stage_tasks.get("phase1", 0) == 0
        assert b.metrics.stage_tasks.get("phase2", 0) == 0
        assert shared.stats.hits["phase1"] >= 1
        assert shared.stats.hits["phase2"] >= 1

    def test_cache_and_cache_dir_conflict(self, tmp_path):
        shared = ArtifactCache(tmp_path / "c")
        with pytest.raises(ValueError):
            CompilationScheduler(
                cache=shared, cache_dir=str(tmp_path / "d")
            )

    def test_scheduler_cache_stays_caller_owned(self, tmp_path):
        shared = ArtifactCache(tmp_path / "c", shards=2)
        scheduler = CompilationScheduler(jobs=1, cache=shared)
        assert scheduler.cache is shared
        scheduler.close()
