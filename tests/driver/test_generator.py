"""Random program generator tests (the fuzzing substrate must itself be
trustworthy: deterministic, valid, terminating)."""

import pytest

from repro import compile_and_run, compile_program
from repro.lang.parser import parse_module
from repro.lang.sema import analyze_module
from repro.testing import ProgramGenerator, generate_program


def test_deterministic_per_seed():
    assert generate_program(42) == generate_program(42)


def test_different_seeds_differ():
    assert generate_program(1) != generate_program(2)


@pytest.mark.parametrize("seed", range(10))
def test_generated_programs_parse_and_analyze(seed):
    sources = generate_program(seed + 500)
    for name, text in sources.items():
        analyze_module(parse_module(text, name))


@pytest.mark.parametrize("seed", range(5))
def test_generated_programs_terminate(seed):
    sources = generate_program(seed + 900)
    stats = compile_and_run(sources, max_cycles=50_000_000)
    assert stats.output  # always prints the globals and accumulator


def test_module_and_function_counts_respected():
    generator = ProgramGenerator(
        7, num_modules=3, functions_per_module=2, num_globals=4
    )
    sources = generator.generate()
    assert set(sources) == {"mod0", "mod1", "mod2", "mainmod"}
    result = compile_program(sources)
    names = set(result.executable.function_entries)
    for module_index in range(3):
        for func_index in range(2):
            assert f"f{module_index}_{func_index}" in names
    assert "main" in names
    assert "rec" in names  # the controlled recursive function


def test_statics_stay_module_private():
    """Static globals must never leak as extern references (that would
    be a link error); exercised across many seeds."""
    for seed in range(25):
        sources = generate_program(seed)
        compile_program(sources)  # LinkError would fail the test


def test_programs_use_global_state():
    sources = generate_program(3)
    joined = "\n".join(sources.values())
    assert "int g0" in joined
    assert "garr0" in joined
