"""End-to-end pipeline driver tests."""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    collect_profile,
    compile_and_run,
    compile_program,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program

SOURCES = {
    "counter": """
        int count;
        int bump(int by) { count += by; return count; }
    """,
    "main": """
        extern int bump(int);
        extern int count;
        int main() {
          int i;
          for (i = 0; i < 10; i++) bump(i);
          print(count);
          return count & 255;
        }
    """,
}


def test_compile_and_run_baseline():
    stats = compile_and_run(SOURCES)
    assert stats.output == "45\n"
    assert stats.exit_code == 45


def test_compile_program_exposes_artifacts():
    result = compile_program(SOURCES)
    assert len(result.phase1_results) == 2
    assert len(result.objects) == 2
    assert len(result.summaries) == 2
    assert result.executable.code_size > 0


def test_analyzer_options_engage_ipa():
    result = compile_program(
        SOURCES, analyzer_options=AnalyzerOptions.config("C")
    )
    assert "bump" in result.database
    stats = run_executable(result.executable)
    assert stats.output == "45\n"


def test_all_configs_preserve_output():
    phase1 = run_phase1(SOURCES)
    profile = collect_profile(phase1)
    baseline = run_executable(
        compile_with_database(phase1, ProgramDatabase())
    )
    for config in "ABCDEF":
        options = AnalyzerOptions.config(
            config, profile if config in "BF" else None
        )
        database = analyze_program(
            [r.summary for r in phase1], options
        )
        stats = run_executable(compile_with_database(phase1, database))
        assert stats.output == baseline.output, config
        assert stats.exit_code == baseline.exit_code, config


def test_phase1_results_reusable_across_configs():
    phase1 = run_phase1(SOURCES)
    first = run_executable(compile_with_database(phase1, ProgramDatabase()))
    second = run_executable(compile_with_database(phase1, ProgramDatabase()))
    assert first.output == second.output
    assert first.cycles == second.cycles


def test_promotion_reduces_singleton_references():
    baseline = compile_and_run(SOURCES)
    promoted = compile_and_run(
        SOURCES, analyzer_options=AnalyzerOptions.config("C")
    )
    assert promoted.singleton_references < baseline.singleton_references


def test_sources_as_list_of_pairs():
    stats = compile_and_run([("m", "int main() { return 9; }")])
    assert stats.exit_code == 9


def test_opt_levels():
    for level in (0, 1, 2):
        stats = compile_and_run(SOURCES, opt_level=level)
        assert stats.output == "45\n"


def test_collect_profile_counts():
    phase1 = run_phase1(SOURCES)
    profile = collect_profile(phase1)
    assert profile.node_count("bump") == 10
    assert profile.edge_count("main", "bump") == 10
