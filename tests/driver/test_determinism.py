"""Determinism / equivalence oracle for the compilation scheduler.

The fast paths (process-pool parallelism, warm artifact cache) must be
*bit-identical* to the slow ones: same canonical executable image, same
simulated execution down to the last counter.  Nothing here is allowed
to tolerate "close enough" — the paper's recompilation-avoidance story
only holds if cached and recomputed artifacts are interchangeable.

Covers generated programs (seeded fuzzing substrate) and Table-3
workloads, over serial vs parallel and cold vs warm-cache builds.
"""

import pytest

from repro import AnalyzerOptions, ProgramDatabase, run_executable
from repro.driver.scheduler import CompilationScheduler
from repro.linker.link import executable_fingerprint
from repro.machine.profiler import ProfileData
from repro.testing import generate_program
from repro.workloads import get_workload

MAX_CYCLES = 60_000_000

# Forced worker count: exercises the real process-pool path even on
# single-core runners (where it proves nothing about speed, only about
# equivalence — which is the point of this module).
PARALLEL_JOBS = 4

GENERATED_SEEDS = (11, 207)
WORKLOADS = ("dhrystone", "fgrep")


def _program_params():
    for seed in GENERATED_SEEDS:
        yield pytest.param(("seed", seed), id=f"generated-{seed}")
    for name in WORKLOADS:
        yield pytest.param(("workload", name), id=name)


def _sources_and_cycles(program):
    kind, which = program
    if kind == "seed":
        return generate_program(which), MAX_CYCLES
    workload = get_workload(which)
    return workload.sources, workload.max_cycles


def _build_matrix(scheduler, sources):
    """Fingerprints of the executable under the baseline and a sample
    of analyzer configurations, including the profile-driven ones."""
    fingerprints = {}
    phase1 = scheduler.run_phase1(sources)
    summaries = [result.summary for result in phase1]
    baseline = scheduler.compile_with_database(phase1, ProgramDatabase())
    fingerprints["baseline"] = executable_fingerprint(baseline)
    profile = None
    for config in ("A", "B", "C", "E"):
        if config == "B" and profile is None:
            stats = run_executable(baseline, MAX_CYCLES)
            profile = ProfileData.from_stats(stats)
        options = AnalyzerOptions.config(
            config, profile if config == "B" else None
        )
        database = scheduler.analyze(summaries, options)
        executable = scheduler.compile_with_database(phase1, database)
        fingerprints[config] = executable_fingerprint(executable)
    return fingerprints


def _run_stats(scheduler, sources, max_cycles):
    phase1 = scheduler.run_phase1(sources)
    database = scheduler.analyze(
        [result.summary for result in phase1], AnalyzerOptions.config("C")
    )
    executable = scheduler.compile_with_database(phase1, database)
    return executable_fingerprint(executable), run_executable(
        executable, max_cycles
    )


@pytest.mark.parametrize("program", _program_params())
def test_serial_vs_parallel_bit_identical(program):
    sources, max_cycles = _sources_and_cycles(program)
    with CompilationScheduler(jobs=1) as serial, \
            CompilationScheduler(jobs=PARALLEL_JOBS) as parallel:
        assert _build_matrix(serial, sources) == _build_matrix(
            parallel, sources
        )
        serial_fp, serial_stats = _run_stats(serial, sources, max_cycles)
        parallel_fp, parallel_stats = _run_stats(
            parallel, sources, max_cycles
        )
    assert serial_fp == parallel_fp
    assert serial_stats == parallel_stats


@pytest.mark.parametrize("program", _program_params())
def test_cold_vs_warm_cache_bit_identical(program, tmp_path):
    sources, max_cycles = _sources_and_cycles(program)
    cache_dir = tmp_path / "cache"
    with CompilationScheduler(jobs=1, cache_dir=cache_dir) as cold:
        cold_matrix = _build_matrix(cold, sources)
        cold_fp, cold_stats = _run_stats(cold, sources, max_cycles)
    # A fresh scheduler over the same cache replays every artifact.
    with CompilationScheduler(jobs=1, cache_dir=cache_dir) as warm:
        warm_matrix = _build_matrix(warm, sources)
        warm_fp, warm_stats = _run_stats(warm, sources, max_cycles)
        metrics = warm.metrics_snapshot()
    assert cold_matrix == warm_matrix
    assert cold_fp == warm_fp
    assert cold_stats == warm_stats
    assert not metrics.cache_misses, (
        "warm rebuild recomputed artifacts it should have replayed"
    )
    assert metrics.stage_tasks.get("phase1", 0) == 0
    assert metrics.stage_tasks.get("phase2", 0) == 0


@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_parallel_warm_cache_bit_identical(mode, tmp_path):
    """Cache written serially must replay identically under the
    process pool (and vice versa), for both generated programs."""
    sources, _ = _sources_and_cycles(("seed", GENERATED_SEEDS[0]))
    writer_jobs = 1 if mode == "serial" else PARALLEL_JOBS
    reader_jobs = PARALLEL_JOBS if mode == "serial" else 1
    cache_dir = tmp_path / "cache"
    with CompilationScheduler(jobs=writer_jobs, cache_dir=cache_dir) as one:
        first = _build_matrix(one, sources)
    with CompilationScheduler(jobs=reader_jobs, cache_dir=cache_dir) as two:
        second = _build_matrix(two, sources)
    assert first == second


def test_recompilation_in_same_scheduler_is_identical():
    """Phase 2 must never leak mutations back into phase-1 IR: the same
    phase-1 results compiled repeatedly give the same executable."""
    sources, _ = _sources_and_cycles(("seed", GENERATED_SEEDS[1]))
    with CompilationScheduler(jobs=1) as scheduler:
        phase1 = scheduler.run_phase1(sources)
        database = scheduler.analyze(
            [result.summary for result in phase1],
            AnalyzerOptions.config("D"),
        )
        first = executable_fingerprint(
            scheduler.compile_with_database(phase1, database)
        )
        second = executable_fingerprint(
            scheduler.compile_with_database(phase1, database)
        )
    assert first == second
