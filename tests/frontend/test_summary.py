"""Compiler first phase / summary file tests."""

from repro.frontend.phase1 import compile_module_phase1
from repro.frontend.summary import ModuleSummary


def summarize(source, name="m", opt_level=2):
    return compile_module_phase1(source, name, opt_level).summary


def test_procedures_listed():
    summary = summarize(
        "int f() { return 0; } static int s() { return 1; }"
    )
    names = {p.name for p in summary.procedures}
    assert names == {"f", "m.s"}


def test_global_refs_and_stores_recorded():
    summary = summarize(
        """
        int g; int h;
        int f() { g = g + 1; return g + h; }
        """
    )
    proc = summary.procedures[0]
    # Summaries reflect *optimized* code: local promotion caches g in a
    # temp, leaving one load and one store.
    assert proc.global_refs["g"] == 2
    assert proc.global_stores["g"] == 1
    assert proc.global_refs["h"] >= 1
    assert "h" not in proc.global_stores


def test_calls_recorded_with_frequency():
    summary = summarize(
        """
        extern int h(int);
        int f(int n) {
          int i;
          int s = 0;
          for (i = 0; i < n; i++) s += h(i);
          return s;
        }
        """
    )
    proc = summary.procedures[0]
    assert proc.calls["h"] == 10


def test_address_taken_function_recorded():
    summary = summarize(
        """
        int target(int x) { return x; }
        int f() { int *p = &target; return p(1); }
        """
    )
    proc = next(p for p in summary.procedures if p.name == "f")
    assert proc.address_taken_procs == ["target"]
    assert proc.makes_indirect_calls


def test_globals_eligibility_fields():
    summary = summarize(
        """
        int scalar;
        int arr[4];
        static int priv;
        int aliased;
        int f() { int *p = &aliased; return *p + scalar + arr[0] + priv; }
        """
    )
    by_name = {g.name: g for g in summary.globals}
    assert by_name["scalar"].is_scalar_word
    assert not by_name["arr"].is_scalar_word
    assert by_name["m.priv"].is_static
    assert by_name["aliased"].address_taken
    assert not by_name["scalar"].address_taken


def test_aliased_extern_global_recorded():
    summary = summarize(
        """
        extern int other;
        int f() { int *p = &other; return *p; }
        """
    )
    assert "other" in summary.aliased_globals


def test_json_round_trip():
    summary = summarize(
        """
        int g;
        extern int h(int);
        int f(int n) { g += h(n); return g; }
        """
    )
    restored = ModuleSummary.from_json(summary.to_json())
    assert restored.module_name == summary.module_name
    assert len(restored.procedures) == len(summary.procedures)
    original = summary.procedures[0]
    copy = restored.procedures[0]
    assert copy.name == original.name
    assert copy.calls == original.calls
    assert copy.global_refs == original.global_refs
    assert copy.callee_saves_needed == original.callee_saves_needed
    assert [g.name for g in restored.globals] == [
        g.name for g in summary.globals
    ]


def test_summary_reflects_optimized_code():
    # Folding removes a dead global reference entirely.
    source = "int g; int f() { int x = 0 * g; return 1; }"
    optimized = summarize(source, opt_level=2)
    unoptimized = summarize(source, opt_level=0)
    opt_refs = optimized.procedures[0].global_refs.get("g", 0)
    raw_refs = unoptimized.procedures[0].global_refs.get("g", 0)
    assert opt_refs == 0
    assert raw_refs >= 1
