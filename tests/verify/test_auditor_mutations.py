"""Mutation testing of the allocation auditor.

A verifier is only worth its keep if it actually catches broken
allocation output, so each test here injects one class of defect into a
known-clean compilation — by overwriting an instruction in place with a
same-length no-op (``LDI r0, 0``: writes to ZERO are discarded, and
in-place replacement keeps every branch target valid), by rewriting an
instruction into an illegal one, or by vandalizing the database behind
the code's back — and asserts the auditor reports exactly that defect
class.

The clean compilation is one fixed fuzz seed under configuration E
(clustering + web promotion), chosen because its output exhibits every
structure the mutations need: epilogue restores, a cluster root with a
non-empty MSPILL, an entry-node web with an exit store, a body use of a
web register, and calls with callee-saves registers live across them.
The fixture asserts those preconditions so a generator change cannot
silently turn any test into a no-op.
"""

import copy

import pytest

from repro import AnalyzerOptions, compile_with_database, run_phase1
from repro.analyzer.database import ProcedureDirectives
from repro.analyzer.driver import analyze_program
from repro.target import isa
from repro.target.registers import CALLEE_SAVES, ZERO
from repro.verify import audit_executable
from repro.verify.auditor import _compute_liveness, _parse_frame
from repro.verify.progen import generate_fuzz_program

SEED = 0
CONFIG = "E"


def _noop():
    """Same-length filler whose write is architecturally discarded."""
    return isa.LDI(ZERO, 0)


@pytest.fixture(scope="module")
def clean(tmp_path_factory):
    phase1 = run_phase1(generate_fuzz_program(SEED))
    summaries = [result.summary for result in phase1]
    database = analyze_program(summaries, AnalyzerOptions.config(CONFIG))
    executable = compile_with_database(phase1, database)
    report = audit_executable(executable, database)
    assert report.ok, report.format()
    return executable, database


def _mutant(clean):
    executable, database = clean
    return copy.deepcopy(executable), copy.deepcopy(database)


def _frames(executable):
    code = executable.instructions
    for rng in executable.function_ranges:
        frame = _parse_frame(code, rng.start, rng.end)
        if frame is not None:
            yield rng, frame


def test_clean_build_reaudits_clean(clean):
    executable, database = clean
    report = audit_executable(executable, database)
    assert report.ok
    assert report.functions_checked == len(executable.function_ranges)
    assert report.calls_checked > 0


def test_dropped_restore_detected(clean):
    """Defect class 1: an epilogue restore goes missing (the classic
    clobbered-callee-saves bug)."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng, frame in _frames(executable):
        if not frame.restores:
            continue
        for pc in range(frame.body_end, rng.end):
            instruction = code[pc]
            if (
                isinstance(instruction, isa.LDW)
                and instruction.rd in frame.restores
            ):
                victim = (rng.name, pc)
                break
        if victim:
            break
    assert victim, "fixture must contain an epilogue restore"
    name, pc = victim
    code[pc] = _noop()
    report = audit_executable(executable, database)
    assert "unbalanced-save-restore" in report.by_check()
    assert any(
        v.function == name and v.check == "unbalanced-save-restore"
        for v in report.violations
    )


def test_missing_mspill_save_detected(clean):
    """Defect class 2: a cluster root skips the save of an MSPILL
    register it is contractually obliged to spill for its members."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng, frame in _frames(executable):
        directives = database.get(rng.name)
        if not (directives.is_cluster_root and directives.mspill):
            continue
        target = set(directives.mspill) & set(frame.saves)
        if not target:
            continue
        register = min(target)
        for pc in range(rng.start, frame.body_start):
            instruction = code[pc]
            if isinstance(instruction, isa.STW) and instruction.rs == register:
                victim = (rng.name, pc)
                break
        if victim:
            break
    assert victim, "fixture must contain a root saving MSPILL registers"
    name, pc = victim
    code[pc] = _noop()
    report = audit_executable(executable, database)
    assert any(
        v.function == name and v.check == "missing-mspill-save"
        for v in report.violations
    ), report.format()


def test_stolen_web_register_detected(clean):
    """Defect class 3: an ordinary computation lands in a register
    reserved for a promoted-global web."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng, frame in _frames(executable):
        promoted = database.get(rng.name).promoted
        if promoted and frame.body_start < frame.body_end:
            victim = (rng.name, frame.body_start, promoted[0].register)
            break
    assert victim, "fixture must contain a web-holding function"
    name, pc, register = victim
    code[pc] = isa.ALU("+", register, ZERO, ZERO)
    report = audit_executable(executable, database)
    assert any(
        v.function == name and v.check == "web-register-write"
        for v in report.violations
    ), report.format()


def test_missing_web_entry_load_detected(clean):
    """Defect class 4: an entry node skips the load that initializes
    the web register, leaving downstream reads dependent on garbage."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng, frame in _frames(executable):
        for promoted in database.get(rng.name).promoted:
            if not promoted.is_entry:
                continue
            uses = any(
                promoted.register in code[pc].uses()
                for pc in range(frame.body_start, frame.body_end)
                if not code[pc].is_call
            )
            if uses:
                victim = (rng, frame, promoted.register)
                break
        if victim:
            break
    assert victim, "fixture must read a web register in an entry node"
    rng, frame, register = victim
    # Suppress every initialization of the register: the surviving uses
    # now read a value the caller never promised to provide.
    for pc in range(frame.body_start, frame.body_end):
        if not code[pc].is_call and register in code[pc].defs():
            code[pc] = _noop()
    report = audit_executable(executable, database)
    assert any(
        v.function == rng.name and v.check == "missing-web-entry-load"
        for v in report.violations
    ), report.format()


def test_missing_web_exit_store_detected(clean):
    """Defect class 5: a modified web value never goes back to the
    global's memory — other webs and the exit path see a stale value."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng, frame in _frames(executable):
        for promoted in database.get(rng.name).promoted:
            if promoted.is_entry and promoted.needs_store:
                victim = (rng, frame, promoted)
                break
        if victim:
            break
    assert victim, "fixture must contain an entry web with an exit store"
    rng, frame, promoted = victim
    address = executable.global_addresses[promoted.name]
    # Suppress every store to the promoted global's address.
    from repro.verify.auditor import _trace_base_address

    for pc in range(frame.body_start, frame.body_end):
        instruction = code[pc]
        if (
            isinstance(instruction, isa.STW)
            and instruction.offset == 0
            and _trace_base_address(
                code, rng.start, pc, instruction.base
            ) == address
        ):
            code[pc] = _noop()
    report = audit_executable(executable, database)
    assert any(
        v.function == rng.name and v.check == "missing-web-exit-store"
        for v in report.violations
    ), report.format()


def test_clobber_live_across_call_detected(clean):
    """Defect class 6: a call's declared clobber set grows to cover a
    register the caller keeps live across it — the analyzer and the
    allocator disagree about who preserves the value."""
    executable, database = _mutant(clean)
    code = executable.instructions
    victim = None
    for rng in executable.function_ranges:
        live_in, succs = _compute_liveness(code, rng.start, rng.end)
        size = rng.end - rng.start
        for index in range(size):
            instruction = code[rng.start + index]
            if not isinstance(instruction, isa.BL):
                continue
            live_after = 0
            for successor in succs[index]:
                if 0 <= successor < size:
                    live_after |= live_in[successor]
            for register in sorted(CALLEE_SAVES):
                if (
                    live_after & (1 << register)
                    and register not in instruction.clobbers
                ):
                    victim = (rng.name, instruction, register)
                    break
            if victim:
                break
        if victim:
            break
    assert victim, "fixture must keep a callee-saves register live across a call"
    name, instruction, register = victim
    instruction.clobbers.append(register)
    report = audit_executable(executable, database)
    assert any(
        v.function == name and v.check == "clobbered-live-across-call"
        for v in report.violations
    ), report.format()


def test_mspill_at_non_root_detected(clean):
    """Defect class 7: directives claim spill duty at a procedure that
    is not a cluster root (bypassing the database's own validation,
    the way a buggy analyzer writer would)."""
    executable, database = _mutant(clean)
    victim = None
    for name, directives in sorted(database.procedures.items()):
        if directives.is_cluster_root or directives.mspill:
            continue
        candidates = sorted(
            set(directives.callee) - set(directives.reserved_web_registers)
        )
        if candidates:
            victim = (name, directives, candidates[0])
            break
    assert victim, "fixture must contain a non-root procedure"
    name, directives, register = victim
    # Direct assignment skips ProcedureDirectives.validate() — exactly
    # the hole a static auditor exists to cover.
    directives.callee = frozenset(directives.callee) - {register}
    directives.mspill = frozenset({register})
    report = audit_executable(executable, database)
    assert any(
        v.function == name and v.check == "mspill-at-non-root"
        for v in report.violations
    ), report.format()


def test_directive_set_overlap_detected(clean):
    """Bonus database defect: the four usage sets lose disjointness."""
    executable, database = _mutant(clean)
    name = min(
        n for n, d in database.procedures.items() if d.callee
    )
    directives = database.procedures[name]
    stolen = min(directives.callee)
    directives.caller = frozenset(directives.caller) | {stolen}
    report = audit_executable(executable, database)
    assert any(
        v.function == name and v.check == "directive-sets"
        for v in report.violations
    ), report.format()
