"""Call graph construction tests."""

import pytest

from repro.callgraph.graph import CallGraph
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)


def make_summary(procs, globals_=()):
    """procs: list of (name, {callee: freq}) or richer dicts."""
    summary = ModuleSummary(module_name="m")
    for entry in procs:
        if isinstance(entry, ProcedureSummary):
            summary.procedures.append(entry)
        else:
            name, calls = entry
            summary.procedures.append(
                ProcedureSummary(name=name, module="m", calls=dict(calls))
            )
    summary.globals = [GlobalSummary(name=g, module="m") for g in globals_]
    return summary


def test_basic_edges():
    graph = CallGraph.build(
        [make_summary([("main", {"a": 2, "b": 1}), ("a", {}), ("b", {})])]
    )
    assert graph.successors("main") == ["a", "b"]
    assert graph.predecessors("a") == ["main"]
    assert graph.nodes["main"].successors["a"] == 2


def test_start_nodes():
    graph = CallGraph.build(
        [make_summary([("main", {"a": 1}), ("a", {}), ("orphan", {})])]
    )
    assert graph.start_nodes() == ["main", "orphan"]


def test_fully_cyclic_graph_falls_back_to_main():
    graph = CallGraph.build(
        [make_summary([("main", {"a": 1}), ("a", {"main": 1})])]
    )
    assert graph.start_nodes() == ["main"]


def test_calls_to_unknown_procs_ignored():
    graph = CallGraph.build(
        [make_summary([("main", {"library_fn": 3})])]
    )
    assert graph.successors("main") == []


def test_duplicate_procedure_rejected():
    s1 = make_summary([("f", {})])
    s2 = make_summary([("f", {})])
    with pytest.raises(ValueError):
        CallGraph.build([s1, s2])


def test_indirect_call_edges_conservative():
    summary = ModuleSummary(module_name="m")
    summary.procedures = [
        ProcedureSummary(
            name="main", module="m", calls={"caller": 1},
            address_taken_procs=["t1", "t2"],
        ),
        ProcedureSummary(
            name="caller", module="m", makes_indirect_calls=True,
            indirect_call_freq=5,
        ),
        ProcedureSummary(name="t1", module="m"),
        ProcedureSummary(name="t2", module="m"),
        ProcedureSummary(name="unrelated", module="m"),
    ]
    graph = CallGraph.build([summary])
    assert graph.indirect_targets == {"t1", "t2"}
    assert set(graph.successors("caller")) == {"t1", "t2"}
    assert "unrelated" not in graph.successors("caller")


def test_scc_detection():
    graph = CallGraph.build(
        [make_summary([
            ("main", {"a": 1}),
            ("a", {"b": 1}),
            ("b", {"a": 1, "c": 1}),
            ("c", {}),
        ])]
    )
    components = {
        frozenset(c) for c in graph.strongly_connected_components()
    }
    assert frozenset({"a", "b"}) in components
    assert frozenset({"c"}) in components


def test_recursive_nodes_include_self_loops():
    graph = CallGraph.build(
        [make_summary([("main", {"r": 1}), ("r", {"r": 1})])]
    )
    assert graph.recursive_nodes() == {"r"}


def test_heuristic_weights_propagate_topdown():
    graph = CallGraph.build(
        [make_summary([
            ("main", {"mid": 10}),
            ("mid", {"leaf": 10}),
            ("leaf", {}),
        ])]
    )
    graph.normalize_weights()
    assert graph.nodes["main"].weight == 1.0
    assert graph.nodes["mid"].weight == 10.0
    assert graph.nodes["leaf"].weight == 100.0


def test_recursion_boosts_weight():
    graph = CallGraph.build(
        [make_summary([
            ("main", {"rec": 1, "plain": 1}),
            ("rec", {"rec": 1}),
            ("plain", {}),
        ])]
    )
    graph.normalize_weights()
    assert graph.nodes["rec"].weight > graph.nodes["plain"].weight


def test_profile_weights_override_heuristics():
    class FakeProfile:
        def node_count(self, name):
            return {"main": 1, "leaf": 777}.get(name, 0)

        def edge_count(self, caller, callee):
            return 777 if (caller, callee) == ("main", "leaf") else 0

    graph = CallGraph.build(
        [make_summary([("main", {"leaf": 1}), ("leaf", {})])]
    )
    graph.normalize_weights(FakeProfile())
    assert graph.nodes["leaf"].weight == 777.0
    assert graph.edge_weight("main", "leaf", FakeProfile()) == 777.0


def test_edge_weight_heuristic():
    graph = CallGraph.build(
        [make_summary([("main", {"leaf": 4}), ("leaf", {})])]
    )
    graph.normalize_weights()
    assert graph.edge_weight("main", "leaf") == 4.0


def test_dominator_tree_over_call_graph():
    graph = CallGraph.build(
        [make_summary([
            ("main", {"a": 1, "b": 1}),
            ("a", {"c": 1}),
            ("b", {"c": 1}),
            ("c", {}),
        ])]
    )
    tree = graph.dominator_tree()
    assert tree.immediate_dominator("c") == "main"
    assert tree.immediate_dominator("a") == "main"
