"""Interprocedural reference-set dataflow tests (paper section 4.1.2)."""

from hypothesis import given, settings, strategies as st

from repro.callgraph.dataflow import compute_reference_sets, eligible_globals
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)
from tests.support import build_graph, figure3_graph

TABLE1 = {
    "A": ("g3", "g1 g2 g3", ""),
    "B": ("g1 g3", "g1 g2", "g3"),
    "C": ("g2 g3", "g2", "g3"),
    "D": ("g1", "", "g1 g3"),
    "E": ("g1 g2", "", "g1 g3"),
    "F": ("g2", "", "g2 g3"),
    "G": ("g2", "", "g2 g3"),
    "H": ("", "", "g2 g3"),
}


def test_table1_reference_sets():
    """The paper's Table 1, exactly."""
    graph, _ = figure3_graph()
    sets = compute_reference_sets(graph, {"g1", "g2", "g3"})
    for name, (l, c, p) in TABLE1.items():
        assert sets.l_ref[name] == frozenset(l.split()), ("L_REF", name)
        assert sets.c_ref[name] == frozenset(c.split()), ("C_REF", name)
        assert sets.p_ref[name] == frozenset(p.split()), ("P_REF", name)


def test_ineligible_globals_excluded_from_sets():
    graph, _ = figure3_graph()
    sets = compute_reference_sets(graph, {"g1"})
    assert sets.l_ref["C"] == frozenset()
    assert sets.c_ref["A"] == frozenset({"g1"})


def test_recursive_cycle_propagation():
    graph, _ = build_graph(
        {
            "main": {"calls": {"a": 1}, "refs": {"g": 1}},
            "a": {"calls": {"b": 1}},
            "b": {"calls": {"a": 1}},
        },
        ("g",),
    )
    sets = compute_reference_sets(graph, {"g"})
    # g reaches both cycle members through main.
    assert "g" in sets.p_ref["a"]
    assert "g" in sets.p_ref["b"]
    # And flows up from nowhere (no references below).
    assert sets.c_ref["main"] == frozenset()


def test_c_ref_through_cycles():
    graph, _ = build_graph(
        {
            "main": {"calls": {"a": 1}},
            "a": {"calls": {"b": 1}},
            "b": {"calls": {"a": 1, "leaf": 1}},
            "leaf": {"refs": {"g": 1}},
        },
        ("g",),
    )
    sets = compute_reference_sets(graph, {"g"})
    assert "g" in sets.c_ref["main"]
    assert "g" in sets.c_ref["a"]
    assert "g" in sets.c_ref["b"]
    assert sets.c_ref["leaf"] == frozenset()


def test_eligible_globals_rules():
    summary = ModuleSummary(module_name="m")
    summary.globals = [
        GlobalSummary(name="ok", module="m"),
        GlobalSummary(name="arr", module="m", is_scalar_word=False),
        GlobalSummary(name="aliased", module="m", address_taken=True),
    ]
    summary.aliased_globals = ["extern_aliased"]
    other = ModuleSummary(module_name="n")
    other.globals = [GlobalSummary(name="extern_aliased", module="n")]
    assert eligible_globals([summary, other]) == {"ok"}


def test_eligibility_aliasing_is_program_wide():
    defines = ModuleSummary(module_name="def")
    defines.globals = [GlobalSummary(name="g", module="def")]
    aliases = ModuleSummary(module_name="alias")
    aliases.aliased_globals = ["g"]
    assert eligible_globals([defines, aliases]) == set()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dataflow_fixpoint_properties(seed):
    """P_REF/C_REF satisfy their defining equations at fixpoint."""
    import random

    rng = random.Random(seed)
    names = [f"p{i}" for i in range(rng.randint(3, 10))]
    procs = {}
    for i, name in enumerate(names):
        callees = {
            rng.choice(names): 1 for _ in range(rng.randint(0, 2))
        }
        callees.pop(name, None)
        refs = {}
        if rng.random() < 0.5:
            refs[f"g{rng.randint(0, 2)}"] = 1
        procs[name] = {"calls": callees, "refs": refs}
    graph, _ = build_graph(procs, ("g0", "g1", "g2"))
    eligible = {"g0", "g1", "g2"}
    sets = compute_reference_sets(graph, eligible)
    for name in graph.nodes:
        expected_p = set()
        for pred in graph.nodes[name].predecessors:
            expected_p |= sets.p_ref[pred] | sets.l_ref[pred]
        assert sets.p_ref[name] == frozenset(expected_p), name
        expected_c = set()
        for succ in graph.nodes[name].successors:
            expected_c |= sets.c_ref[succ] | sets.l_ref[succ]
        assert sets.c_ref[name] == frozenset(expected_c), name
