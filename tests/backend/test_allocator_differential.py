"""Cross-strategy differential suite: allocation strategies may change
*where* values live — never what programs compute.

Every workload × analyzer-config cell is compiled under all three
allocation strategies (:mod:`repro.backend.allocators`) with the
post-link auditor armed, then executed; outputs and exit codes must be
identical across strategies and every executable must audit clean.
Ten fuzz-generator seeds ride along, and the paper's headline ordering
(``paper`` ≤ ``linearscan`` ≤ ``spill-everywhere`` on cycles) is
asserted directionally for dhrystone and othello under config A.
"""

import pytest

from repro import (
    ALLOCATORS,
    AnalyzerOptions,
    CompilationScheduler,
    ProgramDatabase,
    collect_profile,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.verify.progen import generate_fuzz_program
from repro.workloads import get_workload

FUZZ_SEEDS = range(10)

#: (workload, configs, needs_profile) — dhrystone takes the full A–F
#: sweep (it is cheap and B/F exercise the profiled analyses); the
#: heavier workloads ride the slow-marked matrix below.
FAST_MATRIX = [
    ("dhrystone", "ABCDEF", True),
    ("fgrep", "ACDE", False),
    ("protoc", "ACDE", False),
]

SLOW_MATRIX = [
    ("othello", "ABCDEF", True),
    ("war", "ABCDEF", True),
    ("crtool", "ACDE", False),
    ("paopt", "ACDE", False),
]


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    """Warm cache + post-link auditing; serial keeps the single-CPU
    tier-1 budget honest."""
    with CompilationScheduler(
        jobs=1,
        cache_dir=tmp_path_factory.mktemp("alloc-diff-cache"),
        verify=True,
    ) as sched:
        yield sched


def _assert_strategies_agree(scheduler, phase1, database, max_cycles, tag):
    """Compile the same (phase1, database) under every strategy; audits
    must be clean and observable behavior identical."""
    reference = None
    cycles = {}
    for allocator in ALLOCATORS:
        executable = scheduler.compile_with_database(
            phase1, database, 2, allocator=allocator
        )
        report = scheduler.last_audit_report
        assert report is not None and report.ok, (
            tag, allocator, report and report.format()
        )
        assert report.functions_checked == len(executable.function_ranges)
        stats = run_executable(executable, max_cycles=max_cycles)
        observed = (tuple(stats.output), stats.exit_code)
        if reference is None:
            reference = observed
        assert observed == reference, (tag, allocator)
        cycles[allocator] = stats.cycles
    return cycles


def _databases(scheduler, phase1, configs, needs_profile, max_cycles):
    summaries = [result.summary for result in phase1]
    profile = (
        collect_profile(
            phase1, max_cycles=max_cycles, scheduler=scheduler
        )
        if needs_profile
        else None
    )
    yield "baseline", ProgramDatabase()
    for config in configs:
        yield config, analyze_program(
            summaries,
            AnalyzerOptions.config(
                config, profile if config in "BF" else None
            ),
        )


def _run_workload_matrix(scheduler, name, configs, needs_profile):
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    for config, database in _databases(
        scheduler, phase1, configs, needs_profile, workload.max_cycles
    ):
        _assert_strategies_agree(
            scheduler, phase1, database, workload.max_cycles,
            (name, config),
        )


@pytest.mark.parametrize(
    "name,configs,needs_profile",
    FAST_MATRIX,
    ids=[entry[0] for entry in FAST_MATRIX],
)
def test_workload_differential(scheduler, name, configs, needs_profile):
    _run_workload_matrix(scheduler, name, configs, needs_profile)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,configs,needs_profile",
    SLOW_MATRIX,
    ids=[entry[0] for entry in SLOW_MATRIX],
)
def test_workload_differential_slow(
    scheduler, name, configs, needs_profile
):
    _run_workload_matrix(scheduler, name, configs, needs_profile)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_seed_differential(scheduler, seed):
    sources = generate_fuzz_program(seed)
    phase1 = run_phase1(sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    for tag, database in (
        ("baseline", ProgramDatabase()),
        ("A", analyze_program(summaries, AnalyzerOptions.config("A"))),
        ("D", analyze_program(summaries, AnalyzerOptions.config("D"))),
    ):
        _assert_strategies_agree(
            scheduler, phase1, database, 60_000_000, (seed, tag)
        )


def _config_a_cycles(scheduler, name):
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    database = analyze_program(
        [result.summary for result in phase1],
        AnalyzerOptions.config("A"),
    )
    return _assert_strategies_agree(
        scheduler, phase1, database, workload.max_cycles, (name, "A")
    )


def test_headline_ordering_dhrystone(scheduler):
    """The paper's claim, directionally: interprocedural coloring beats
    the intraprocedural scan, which beats spilling everything."""
    cycles = _config_a_cycles(scheduler, "dhrystone")
    assert (
        cycles["paper"]
        <= cycles["linearscan"]
        <= cycles["spill-everywhere"]
    ), cycles


@pytest.mark.slow
def test_headline_ordering_othello(scheduler):
    cycles = _config_a_cycles(scheduler, "othello")
    assert (
        cycles["paper"]
        <= cycles["linearscan"]
        <= cycles["spill-everywhere"]
    ), cycles


def test_env_knob_selects_strategy(scheduler, monkeypatch):
    """``REPRO_ALLOCATOR`` mirrors ``REPRO_SIM``: the environment picks
    the strategy when no explicit name is passed."""
    from repro.backend.allocators import resolve_allocator

    monkeypatch.delenv("REPRO_ALLOCATOR", raising=False)
    assert resolve_allocator() == "paper"
    monkeypatch.setenv("REPRO_ALLOCATOR", "linearscan")
    assert resolve_allocator() == "linearscan"
    assert resolve_allocator("spill-everywhere") == "spill-everywhere"
    monkeypatch.setenv("REPRO_ALLOCATOR", "bogus")
    with pytest.raises(ValueError):
        resolve_allocator()

    sources = {"main": "int main() { print(7); return 0; }"}
    monkeypatch.setenv("REPRO_ALLOCATOR", "spill-everywhere")
    phase1 = run_phase1(sources, scheduler=scheduler)
    env_picked = scheduler.compile_with_database(
        phase1, ProgramDatabase(), 2
    )
    explicit = scheduler.compile_with_database(
        phase1, ProgramDatabase(), 2, allocator="spill-everywhere"
    )
    from repro.linker.link import executable_fingerprint

    assert executable_fingerprint(env_picked) == executable_fingerprint(
        explicit
    )
    stats = run_executable(env_picked, max_cycles=1_000_000)
    assert stats.output.strip() == "7"
