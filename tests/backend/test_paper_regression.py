"""The ``paper`` strategy is provably behavior-preserving.

``golden_fingerprints.json`` holds
:func:`~repro.linker.link.executable_fingerprint` values (canonical
serialized-executable digests) for every workload × {baseline, A–F}
cell, captured from the tree *before* allocation moved behind the
strategy interface.  The extracted ``paper`` strategy must reproduce
every byte of them.
"""

import json
from pathlib import Path

import pytest

from repro import (
    AnalyzerOptions,
    CompilationScheduler,
    ProgramDatabase,
    collect_profile,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.linker.link import executable_fingerprint
from repro.workloads import all_workloads, get_workload

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_fingerprints.json").read_text()
)

#: Cells needing no profiling run: every workload, baseline + A/C/D/E.
FAST_CONFIGS = ("baseline", "A", "C", "D", "E")


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    with CompilationScheduler(
        jobs=1, cache_dir=tmp_path_factory.mktemp("golden-cache")
    ) as sched:
        yield sched


def _fingerprint(scheduler, phase1, database):
    return executable_fingerprint(
        scheduler.compile_with_database(
            phase1, database, 2, allocator="paper"
        )
    )


@pytest.mark.parametrize("name", sorted(all_workloads()))
def test_paper_output_byte_identical_to_pre_refactor(scheduler, name):
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    for config in FAST_CONFIGS:
        if config == "baseline":
            database = ProgramDatabase()
        else:
            database = analyze_program(
                summaries, AnalyzerOptions.config(config)
            )
        assert _fingerprint(scheduler, phase1, database) == GOLDEN[name][
            config
        ], (name, config)


@pytest.mark.slow
@pytest.mark.parametrize("name", ["dhrystone", "othello"])
def test_paper_output_byte_identical_profiled_configs(scheduler, name):
    """B and F fold profile data into the analysis; the profiling run
    itself must stay deterministic for these to hold."""
    workload = get_workload(name)
    phase1 = run_phase1(workload.sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]
    profile = collect_profile(
        phase1, max_cycles=workload.max_cycles, scheduler=scheduler
    )
    for config in "BF":
        database = analyze_program(
            summaries, AnalyzerOptions.config(config, profile)
        )
        assert _fingerprint(scheduler, phase1, database) == GOLDEN[name][
            config
        ], (name, config)
