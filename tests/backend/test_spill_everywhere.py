"""Property tests for the spill-everywhere strategy in isolation.

The strategy's invariants are stronger than an allocator's usual ones:
values only ever occupy a scratch register inside a single instruction
expansion, so at most three scratch registers (plus precolored web
registers) appear in the whole function, every slot read is written,
and reserved web registers are untouched by scratch traffic.
"""

from repro.analyzer.database import ProcedureDirectives, default_directives
from repro.backend.allocators.base import get_allocator
from repro.backend.isel import select_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa
from repro.target.registers import ALL_ALLOCATABLE, ARG_REGISTERS, CALLEE_SAVES, RV
from tests.backend.test_regalloc import assert_fully_physical

STRATEGY = get_allocator("spill-everywhere")


def compile_machine(source, name="f", directives=None, opt_level=1):
    module = lower_source(source, "m")
    optimize_module(module, opt_level)
    machine = select_function(
        module.functions[name], directives or default_directives(name)
    )
    STRATEGY.allocate(machine)
    return machine


def spill_ops(machine):
    for instruction in machine.iter_instructions():
        if getattr(
            getattr(instruction, "offset", None), "kind", None
        ) == "spill":
            yield instruction


def test_everything_physical_with_at_most_three_scratch_registers():
    machine = compile_machine(
        """
        extern int h(int);
        int f(int a, int b) {
          int x = a * 3 + b;
          int y = h(a) + x;
          return y - b;
        }
        """
    )
    assert_fully_physical(machine)
    assert machine.used_registers <= ALL_ALLOCATABLE
    assert len(machine.used_registers) <= 3
    assert machine.num_spills > 0


def test_scratch_registers_avoid_argument_registers_and_rv():
    """Instruction selection addresses r4-r7 and RV directly around
    calls; scratch traffic must not race them."""
    machine = compile_machine(
        """
        extern int h(int, int, int, int);
        int f(int a, int b) { return h(a, b, a + b, a - b) + a; }
        """
    )
    scratch = {
        op.rd if isinstance(op, isa.LDW) else op.rs
        for op in spill_ops(machine)
    }
    assert not (scratch & set(ARG_REGISTERS))
    assert RV not in scratch


def test_spill_slots_are_balanced_and_singleton():
    machine = compile_machine(
        "int f(int a) { int s = 0; int i; "
        "for (i = 0; i < a; i = i + 1) { s = s + i * i; } return s; }"
    )
    loads, stores = set(), set()
    for op in spill_ops(machine):
        assert op.singleton
        if isinstance(op, isa.LDW):
            loads.add(op.offset.index)
        else:
            stores.add(op.offset.index)
    assert loads and stores
    assert loads <= stores  # no slot is read that nothing wrote


def test_scratch_values_never_live_across_blocks():
    """A scratch register is only read after being defined earlier in
    the *same* block: no value stays in a scratch register across a
    control-flow edge — everything round-trips through its slot."""
    machine = compile_machine(
        """
        extern int h(int);
        int f(int a) {
          int x = a * 3;
          if (a > 2) { x = h(a) + x; }
          return h(x) + x;
        }
        """
    )
    scratch = machine.used_registers - set(machine.precolored.values())
    assert scratch
    for block in machine.blocks.values():
        defined_here: set[int] = set()
        for instruction in block.instructions:
            for used in instruction.uses():
                if used in scratch:
                    assert used in defined_here, (
                        block.label, instruction, used
                    )
            defined_here.update(
                d for d in instruction.defs() if isinstance(d, int)
            )


def test_reserved_web_register_untouched_by_scratch_traffic():
    from repro.analyzer.database import PromotedGlobal
    from repro.backend.promotion import apply_web_promotion

    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31, is_entry=False),),
        callee=frozenset(CALLEE_SAVES) - {31},
    )
    module = lower_source(
        "int g; int f(int a) { g = g + a; return g; }", "m"
    )
    func = module.functions["f"]
    apply_web_promotion(func, directives)
    optimize_module(module, 1)
    machine = select_function(func, directives)
    STRATEGY.allocate(machine)
    assert_fully_physical(machine)
    assert 31 in machine.used_registers
    scratch = {
        op.rd if isinstance(op, isa.LDW) else op.rs
        for op in spill_ops(machine)
    }
    assert 31 not in scratch


def test_rematerialized_constants_skip_the_stack():
    """Single-def LDI/LDA values are re-derived at each use — their
    definition vanishes and no slot is allocated for them."""
    machine = compile_machine("int g; int f(int a) { g = 5; return g + 5; }")
    # The global's address (LDA) and the constant are rematerialized:
    # every remaining LDA/LDI feeds the instruction right after it.
    for block in machine.blocks.values():
        instructions = block.instructions
        for index, instruction in enumerate(instructions):
            if isinstance(instruction, (isa.LDA, isa.LDI)):
                target = instruction.rd
                assert any(
                    target in later.uses()
                    for later in instructions[index + 1:]
                ), instruction


def test_differential_against_paper_on_a_small_program():
    from repro import (
        AnalyzerOptions,
        CompilationScheduler,
        run_executable,
        run_phase1,
    )
    from repro.analyzer.driver import analyze_program

    sources = {
        "main": """
        int g;
        int helper(int a, int b) { g = g + a; return a * b; }
        int main() {
          int i; int acc; acc = 0;
          for (i = 0; i < 12; i = i + 1) { acc = acc + helper(i, i + 1); }
          print(acc); print(g);
          return 0;
        }
        """
    }
    with CompilationScheduler(jobs=1, verify=True) as scheduler:
        phase1 = run_phase1(sources, scheduler=scheduler)
        database = analyze_program(
            [r.summary for r in phase1], AnalyzerOptions.config("C")
        )
        reference = None
        for allocator in ("paper", "spill-everywhere"):
            executable = scheduler.compile_with_database(
                phase1, database, 2, allocator=allocator
            )
            assert scheduler.last_audit_report.ok
            stats = run_executable(executable, max_cycles=10_000_000)
            observed = (tuple(stats.output), stats.exit_code)
            if reference is None:
                reference = observed
            assert observed == reference
