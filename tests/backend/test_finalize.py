"""Frame finalization tests: spill code placement rules."""

from repro.analyzer.database import (
    ProcedureDirectives,
    PromotedGlobal,
    default_directives,
)
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.promotion import apply_web_promotion
from repro.backend.regalloc import allocate_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa
from repro.target.frame import FrameLoc
from repro.target.registers import CALLEE_SAVES, RP, SP


def build(source, name="f", directives=None):
    module = lower_source(source, "m")
    directives = directives or default_directives(name)
    func = module.functions[name]
    apply_web_promotion(func, directives)
    optimize_module(module, 1)
    machine = select_function(func, directives)
    allocate_function(machine)
    layout = finalize_frame(machine)
    return machine, layout


def saved_registers(machine):
    return machine.saved_registers


def prologue_stores(machine):
    return [
        i for i in machine.entry.instructions if isinstance(i, isa.STW)
    ]


def epilogue_loads(machine):
    return [
        i for i in machine.exit.instructions if isinstance(i, isa.LDW)
    ]


def test_leaf_without_frame_needs_no_prologue():
    machine, layout = build("int f(int a) { return a + 1; }")
    assert layout.frame_size == 0
    assert not prologue_stores(machine)
    assert machine.entry.instructions[0].__class__ is not isa.ALUI or (
        machine.entry.instructions[0].ra != SP
    )


def test_calls_force_rp_save():
    machine, layout = build(
        "extern int h(int); int f(int a) { return h(a); }"
    )
    stores = prologue_stores(machine)
    assert any(s.rs == RP for s in stores)
    loads = epilogue_loads(machine)
    assert any(l.rd == RP for l in loads)


def test_used_callee_saves_saved_and_restored():
    machine, _ = build(
        """
        extern int h(int);
        int f(int a) { int x = a * 3; return h(a) + x; }
        """
    )
    used_callee = set(machine.used_registers) & CALLEE_SAVES
    assert used_callee
    assert used_callee <= set(saved_registers(machine))


def test_free_registers_not_saved():
    free = frozenset({16, 17})
    directives = ProcedureDirectives(
        name="f",
        free=free,
        callee=frozenset(CALLEE_SAVES) - free,
    )
    machine, _ = build(
        """
        extern int h(int);
        int f(int a) { int x = a * 3; return h(a) + x; }
        """,
        directives=directives,
    )
    assert not (set(saved_registers(machine)) & free)


def test_cluster_root_saves_all_mspill_even_unused():
    mspill = frozenset({20, 21, 22})
    directives = ProcedureDirectives(
        name="f",
        mspill=mspill,
        callee=frozenset(CALLEE_SAVES) - mspill,
        is_cluster_root=True,
    )
    machine, _ = build("int f(int a) { return a; }",
                       directives=directives)
    # The leaf uses none of them, yet all three are saved: the root
    # executes the spill code on behalf of the cluster (section 4.2.3).
    assert mspill <= set(saved_registers(machine))


def test_web_entry_saves_promoted_register():
    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31, is_entry=True),),
        callee=frozenset(CALLEE_SAVES) - {31},
    )
    machine, _ = build(
        "int g; int f(int a) { g = g + a; return g; }",
        directives=directives,
    )
    assert 31 in saved_registers(machine)


def test_web_member_does_not_save_promoted_register():
    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31, is_entry=False),),
        callee=frozenset(CALLEE_SAVES) - {31},
    )
    machine, _ = build(
        "int g; int f(int a) { g = g + a; return g; }",
        directives=directives,
    )
    assert 31 not in saved_registers(machine)


def test_all_symbolic_offsets_resolved():
    machine, _ = build(
        """
        extern int h(int, int, int, int, int);
        int f(int a) {
          int buf[8];
          buf[0] = a;
          return h(buf[0], 2, 3, 4, 5);
        }
        """
    )
    for instruction in machine.iter_instructions():
        if isinstance(instruction, (isa.LDW, isa.STW)):
            assert isinstance(instruction.offset, int), instruction
        if isinstance(instruction, isa.ALUI):
            assert isinstance(instruction.imm, int), instruction


def test_sp_adjusted_symmetrically():
    machine, layout = build(
        "extern int h(int); int f(int a) { return h(a) + 1; }"
    )
    assert layout.frame_size > 0
    first = machine.entry.instructions[0]
    assert isinstance(first, isa.ALUI)
    assert first.op == "-" and first.ra == SP and first.rd == SP
    assert first.imm == layout.frame_size
    epilogue_adjust = [
        i for i in machine.exit.instructions
        if isinstance(i, isa.ALUI) and i.rd == SP
    ]
    assert epilogue_adjust and epilogue_adjust[-1].op == "+"
    assert epilogue_adjust[-1].imm == layout.frame_size


def test_save_restore_are_singleton_references():
    machine, _ = build(
        """
        extern int h(int);
        int f(int a) { int x = a * 3; return h(a) + x; }
        """
    )
    for instruction in prologue_stores(machine) + epilogue_loads(machine):
        assert instruction.singleton
