"""Web promotion rewriting tests (compiler second phase, section 5)."""

from repro.analyzer.database import ProcedureDirectives, PromotedGlobal
from repro.backend.promotion import apply_web_promotion
from repro.ir import lower_source, verify_module
from repro.ir.instructions import LoadGlobal, Move, Return, StoreGlobal
from repro.target.registers import CALLEE_SAVES


def directives_for(name, promoted):
    reserved = {p.register for p in promoted}
    return ProcedureDirectives(
        name=name,
        promoted=tuple(promoted),
        callee=frozenset(CALLEE_SAVES) - reserved,
    )


def promote(source, promoted, name="f"):
    module = lower_source(source, "m")
    func = module.functions[name]
    apply_web_promotion(func, directives_for(name, promoted))
    verify_module(module)
    return func


def loads_of(func, symbol):
    return [
        i for i in func.iter_instructions()
        if isinstance(i, LoadGlobal) and i.symbol == symbol
    ]


def stores_of(func, symbol):
    return [
        i for i in func.iter_instructions()
        if isinstance(i, StoreGlobal) and i.symbol == symbol
    ]


def test_member_accesses_become_register_moves():
    func = promote(
        "int g; int f(int a) { g = g + a; return g; }",
        [PromotedGlobal("g", 31, is_entry=False)],
    )
    assert not loads_of(func, "g")
    assert not stores_of(func, "g")
    assert func.pinned_temps
    (pinned, register), = func.pinned_temps.items()
    assert register == 31


def test_entry_node_loads_at_entry_and_stores_at_exit():
    func = promote(
        "int g; int f(int a) { g = g + a; return g; }",
        [PromotedGlobal("g", 31, is_entry=True, needs_store=True)],
    )
    entry_loads = loads_of(func, "g")
    assert len(entry_loads) == 1
    assert func.entry.instructions[0] is entry_loads[0]
    exit_stores = stores_of(func, "g")
    assert len(exit_stores) >= 1
    # The store is the last instruction before the return.
    for block in func.blocks.values():
        if isinstance(block.terminator, Return) and block.instructions:
            assert isinstance(block.instructions[-1], StoreGlobal)


def test_read_only_web_entry_skips_exit_store():
    func = promote(
        "int g; int f() { return g; }",
        [PromotedGlobal("g", 31, is_entry=True, needs_store=False)],
    )
    assert len(loads_of(func, "g")) == 1
    assert not stores_of(func, "g")


def test_entry_store_on_every_return_path():
    func = promote(
        "int g; int f(int a) { if (a) { g = 1; return 1; } g = 2; return 2; }",
        [PromotedGlobal("g", 31, is_entry=True, needs_store=True)],
    )
    return_blocks = [
        b for b in func.blocks.values() if isinstance(b.terminator, Return)
    ]
    assert len(return_blocks) >= 2
    for block in return_blocks:
        assert isinstance(block.instructions[-1], StoreGlobal)


def test_unrelated_globals_untouched():
    func = promote(
        "int g; int other; int f() { other = g; return other; }",
        [PromotedGlobal("g", 31, is_entry=False)],
    )
    assert not loads_of(func, "g")
    assert stores_of(func, "other")


def test_two_promotions_in_one_procedure():
    func = promote(
        "int g; int h; int f() { g = h + 1; return g + h; }",
        [
            PromotedGlobal("g", 31, is_entry=True),
            PromotedGlobal("h", 30, is_entry=False),
        ],
    )
    assert set(func.pinned_temps.values()) == {30, 31}
    assert len(loads_of(func, "g")) == 1  # entry load only
    assert not loads_of(func, "h")


def test_no_promotions_is_noop():
    module = lower_source("int g; int f() { return g; }", "m")
    func = module.functions["f"]
    directives = ProcedureDirectives(name="f")
    assert apply_web_promotion(func, directives) is False
    assert loads_of(func, "g")
