"""Register allocator tests."""

from repro.analyzer.database import ProcedureDirectives, default_directives
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.regalloc import allocate_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa
from repro.target.registers import (
    ALL_ALLOCATABLE,
    CALLEE_SAVES,
    CALLER_SAVES,
)


def compile_machine(source, name="f", directives=None, opt_level=1):
    module = lower_source(source, "m")
    optimize_module(module, opt_level)
    machine = select_function(
        module.functions[name], directives or default_directives(name)
    )
    allocate_function(machine)
    return machine


def assert_fully_physical(machine):
    for instruction in machine.iter_instructions():
        for reg in list(instruction.uses()) + list(instruction.defs()):
            assert isinstance(reg, int), (instruction, reg)


def test_simple_function_allocates_all_vregs():
    machine = compile_machine("int f(int a, int b) { return a * b + a; }")
    assert_fully_physical(machine)
    assert machine.used_registers <= ALL_ALLOCATABLE
    assert machine.num_spills == 0


def test_value_live_across_call_gets_callee_saves():
    machine = compile_machine(
        """
        extern int h(int);
        int f(int a) {
          int x = a * 3;
          return h(a) + x;
        }
        """
    )
    assert_fully_physical(machine)
    # x must survive the call: it lives in a callee-saves register.
    assert machine.used_registers & CALLEE_SAVES


def test_leaf_values_use_caller_saves():
    machine = compile_machine("int f(int a) { return a + a * a; }")
    assert_fully_physical(machine)
    assert not (machine.used_registers & CALLEE_SAVES)


def test_free_registers_preferred_over_callee():
    free = frozenset({16, 17})
    directives = ProcedureDirectives(
        name="f",
        free=free,
        callee=frozenset(CALLEE_SAVES) - free,
    )
    machine = compile_machine(
        """
        extern int h(int);
        int f(int a) {
          int x = a * 3;
          return h(a) + x;
        }
        """,
        directives=directives,
    )
    used_callee_saves = machine.used_registers & CALLEE_SAVES
    assert used_callee_saves <= free  # no save/restore needed


def test_high_pressure_forces_spills():
    # More simultaneously-live values than registers.
    parts = ["extern int h(int);", "int f(int a) {"]
    for i in range(40):
        parts.append(f"  int x{i} = a * {i + 2} + (a >> {i % 8});")
    parts.append("  int y = h(a);")
    total = " + ".join(f"x{i}" for i in range(40))
    parts.append(f"  return y + {total};")
    parts.append("}")
    machine = compile_machine("\n".join(parts))
    assert_fully_physical(machine)
    assert machine.num_spills > 0
    spill_memops = [
        i for i in machine.iter_instructions()
        if isinstance(i, (isa.LDW, isa.STW))
        and getattr(i.offset, "kind", None) == "spill"
    ]
    assert spill_memops
    assert all(m.singleton for m in spill_memops)


def test_tiny_callee_pool_still_allocates():
    # Squeeze: only 2 callee-saves registers available.
    directives = ProcedureDirectives(
        name="f",
        callee=frozenset({16, 17}),
        # The rest of the callee-saves registers are simply absent.
    )
    parts = ["extern int h(int);", "int f(int a) {"]
    for i in range(6):
        parts.append(f"  int x{i} = a * {i + 2};")
    parts.append("  int y = h(a);")
    total = " + ".join(f"x{i}" for i in range(6))
    parts.append(f"  return y + {total};")
    parts.append("}")
    machine = compile_machine("\n".join(parts), directives=directives)
    assert_fully_physical(machine)
    # 6 values across one call with 2 registers: spills required.
    assert machine.num_spills >= 1


def test_precolored_vregs_keep_their_registers():
    from repro.analyzer.database import PromotedGlobal
    from repro.backend.promotion import apply_web_promotion

    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31, is_entry=False),),
        callee=frozenset(CALLEE_SAVES) - {31},
    )
    module = lower_source(
        "int g; int f(int a) { g = g + a; return g; }", "m"
    )
    func = module.functions["f"]
    apply_web_promotion(func, directives)
    optimize_module(module, 1)
    machine = select_function(func, directives)
    allocate_function(machine)
    assert_fully_physical(machine)
    assert 31 in machine.used_registers
    # Register 31 holds the global: nothing else may be colored into it
    # by the pools (it is in none of them).
    # The ALU updating g writes r31 directly.
    writes_r31 = [
        i for i in machine.iter_instructions()
        if 31 in i.defs()
    ]
    assert writes_r31


def test_identity_moves_coalesced():
    machine = compile_machine(
        "int f(int a) { int b = a; int c = b; return c; }"
    )
    for instruction in machine.iter_instructions():
        if isinstance(instruction, isa.MOV):
            assert instruction.rd != instruction.rs


def test_arg_register_conflict_avoided():
    # Two arguments computed before the call; the second must not be
    # clobbered by moving the first into its argument register.
    machine = compile_machine(
        """
        extern int g(int, int);
        int f(int a, int b) { return g(b + 1, a + 2); }
        """
    )
    assert_fully_physical(machine)  # correctness verified in simulator tests
