"""Object emission tests: layout, fallthrough, branch resolution."""

from repro.analyzer.database import default_directives
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.object import emit_function
from repro.backend.regalloc import allocate_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa


def emit(source, name="f", opt_level=1):
    module = lower_source(source, "m")
    optimize_module(module, opt_level)
    machine = select_function(
        module.functions[name], default_directives(name)
    )
    allocate_function(machine)
    finalize_frame(machine)
    return emit_function(machine)


def test_branch_targets_are_instruction_indices():
    obj = emit("int f(int a) { if (a) return 1; return 2; }")
    for instruction in obj.instructions:
        if isinstance(instruction, (isa.B, isa.BC)):
            assert isinstance(instruction.target, int)
            assert 0 <= instruction.target < len(obj.instructions)


def test_fallthrough_branches_elided():
    obj = emit(
        """
        int f(int a) {
          int x = 0;
          if (a) x = 1; else x = 2;
          return x;
        }
        """
    )
    # No unconditional branch should target the immediately next index.
    for index, instruction in enumerate(obj.instructions):
        if isinstance(instruction, isa.B):
            assert instruction.target != index + 1


def test_single_ret_at_end():
    obj = emit("int f(int a) { if (a) return a; return 0; }")
    rets = [
        i for i in obj.instructions if isinstance(i, isa.RET)
    ]
    assert len(rets) == 1
    assert isinstance(obj.instructions[-1], isa.RET)


def test_loop_emits_backward_branch():
    obj = emit(
        "int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }"
    )
    backward = [
        i for index, i in enumerate(obj.instructions)
        if isinstance(i, (isa.B, isa.BC)) and i.target <= index
    ]
    assert backward


def test_emission_copies_do_not_alias_machine_function():
    module = lower_source("int f(int a) { if (a) return 1; return 2; }",
                          "m")
    optimize_module(module, 1)
    machine = select_function(module.functions["f"],
                              default_directives("f"))
    allocate_function(machine)
    finalize_frame(machine)
    first = emit_function(machine)
    second = emit_function(machine)
    # Emitting twice must produce independent instruction objects with
    # identical shapes (the linker mutates branch targets in its copy).
    assert len(first.instructions) == len(second.instructions)
    for a, b in zip(first.instructions, second.instructions):
        assert a is not b
        assert repr(a) == repr(b)
