"""Property tests for the linear-scan allocation strategy in isolation.

The oracles mirror the auditor's defect vocabulary: values that are
live together never share a register, reserved web registers are never
stolen, spill code is balanced (no load from a slot nothing stores),
and the convention pools are respected.
"""

import pytest

from repro.analyzer.database import ProcedureDirectives, default_directives
from repro.backend.allocators.base import get_allocator
from repro.backend.allocators.linearscan import (
    build_intervals,
    eliminate_dead_statements,
    scan,
)
from repro.backend.isel import select_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa
from repro.target.registers import ALL_ALLOCATABLE, CALLEE_SAVES
from tests.backend.test_regalloc import assert_fully_physical

STRATEGY = get_allocator("linearscan")


def select_machine(source, name="f", directives=None, opt_level=1):
    module = lower_source(source, "m")
    optimize_module(module, opt_level)
    return select_function(
        module.functions[name], directives or default_directives(name)
    )


def compile_machine(source, name="f", directives=None, opt_level=1):
    machine = select_machine(source, name, directives, opt_level)
    STRATEGY.allocate(machine)
    return machine


HIGH_PRESSURE = "\n".join(
    ["extern int h(int);", "int f(int a) {"]
    + [f"  int x{i} = a * {i + 2} + (a >> {i % 8});" for i in range(40)]
    + ["  int y = h(a);"]
    + ["  return y + " + " + ".join(f"x{i}" for i in range(40)) + ";", "}"]
)


def test_simple_function_allocates_all_vregs():
    machine = compile_machine("int f(int a, int b) { return a * b + a; }")
    assert_fully_physical(machine)
    assert machine.used_registers <= ALL_ALLOCATABLE
    assert machine.num_spills == 0


def test_overlapping_intervals_never_share_a_register():
    machine = select_machine(HIGH_PRESSURE)
    intervals, blocked = build_intervals(machine)
    assignment, _spills = scan(machine, intervals, blocked)
    placed = [
        (start, end, assignment[vreg])
        for start, end, vreg in intervals
        if vreg in assignment
    ]
    for i, (s1, e1, r1) in enumerate(placed):
        for s2, e2, r2 in placed[i + 1:]:
            if s1 <= e2 and s2 <= e1:  # intervals overlap
                assert r1 != r2, ((s1, e1), (s2, e2), r1)


def test_assignment_respects_blocked_positions():
    machine = select_machine(HIGH_PRESSURE)
    intervals, blocked = build_intervals(machine)
    assignment, _spills = scan(machine, intervals, blocked)
    for start, end, vreg in intervals:
        register = assignment.get(vreg)
        if register is None:
            continue
        for position in range(start, end + 1):
            assert not (blocked[position] >> register) & 1, (
                vreg, register, position
            )


def test_high_pressure_spills_are_balanced():
    machine = compile_machine(HIGH_PRESSURE)
    assert_fully_physical(machine)
    assert machine.num_spills > 0
    loads, stores = set(), set()
    for instruction in machine.iter_instructions():
        if getattr(
            getattr(instruction, "offset", None), "kind", None
        ) != "spill":
            continue
        assert instruction.singleton  # spill traffic is scalar
        if isinstance(instruction, isa.LDW):
            loads.add(instruction.offset.index)
        elif isinstance(instruction, isa.STW):
            stores.add(instruction.offset.index)
    # Every slot read was written somewhere: no load of garbage.
    assert loads <= stores


def test_free_and_mspill_pools_are_ignored():
    """The intraprocedural baseline may not use the analyzer's
    interprocedural FREE/MSPILL gifts."""
    free = frozenset({16, 17})
    mspill = frozenset({18})
    directives = ProcedureDirectives(
        name="f",
        free=free,
        mspill=mspill,
        callee=frozenset(CALLEE_SAVES) - free - mspill,
    )
    machine = compile_machine(HIGH_PRESSURE, directives=directives)
    assert_fully_physical(machine)
    assert not (machine.used_registers & (free | mspill))


def test_reserved_web_register_never_stolen():
    from repro.analyzer.database import PromotedGlobal
    from repro.backend.promotion import apply_web_promotion

    directives = ProcedureDirectives(
        name="f",
        promoted=(PromotedGlobal("g", 31, is_entry=False),),
        callee=frozenset(CALLEE_SAVES) - {31},
    )
    module = lower_source(
        "int g; int f(int a) { g = g + a; return g; }", "m"
    )
    func = module.functions["f"]
    apply_web_promotion(func, directives)
    optimize_module(module, 1)
    machine = select_function(func, directives)
    intervals, blocked = build_intervals(machine)
    assignment, spills = scan(machine, intervals, blocked)
    assert not spills
    for vreg, register in assignment.items():
        if vreg not in machine.precolored:
            assert register != 31, vreg
    STRATEGY.allocate(machine)
    assert_fully_physical(machine)
    assert 31 in machine.used_registers


def test_dead_statement_elimination_is_selective():
    machine = select_machine("int f(int a) { return a + 1; }")
    entry = machine.blocks[machine.entry_label]
    dead_pure = isa.LDI(machine.new_vreg("dead"), 123)
    dead_div = isa.ALUI("/", machine.new_vreg("div"), 1, 0)
    entry.instructions[0:0] = [dead_pure, dead_div]
    removed = eliminate_dead_statements(machine)
    assert removed >= 1
    remaining = list(machine.iter_instructions())
    assert dead_pure not in remaining  # dead constant deleted
    assert dead_div in remaining  # a zero divisor must still fault


def test_call_clobbers_steer_live_across_call_values():
    """A value live across a call lands in a register the call cannot
    clobber — purely via the clobber-set liveness, no directives."""
    machine = compile_machine(
        """
        extern int h(int);
        int f(int a) {
          int x = a * 3;
          return h(a) + x;
        }
        """
    )
    assert_fully_physical(machine)
    assert machine.used_registers & CALLEE_SAVES


@pytest.mark.parametrize("config", [None, "C"])
def test_small_program_audits_clean_end_to_end(config, tmp_path):
    from repro import (
        AnalyzerOptions,
        CompilationScheduler,
        ProgramDatabase,
        run_executable,
    )
    from repro.analyzer.driver import analyze_program
    from repro.verify.progen import generate_fuzz_program

    sources = generate_fuzz_program(2)
    with CompilationScheduler(
        jobs=1, cache_dir=tmp_path, verify=True
    ) as scheduler:
        phase1 = scheduler.run_phase1(sources, 2)
        if config is None:
            database = ProgramDatabase()
        else:
            database = analyze_program(
                [r.summary for r in phase1],
                AnalyzerOptions.config(config),
            )
        observed = {}
        for allocator in ("paper", "linearscan"):
            executable = scheduler.compile_with_database(
                phase1, database, 2, allocator=allocator
            )
            report = scheduler.last_audit_report
            assert report is not None and report.ok
            stats = run_executable(executable, max_cycles=60_000_000)
            observed[allocator] = (tuple(stats.output), stats.exit_code)
        assert observed["linearscan"] == observed["paper"]
