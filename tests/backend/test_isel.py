"""Instruction selection tests."""

from repro.analyzer.database import default_directives
from repro.backend.isel import select_function
from repro.backend.mir import validate_machine_function
from repro.ir import lower_source
from repro.opt import optimize_module
from repro.target import isa
from repro.target.registers import ARG_REGISTERS, RP, RV, SP


def select(source, name="f", opt_level=1):
    module = lower_source(source, "m")
    optimize_module(module, opt_level)
    func = module.functions[name]
    machine = select_function(func, default_directives(name))
    validate_machine_function(machine)
    return machine


def instrs(machine):
    return list(machine.iter_instructions())


def count(machine, kind):
    return sum(1 for i in instrs(machine) if isinstance(i, kind))


def test_parameters_moved_from_arg_registers():
    machine = select("int f(int a, int b) { return a + b; }")
    moves = [
        i for i in machine.entry.instructions if isinstance(i, isa.MOV)
    ]
    sources = [m.rs for m in moves[:2]]
    assert sources == [ARG_REGISTERS[0], ARG_REGISTERS[1]]


def test_compare_branch_fusion():
    machine = select(
        "int f(int a, int b) { if (a < b) return 1; return 2; }"
    )
    assert count(machine, isa.BC) >= 1
    assert count(machine, isa.CMP) == 0  # fused away
    bc = next(i for i in instrs(machine) if isinstance(i, isa.BC))
    assert bc.op == "<"


def test_comparison_used_as_value_not_fused():
    machine = select("int f(int a, int b) { return a < b; }")
    assert count(machine, isa.CMP) == 1


def test_fusion_blocked_by_operand_redefinition():
    machine = select(
        """
        int f(int a, int b) {
          int c = a < b;
          a = a + 10;
          if (c) return a;
          return b;
        }
        """
    )
    # The comparison result is still branch-only, but "a" is redefined
    # between compare and branch, so a CMP must be materialized.
    assert count(machine, isa.CMP) == 1


def test_immediate_alu_forms_used():
    machine = select("int f(int a) { return a + 5; }")
    assert count(machine, isa.ALUI) >= 1
    assert count(machine, isa.LDI) == 0


def test_zero_register_used_for_zero_constant():
    machine = select("int f(int a) { return a + 0 * a; }", opt_level=0)
    # 0 never needs an LDI: the zero register serves.
    for instr in instrs(machine):
        if isinstance(instr, isa.LDI):
            assert instr.imm != 0


def test_direct_call_sequence():
    machine = select(
        """
        extern int g(int, int);
        int f() { return g(1, 2); }
        """
    )
    sequence = instrs(machine)
    bl_index = next(
        i for i, ins in enumerate(sequence) if isinstance(ins, isa.BL)
    )
    bl = sequence[bl_index]
    assert bl.callee == "g"
    assert bl.arg_regs == [ARG_REGISTERS[0], ARG_REGISTERS[1]]
    assert RV in bl.clobbers and RP in bl.clobbers
    # Result copied out of RV after the call.
    result_move = sequence[bl_index + 1]
    assert isinstance(result_move, isa.MOV)
    assert result_move.rs == RV
    assert machine.makes_calls


def test_overflow_arguments_stored_to_outgoing_area():
    machine = select(
        """
        extern int g(int, int, int, int, int, int);
        int f() { return g(1, 2, 3, 4, 5, 6); }
        """
    )
    stores = [
        i for i in instrs(machine)
        if isinstance(i, isa.STW) and i.base == SP
    ]
    outgoing = [
        s for s in stores
        if getattr(s.offset, "kind", None) == "outgoing"
    ]
    assert len(outgoing) == 2
    assert machine.max_outgoing_args == 6


def test_global_access_uses_lda_plus_ldw():
    machine = select("int g; int f() { return g; }", opt_level=0)
    sequence = instrs(machine)
    lda = next(i for i in sequence if isinstance(i, isa.LDA))
    assert lda.symbol == "g"
    ldw = next(i for i in sequence if isinstance(i, isa.LDW))
    assert ldw.singleton


def test_lda_cached_within_block():
    machine = select(
        "int g; int h; int f() { g = 1; g = 2; return g; }", opt_level=0
    )
    ldas = [i for i in instrs(machine) if isinstance(i, isa.LDA)]
    assert len(ldas) == 1  # one address materialization for 3 accesses


def test_array_store_not_singleton():
    machine = select("int a[8]; int f(int i) { a[i] = 1; return 0; }")
    stw = next(
        i for i in instrs(machine)
        if isinstance(i, isa.STW) and i.base != SP
    )
    assert not stw.singleton


def test_indirect_call_uses_blr():
    machine = select(
        """
        int g(int x) { return x; }
        int f() { int *p = &g; return p(9); }
        """
    )
    assert count(machine, isa.BLR) == 1
    lda = next(i for i in instrs(machine) if isinstance(i, isa.LDA))
    assert lda.is_function


def test_builtin_lowered_to_sys():
    machine = select("int f() { print(7); putc(10); return 0; }")
    syscalls = [i for i in instrs(machine) if isinstance(i, isa.SYS)]
    assert [s.kind for s in syscalls] == ["print", "putc"]
    assert count(machine, isa.BL) == 0


def test_return_routes_through_exit_block():
    machine = select(
        "int f(int a) { if (a) return 1; return 2; }"
    )
    exit_block = machine.exit
    assert any(isinstance(i, isa.RET) for i in exit_block.instructions)
    rets = count(machine, isa.RET)
    assert rets == 1


def test_unary_ops_use_zero_register():
    machine = select("int f(int a) { return -a; }")
    alu = next(i for i in instrs(machine) if isinstance(i, isa.ALU))
    assert alu.op == "-"
    assert alu.ra == 0  # zero register


def test_frame_slot_address_via_sp():
    machine = select(
        "int f() { int a[4]; a[0] = 1; return a[0]; }"
    )
    addr = next(
        i for i in instrs(machine)
        if isinstance(i, isa.ALUI) and i.ra == SP
    )
    assert getattr(addr.imm, "kind", None) == "slot"
    assert machine.slot_sizes == [4]
