"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import evaluate_const_expr, parse_module


def parse(source):
    return parse_module(source, "test")


def parse_expr(source):
    module = parse(f"int f() {{ return {source}; }}")
    func = module.decls[0]
    return func.body.statements[0].value


def test_empty_module():
    module = parse("")
    assert module.decls == []
    assert module.name == "test"


def test_global_scalar():
    module = parse("int g;")
    decl = module.decls[0]
    assert isinstance(decl, ast.GlobalVarDecl)
    assert decl.name == "g"
    assert decl.array_size is None
    assert decl.init is None


def test_global_with_initializer():
    decl = parse("int g = -42;").decls[0]
    assert decl.init == -42


def test_global_constant_expression_initializer():
    decl = parse("int g = 3 * (4 + 5);").decls[0]
    assert decl.init == 27


def test_static_global():
    decl = parse("static int g;").decls[0]
    assert decl.is_static


def test_global_comma_list():
    module = parse("int a, b = 2, c;")
    names = [d.name for d in module.decls]
    assert names == ["a", "b", "c"]
    assert module.decls[1].init == 2


def test_global_array():
    decl = parse("int a[10];").decls[0]
    assert decl.array_size == 10
    assert decl.array_init is None


def test_global_array_with_initializer():
    decl = parse("int a[4] = {1, 2, 3};").decls[0]
    assert decl.array_size == 4
    assert decl.array_init == [1, 2, 3]


def test_global_array_inferred_size():
    decl = parse("int a[] = {1, 2, 3};").decls[0]
    assert decl.array_size == 3


def test_global_array_string_initializer():
    decl = parse('int s[] = "ab";').decls[0]
    assert decl.array_init == [97, 98, 0]
    assert decl.array_size == 3


def test_array_too_many_initializers_rejected():
    with pytest.raises(ParseError):
        parse("int a[2] = {1, 2, 3};")


def test_empty_array_requires_initializer():
    with pytest.raises(ParseError):
        parse("int a[];")


def test_pointer_global():
    decl = parse("int *p;").decls[0]
    assert decl.pointer_level == 1


def test_extern_variable():
    decl = parse("extern int g;").decls[0]
    assert isinstance(decl, ast.ExternVarDecl)
    assert not decl.is_array


def test_extern_array():
    decl = parse("extern int a[];").decls[0]
    assert decl.is_array


def test_extern_function():
    decl = parse("extern int f(int, int);").decls[0]
    assert isinstance(decl, ast.ExternFuncDecl)
    assert decl.param_count == 2


def test_function_prototype_without_extern():
    decl = parse("int f(int a);").decls[0]
    assert isinstance(decl, ast.ExternFuncDecl)
    assert decl.param_count == 1


def test_function_definition():
    decl = parse("int f(int a, int b) { return a; }").decls[0]
    assert isinstance(decl, ast.FunctionDef)
    assert [p.name for p in decl.params] == ["a", "b"]
    assert decl.return_type == "int"


def test_void_function():
    decl = parse("void f() { return; }").decls[0]
    assert decl.return_type == "void"


def test_void_parameter_list():
    decl = parse("int f(void) { return 0; }").decls[0]
    assert decl.params == []


def test_pointer_parameter():
    decl = parse("int f(int *p) { return 0; }").decls[0]
    assert decl.params[0].pointer_level == 1


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.BinaryExpr)
    assert expr.op == "+"
    assert isinstance(expr.rhs, ast.BinaryExpr)
    assert expr.rhs.op == "*"


def test_precedence_shift_below_add():
    expr = parse_expr("1 << 2 + 3")
    assert expr.op == "<<"
    assert expr.rhs.op == "+"


def test_precedence_comparison_below_shift():
    expr = parse_expr("1 < 2 >> 3")
    assert expr.op == "<"


def test_precedence_logical():
    expr = parse_expr("a || b && c")
    assert expr.op == "||"
    assert expr.rhs.op == "&&"


def test_precedence_bitwise_chain():
    expr = parse_expr("a | b ^ c & d")
    assert expr.op == "|"
    assert expr.rhs.op == "^"
    assert expr.rhs.rhs.op == "&"


def test_left_associativity():
    expr = parse_expr("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.lhs, ast.BinaryExpr)
    assert expr.lhs.op == "-"


def test_assignment_right_associative():
    expr = parse_expr("a = b = 1")
    assert isinstance(expr, ast.AssignExpr)
    assert isinstance(expr.value, ast.AssignExpr)


def test_compound_assignment():
    expr = parse_expr("a += 2")
    assert isinstance(expr, ast.AssignExpr)
    assert expr.op == "+"


def test_ternary():
    expr = parse_expr("a ? 1 : 2")
    assert isinstance(expr, ast.CondExpr)


def test_ternary_nests_rightward():
    expr = parse_expr("a ? 1 : b ? 2 : 3")
    assert isinstance(expr.otherwise, ast.CondExpr)


def test_unary_operators():
    for op in ("-", "!", "~", "*", "&"):
        expr = parse_expr(f"{op}a")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == op


def test_increment_decrement():
    pre = parse_expr("++a")
    post = parse_expr("a--")
    assert isinstance(pre, ast.IncDecExpr) and pre.is_prefix and pre.delta == 1
    assert isinstance(post, ast.IncDecExpr)
    assert not post.is_prefix and post.delta == -1


def test_call_and_index_postfix():
    expr = parse_expr("f(1, 2)[3]")
    assert isinstance(expr, ast.IndexExpr)
    assert isinstance(expr.base, ast.CallExpr)
    assert len(expr.base.args) == 2


def test_statements_parse():
    module = parse(
        """
        int f(int n) {
          int x = 0;
          if (n > 0) x = 1; else x = 2;
          while (n) { n = n - 1; continue; }
          do { x++; } while (x < 3);
          for (n = 0; n < 4; n++) { if (n == 2) break; }
          ;
          return x;
        }
        """
    )
    body = module.decls[0].body
    assert isinstance(body.statements[0], ast.LocalDecl)
    assert isinstance(body.statements[1], ast.IfStmt)
    assert isinstance(body.statements[2], ast.WhileStmt)
    assert isinstance(body.statements[3], ast.DoWhileStmt)
    assert isinstance(body.statements[4], ast.ForStmt)
    assert isinstance(body.statements[5], ast.EmptyStmt)
    assert isinstance(body.statements[6], ast.ReturnStmt)


def test_local_array_declaration():
    module = parse("int f() { int a[4] = {1, 2}; return a[0]; }")
    decl = module.decls[0].body.statements[0]
    assert decl.array_size == 4
    assert decl.array_init == [1, 2]


def test_local_comma_list():
    module = parse("int f() { int a = 1, b, *p; return a; }")
    decls = module.decls[0].body.statements[:3]
    assert [d.name for d in decls] == ["a", "b", "p"]
    assert decls[2].pointer_level == 1


def test_for_with_empty_clauses():
    module = parse("int f() { for (;;) break; return 0; }")
    loop = module.decls[0].body.statements[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse("int f() { return 0 }")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse("int f() { return 0;")


def test_garbage_expression_rejected():
    with pytest.raises(ParseError):
        parse("int f() { return +; }")


def test_const_expr_evaluation():
    cases = {
        "1 + 2 * 3": 7,
        "-(4 - 6)": 2,
        "7 / 2": 3,
        "-7 / 2": -3,
        "-7 % 2": -1,
        "1 << 4": 16,
        "~0": -1,
        "!5": 0,
        "3 == 3": 1,
        "2 > 5 || 1": 1,
    }
    for source, expected in cases.items():
        module = parse(f"int g = {source};")
        assert module.decls[0].init == expected, source


def test_const_expr_division_by_zero_rejected():
    with pytest.raises(ParseError):
        parse("int g = 1 / 0;")


def test_const_expr_rejects_names():
    with pytest.raises(ParseError):
        parse("int g = x + 1;")


def test_array_size_constant_expression():
    decl = parse("int a[2 * 8];").decls[0]
    assert decl.array_size == 16
