"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_simple_declaration():
    assert kinds("int x;") == [
        TokenKind.KW_INT,
        TokenKind.IDENT,
        TokenKind.SEMICOLON,
        TokenKind.EOF,
    ]


def test_decimal_literal_value():
    token = tokenize("12345")[0]
    assert token.kind is TokenKind.INT_LITERAL
    assert token.value == 12345


def test_hex_literal_value():
    token = tokenize("0x1F")[0]
    assert token.value == 31


def test_hex_literal_requires_digits():
    with pytest.raises(LexError):
        tokenize("0x")


def test_identifier_cannot_start_with_digit():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_keywords_recognized():
    source = "int void if else while for do return break continue static extern"
    expected = [
        TokenKind.KW_INT, TokenKind.KW_VOID, TokenKind.KW_IF,
        TokenKind.KW_ELSE, TokenKind.KW_WHILE, TokenKind.KW_FOR,
        TokenKind.KW_DO, TokenKind.KW_RETURN, TokenKind.KW_BREAK,
        TokenKind.KW_CONTINUE, TokenKind.KW_STATIC, TokenKind.KW_EXTERN,
        TokenKind.EOF,
    ]
    assert kinds(source) == expected


def test_identifier_containing_keyword_prefix():
    tokens = tokenize("integer iffy")
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].text == "integer"
    assert tokens[1].kind is TokenKind.IDENT


def test_maximal_munch_operators():
    assert kinds("a <<= b")[:4] == [
        TokenKind.IDENT,
        TokenKind.LSHIFT,
        TokenKind.ASSIGN,
        TokenKind.IDENT,
    ]
    assert kinds("a<=b")[1] is TokenKind.LE
    assert kinds("a<b")[1] is TokenKind.LT
    assert kinds("a&&b")[1] is TokenKind.AND_AND
    assert kinds("a&b")[1] is TokenKind.AMP
    assert kinds("a++")[1] is TokenKind.PLUS_PLUS
    assert kinds("a+ +b")[1] is TokenKind.PLUS


def test_compound_assignment_operators():
    assert kinds("a += b")[1] is TokenKind.PLUS_ASSIGN
    assert kinds("a -= b")[1] is TokenKind.MINUS_ASSIGN
    assert kinds("a *= b")[1] is TokenKind.STAR_ASSIGN
    assert kinds("a /= b")[1] is TokenKind.SLASH_ASSIGN
    assert kinds("a %= b")[1] is TokenKind.PERCENT_ASSIGN


def test_char_literal():
    token = tokenize("'A'")[0]
    assert token.kind is TokenKind.CHAR_LITERAL
    assert token.value == 65


def test_char_escapes():
    assert tokenize(r"'\n'")[0].value == 10
    assert tokenize(r"'\t'")[0].value == 9
    assert tokenize(r"'\0'")[0].value == 0
    assert tokenize(r"'\\'")[0].value == 92
    assert tokenize(r"'\''")[0].value == 39


def test_unknown_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r"'\q'")


def test_unterminated_char_rejected():
    with pytest.raises(LexError):
        tokenize("'a")


def test_string_literal():
    token = tokenize('"hello"')[0]
    assert token.kind is TokenKind.STRING_LITERAL
    assert token.value == "hello"


def test_string_with_escapes():
    assert tokenize(r'"a\nb"')[0].value == "a\nb"


def test_unterminated_string_rejected():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_line_comment_skipped():
    assert kinds("a // comment\n b") == [
        TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF,
    ]


def test_block_comment_skipped():
    assert kinds("a /* x\ny */ b") == [
        TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF,
    ]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("int $x;")


def test_locations_track_lines_and_columns():
    tokens = tokenize("int\n  x;")
    assert tokens[0].location.line == 1
    assert tokens[0].location.column == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_location_module_name():
    tokens = tokenize("x", module_name="mymod")
    assert tokens[0].location.module == "mymod"
