"""Semantic analysis unit tests."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.sema import (
    FunctionSymbol,
    GlobalSymbol,
    LocalSymbol,
    analyze_source,
)


def analyze(source, name="m"):
    return analyze_source(source, name)


def test_globals_collected():
    info = analyze("int g; int a[4]; static int s;")
    assert set(info.globals) == {"g", "a", "s"}
    assert info.globals["a"].is_array
    assert info.globals["a"].size_words == 4
    assert info.globals["s"].is_static


def test_static_names_qualified():
    info = analyze("static int s; int g;", name="mod1")
    assert info.globals["s"].qualified_name == "mod1.s"
    assert info.globals["g"].qualified_name == "g"


def test_static_function_qualified():
    info = analyze("static int f() { return 0; }", name="mod1")
    assert info.functions["f"].qualified_name == "mod1.f"


def test_duplicate_global_rejected():
    with pytest.raises(SemanticError):
        analyze("int g; int g;")


def test_global_function_name_clash_rejected():
    with pytest.raises(SemanticError):
        analyze("int g; int g() { return 0; }")


def test_builtin_name_clash_rejected():
    with pytest.raises(SemanticError):
        analyze("int print;")


def test_undefined_name_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { return missing; }")


def test_extern_resolves_references():
    info = analyze("extern int g; int f() { return g; }")
    assert info.globals["g"].is_extern_ref


def test_prototype_then_definition():
    info = analyze("int f(int); int f(int a) { return a; }")
    assert info.functions["f"].is_defined
    assert info.functions["f"].param_count == 1


def test_definition_prototype_mismatch_rejected():
    with pytest.raises(SemanticError):
        analyze("int f(int); int f(int a, int b) { return a; }")


def test_redefinition_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { return 0; } int f() { return 1; }")


def test_call_argument_count_checked():
    with pytest.raises(SemanticError):
        analyze("int f(int a) { return a; } int g() { return f(); }")


def test_builtin_argument_count_checked():
    with pytest.raises(SemanticError):
        analyze("int f() { print(1, 2); return 0; }")


def test_void_function_value_use_rejected():
    with pytest.raises(SemanticError):
        analyze("void f() { } int g() { return f(); }")


def test_void_return_with_value_rejected():
    with pytest.raises(SemanticError):
        analyze("void f() { return 1; }")


def test_int_return_without_value_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { return; }")


def test_local_scoping_shadows():
    info = analyze(
        "int g; int f() { int g = 1; { int g = 2; } return g; }"
    )
    func = info.function_infos[0]
    assert len(func.locals) == 2


def test_duplicate_local_in_same_scope_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { int x; int x; return 0; }")


def test_duplicate_parameter_rejected():
    with pytest.raises(SemanticError):
        analyze("int f(int a, int a) { return a; }")


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { break; return 0; }")


def test_continue_inside_loop_allowed():
    analyze("int f() { while (1) { continue; } return 0; }")


def test_assignment_to_array_rejected():
    with pytest.raises(SemanticError):
        analyze("int a[4]; int f() { a = 1; return 0; }")


def test_assignment_to_function_rejected():
    with pytest.raises(SemanticError):
        analyze("int g() { return 0; } int f() { g = 1; return 0; }")


def test_address_of_global_sets_aliased():
    info = analyze("int g; int f() { int *p = &g; return *p; }")
    assert info.globals["g"].address_taken


def test_address_of_array_element_sets_aliased():
    info = analyze("int a[4]; int f() { int *p = &a[1]; return *p; }")
    assert info.globals["a"].address_taken


def test_address_of_local_marks_it():
    info = analyze("int f() { int x; int *p = &x; *p = 1; return x; }")
    local = next(l for l in info.function_infos[0].locals if l.name == "x")
    assert local.address_taken


def test_plain_global_use_does_not_alias():
    info = analyze("int g; int f() { g = g + 1; return g; }")
    assert not info.globals["g"].address_taken


def test_function_address_taken():
    info = analyze(
        "int h(int x) { return x; }\n"
        "int f() { int *p = &h; return (*p)(3); }"
    )
    assert info.functions["h"].address_taken


def test_function_name_as_value_marks_address_taken():
    info = analyze(
        "int h(int x) { return x; }\n"
        "int f() { int *p = h; return p(3); }"
    )
    assert info.functions["h"].address_taken


def test_direct_call_not_indirect():
    info = analyze("int h() { return 1; } int f() { return h(); }")
    call = info.function_infos[1].definition.body.statements[0].value
    assert call.is_indirect is False


def test_call_through_variable_is_indirect():
    info = analyze(
        "int h() { return 1; }\n"
        "int f() { int *p = &h; return p(); }"
    )
    call = info.function_infos[1].definition.body.statements[1].value
    assert call.is_indirect is True


def test_address_of_builtin_rejected():
    with pytest.raises(SemanticError):
        analyze("int f() { int *p = &print; return 0; }")


def test_name_resolution_order_local_over_global():
    info = analyze("int x; int f(int x) { return x; }")
    name = info.function_infos[0].definition.body.statements[0].value
    assert isinstance(name.symbol, LocalSymbol)


def test_array_size_must_be_positive():
    with pytest.raises(SemanticError):
        analyze("int f() { int a[0]; return 0; }")
