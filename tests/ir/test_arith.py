"""32-bit arithmetic semantics tests (shared optimizer/simulator rules)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import arith

int32 = st.integers(min_value=arith.INT_MIN, max_value=arith.INT_MAX)


def test_wrap32_identity_in_range():
    assert arith.wrap32(0) == 0
    assert arith.wrap32(arith.INT_MAX) == arith.INT_MAX
    assert arith.wrap32(arith.INT_MIN) == arith.INT_MIN


def test_wrap32_overflow():
    assert arith.wrap32(arith.INT_MAX + 1) == arith.INT_MIN
    assert arith.wrap32(arith.INT_MIN - 1) == arith.INT_MAX
    assert arith.wrap32(1 << 32) == 0


def test_c_division_truncates_toward_zero():
    assert arith.c_div(7, 2) == 3
    assert arith.c_div(-7, 2) == -3
    assert arith.c_div(7, -2) == -3
    assert arith.c_div(-7, -2) == 3


def test_c_remainder_sign_follows_dividend():
    assert arith.c_rem(7, 2) == 1
    assert arith.c_rem(-7, 2) == -1
    assert arith.c_rem(7, -2) == 1
    assert arith.c_rem(-7, -2) == -1


def test_division_by_zero_raises():
    with pytest.raises(arith.DivisionByZeroError):
        arith.c_div(1, 0)
    with pytest.raises(arith.DivisionByZeroError):
        arith.c_rem(1, 0)
    with pytest.raises(arith.DivisionByZeroError):
        arith.eval_binop("/", 1, 0)


def test_shift_count_masked():
    assert arith.eval_binop("<<", 1, 33) == 2
    assert arith.eval_binop(">>", 4, 34) == 1


def test_arithmetic_right_shift_of_negative():
    assert arith.eval_binop(">>", -8, 1) == -4
    assert arith.eval_binop(">>", -1, 31) == -1


def test_comparisons_produce_zero_one():
    assert arith.eval_binop("<", 1, 2) == 1
    assert arith.eval_binop(">=", 1, 2) == 0


def test_unops():
    assert arith.eval_unop("-", 5) == -5
    assert arith.eval_unop("-", arith.INT_MIN) == arith.INT_MIN  # wraps
    assert arith.eval_unop("~", 0) == -1
    assert arith.eval_unop("!", 0) == 1
    assert arith.eval_unop("!", 17) == 0


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        arith.eval_binop("**", 1, 2)
    with pytest.raises(ValueError):
        arith.eval_unop("+", 1)


@given(int32, int32)
def test_add_matches_two_complement(a, b):
    expected = (a + b) & arith.WORD_MASK
    assert arith.eval_binop("+", a, b) & arith.WORD_MASK == expected


@given(int32, int32)
def test_mul_matches_two_complement(a, b):
    expected = (a * b) & arith.WORD_MASK
    assert arith.eval_binop("*", a, b) & arith.WORD_MASK == expected


@given(int32)
def test_wrap_is_idempotent(a):
    assert arith.wrap32(arith.wrap32(a)) == arith.wrap32(a)


@given(int32, int32)
def test_division_identity(a, b):
    if b == 0:
        return
    quotient = arith.eval_binop("/", a, b)
    remainder = arith.eval_binop("%", a, b)
    assert arith.wrap32(quotient * b + remainder) == a


@given(int32, int32)
def test_negated_comparisons_consistent(a, b):
    for op, negated in arith.NEGATED_COMPARISON.items():
        assert arith.eval_binop(op, a, b) == 1 - arith.eval_binop(
            negated, a, b
        )


@given(int32, int32)
def test_swapped_comparisons_consistent(a, b):
    for op, swapped in arith.SWAPPED_COMPARISON.items():
        assert arith.eval_binop(op, a, b) == arith.eval_binop(swapped, b, a)


@given(int32, int32)
def test_commutative_ops(a, b):
    for op in arith.COMMUTATIVE_OPS:
        assert arith.eval_binop(op, a, b) == arith.eval_binop(op, b, a)
