"""IR verifier tests."""

import pytest

from repro.ir.function import IRFunction
from repro.ir.instructions import (
    BinOp,
    CJump,
    FrameAddr,
    FrameSlot,
    Jump,
    Move,
    Return,
)
from repro.ir.values import Const
from repro.ir.verifier import IRVerificationError, verify_function


def make_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_valid_function_passes():
    func = make_function()
    temp = func.new_temp()
    func.entry.append(Move(temp, Const(1)))
    func.entry.terminator = Return(temp)
    verify_function(func)


def test_unterminated_block_rejected():
    func = make_function()
    with pytest.raises(IRVerificationError, match="unterminated"):
        verify_function(func)


def test_branch_to_unknown_block_rejected():
    func = make_function()
    func.entry.terminator = Jump("nowhere")
    with pytest.raises(IRVerificationError, match="unknown"):
        verify_function(func)


def test_use_of_undefined_temp_rejected():
    func = make_function()
    ghost = func.new_temp()
    func.entry.terminator = Return(ghost)
    with pytest.raises(IRVerificationError, match="undefined"):
        verify_function(func)


def test_use_defined_on_only_one_path_rejected():
    func = make_function()
    temp = func.new_temp()
    then_block = func.new_block("then")
    join = func.new_block("join")
    cond = func.new_temp()
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = CJump(cond, then_block.label, join.label)
    then_block.append(Move(temp, Const(2)))
    then_block.terminator = Jump(join.label)
    join.terminator = Return(temp)
    with pytest.raises(IRVerificationError, match="undefined"):
        verify_function(func)


def test_use_defined_on_all_paths_accepted():
    func = make_function()
    temp = func.new_temp()
    then_block = func.new_block("then")
    else_block = func.new_block("else")
    join = func.new_block("join")
    cond = func.new_temp()
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = CJump(cond, then_block.label, else_block.label)
    then_block.append(Move(temp, Const(2)))
    then_block.terminator = Jump(join.label)
    else_block.append(Move(temp, Const(3)))
    else_block.terminator = Jump(join.label)
    join.terminator = Return(temp)
    verify_function(func)


def test_param_is_defined():
    func = make_function()
    param = func.new_temp("a")
    func.params.append(param)
    func.entry.terminator = Return(param)
    verify_function(func)


def test_pinned_temp_is_defined():
    func = make_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    func.entry.terminator = Return(pinned)
    verify_function(func)


def test_foreign_frame_slot_rejected():
    func = make_function()
    alien = FrameSlot("alien", 4)
    temp = func.new_temp()
    func.entry.append(FrameAddr(temp, alien))
    func.entry.terminator = Return(Const(0))
    with pytest.raises(IRVerificationError, match="slot"):
        verify_function(func)


def test_temp_defined_in_loop_accepted():
    # entry -> head <-> body, head -> exit; temp defined in entry,
    # redefined in body, used in exit.
    func = make_function()
    temp = func.new_temp()
    head = func.new_block("head")
    body = func.new_block("body")
    exit_block = func.new_block("exit")
    cond = func.new_temp()
    func.entry.append(Move(temp, Const(0)))
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = Jump(head.label)
    head.terminator = CJump(cond, body.label, exit_block.label)
    body.append(BinOp(temp, "+", temp, Const(1)))
    body.terminator = Jump(head.label)
    exit_block.terminator = Return(temp)
    verify_function(func)
