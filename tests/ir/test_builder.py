"""AST -> IR lowering tests."""

import pytest

from repro.ir import lower_source, verify_module
from repro.ir.instructions import (
    BinOp,
    Call,
    CallIndirect,
    CJump,
    FrameAddr,
    Jump,
    Load,
    LoadAddr,
    LoadGlobal,
    Move,
    Return,
    Store,
    StoreGlobal,
)
from repro.ir.values import Const, Temp


def lower(source):
    module = lower_source(source, "m")
    verify_module(module)
    return module


def instructions_of(function):
    return list(function.iter_instructions())


def test_simple_function_structure():
    module = lower("int add(int a, int b) { return a + b; }")
    func = module.functions["add"]
    assert len(func.params) == 2
    (instr,) = instructions_of(func)
    assert isinstance(instr, BinOp)
    assert instr.op == "+"


def test_global_scalar_access_uses_load_store_global():
    module = lower("int g; int f() { g = g + 1; return g; }")
    instrs = instructions_of(module.functions["f"])
    assert any(isinstance(i, LoadGlobal) and i.symbol == "g" for i in instrs)
    assert any(isinstance(i, StoreGlobal) and i.symbol == "g" for i in instrs)


def test_static_global_uses_qualified_name():
    module = lower("static int s; int f() { return s; }")
    instrs = instructions_of(module.functions["f"])
    load = next(i for i in instrs if isinstance(i, LoadGlobal))
    assert load.symbol == "m.s"
    assert "m.s" in module.globals


def test_global_array_access_not_singleton():
    module = lower("int a[4]; int f(int i) { return a[i]; }")
    instrs = instructions_of(module.functions["f"])
    load = next(i for i in instrs if isinstance(i, Load))
    assert load.singleton is False
    assert any(isinstance(i, LoadAddr) and i.symbol == "a" for i in instrs)


def test_constant_index_folded_into_offset():
    module = lower("int a[4]; int f() { return a[2]; }")
    instrs = instructions_of(module.functions["f"])
    load = next(i for i in instrs if isinstance(i, Load))
    assert load.offset == 2


def test_local_scalar_is_temp():
    module = lower("int f() { int x = 5; return x; }")
    func = module.functions["f"]
    assert func.frame_slots == []


def test_address_taken_local_gets_frame_slot():
    module = lower(
        "int f() { int x = 5; int *p = &x; *p = 7; return x; }"
    )
    func = module.functions["f"]
    assert len(func.frame_slots) == 1
    assert func.frame_slots[0].is_scalar
    instrs = instructions_of(func)
    named_loads = [
        i for i in instrs if isinstance(i, Load) and i.singleton
    ]
    assert named_loads  # direct access of x stays a singleton reference


def test_local_array_gets_frame_slot_and_init_stores():
    module = lower("int f() { int a[4] = {1, 2}; return a[1]; }")
    func = module.functions["f"]
    assert func.frame_slots[0].size_words == 4
    stores = [
        i for i in instructions_of(func) if isinstance(i, Store)
    ]
    # Full zero-fill: 4 element stores.
    assert len(stores) == 4
    assert sorted(s.offset for s in stores) == [0, 1, 2, 3]


def test_uninitialized_local_scalar_zeroed():
    module = lower("int f() { int x; return x; }")
    instrs = instructions_of(module.functions["f"])
    move = next(i for i in instrs if isinstance(i, Move))
    assert move.src == Const(0)


def test_address_taken_param_spilled_to_frame():
    module = lower("int f(int a) { int *p = &a; *p = 3; return a; }")
    func = module.functions["f"]
    assert len(func.frame_slots) == 1
    first = func.entry.instructions[0]
    assert isinstance(first, FrameAddr)


def test_short_circuit_and_produces_control_flow():
    module = lower("int f(int a, int b) { if (a && b) return 1; return 0; }")
    func = module.functions["f"]
    cjumps = [
        b.terminator for b in func.blocks.values()
        if isinstance(b.terminator, CJump)
    ]
    assert len(cjumps) >= 2  # one per conjunct


def test_short_circuit_value_materializes_zero_one():
    module = lower("int f(int a, int b) { return a || b; }")
    func = module.functions["f"]
    moves = [
        i for i in instructions_of(func)
        if isinstance(i, Move) and isinstance(i.src, Const)
    ]
    values = {m.src.value for m in moves}
    assert {0, 1} <= values


def test_ternary_lowering():
    module = lower("int f(int a) { return a ? 10 : 20; }")
    func = module.functions["f"]
    moves = [
        i for i in instructions_of(func)
        if isinstance(i, Move) and isinstance(i.src, Const)
    ]
    assert {m.src.value for m in moves} == {10, 20}


def test_direct_call_lowering():
    module = lower(
        "int g(int x) { return x; } int f() { return g(7); }"
    )
    instrs = instructions_of(module.functions["f"])
    call = next(i for i in instrs if isinstance(i, Call))
    assert call.callee == "g"
    assert call.args == [Const(7)]
    assert call.dst is not None


def test_void_call_has_no_destination():
    module = lower("void g() { } int f() { g(); return 0; }")
    instrs = instructions_of(module.functions["f"])
    call = next(i for i in instrs if isinstance(i, Call))
    assert call.dst is None


def test_builtin_call_marked():
    module = lower("int f() { print(3); return 0; }")
    instrs = instructions_of(module.functions["f"])
    call = next(i for i in instrs if isinstance(i, Call))
    assert call.is_builtin
    assert call.callee == "print"


def test_indirect_call_strips_function_pointer_deref():
    module = lower(
        "int g(int x) { return x; }\n"
        "int f() { int *p = &g; return (*p)(1); }"
    )
    instrs = instructions_of(module.functions["f"])
    call = next(i for i in instrs if isinstance(i, CallIndirect))
    # The target must be the pointer value itself, not a memory load.
    loads = [i for i in instrs if isinstance(i, Load)]
    assert not loads
    lda = next(i for i in instrs if isinstance(i, LoadAddr))
    assert lda.is_function


def test_loop_depth_recorded_on_blocks():
    module = lower(
        """
        int f(int n) {
          int s = 0;
          int i;
          int j;
          for (i = 0; i < n; i++) {
            for (j = 0; j < n; j++) {
              s += j;
            }
          }
          return s;
        }
        """
    )
    func = module.functions["f"]
    depths = [b.loop_depth for b in func.blocks.values()]
    assert max(depths) == 2
    assert func.entry.loop_depth == 0


def test_missing_return_gets_implicit_zero():
    module = lower("int f(int a) { if (a) return 1; }")
    func = module.functions["f"]
    returns = [
        b.terminator for b in func.blocks.values()
        if isinstance(b.terminator, Return)
    ]
    assert any(r.value == Const(0) for r in returns)


def test_void_function_implicit_return():
    module = lower("void f() { }")
    func = module.functions["f"]
    (block,) = func.blocks.values()
    assert isinstance(block.terminator, Return)
    assert block.terminator.value is None


def test_break_and_continue_targets():
    module = lower(
        """
        int f(int n) {
          int i;
          int s = 0;
          for (i = 0; i < n; i++) {
            if (i == 2) continue;
            if (i == 5) break;
            s += i;
          }
          return s;
        }
        """
    )
    func = module.functions["f"]
    # No unterminated blocks and verification already passed.
    assert all(b.is_terminated for b in func.blocks.values())


def test_extern_reference_recorded():
    module = lower("extern int g; extern int h(int); "
                   "int f() { return g + h(1); }")
    assert module.extern_globals == {"g"}
    assert module.extern_functions == {"h"}


def test_compound_assignment_to_global():
    module = lower("int g; int f() { g += 5; return g; }")
    instrs = instructions_of(module.functions["f"])
    assert any(isinstance(i, StoreGlobal) for i in instrs)
    binop = next(i for i in instrs if isinstance(i, BinOp))
    assert binop.op == "+"


def test_post_increment_yields_old_value():
    module = lower("int f() { int x = 5; return x++; }")
    # Semantics validated end-to-end by simulator tests; here we just
    # check the lowering produced an add of 1.
    instrs = instructions_of(module.functions["f"])
    binop = next(i for i in instrs if isinstance(i, BinOp))
    assert binop.rhs == Const(1)


def test_global_initializers_collected():
    module = lower("int g = 7; int a[3] = {1, 2}; int z;")
    assert module.globals["g"].init_words == [7]
    assert module.globals["a"].init_words == [1, 2]
    assert module.globals["a"].size_words == 3
    assert module.globals["z"].init_words == [0]


def test_unreachable_code_dropped():
    module = lower("int f() { return 1; return 2; }")
    func = module.functions["f"]
    returns = [
        b.terminator for b in func.blocks.values()
        if isinstance(b.terminator, Return)
    ]
    assert len(returns) == 1
