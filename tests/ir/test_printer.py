"""IR printer tests (dump format stability for debugging workflows)."""

from repro.ir import format_function, format_module, lower_source


def test_function_dump_contains_blocks_and_instructions():
    module = lower_source(
        """
        int g;
        int f(int a) {
          int i;
          int s = 0;
          for (i = 0; i < a; i++) s += g;
          return s;
        }
        """,
        "m",
    )
    text = format_function(module.functions["f"])
    assert "func f(" in text
    assert "-> int" in text
    assert "entry:" in text
    assert "load_global @g" in text
    assert "depth=1" in text  # loop blocks annotated


def test_module_dump_lists_globals_and_externs():
    module = lower_source(
        """
        int g = 1;
        static int s;
        int arr[4];
        extern int other;
        extern int callee(int);
        int f() { int *p = &g; return *p + other + callee(1); }
        """,
        "m",
    )
    text = format_module(module)
    assert "module m" in text
    assert "global @g: scalar 1 words [aliased]" in text
    assert "global @m.s: scalar 1 words [static]" in text
    assert "global @arr: array 4 words" in text
    assert "extern global @other" in text
    assert "extern func @callee" in text


def test_frame_slots_listed():
    module = lower_source("int f() { int a[8]; return a[0]; }", "m")
    text = format_function(module.functions["f"])
    assert "frame a: 8 words" in text


def test_dump_round_trips_through_repr():
    """Every instruction repr is a single line (dump stays parseable by
    eye and by simple log tooling)."""
    module = lower_source(
        """
        int g;
        int h(int x) { return x; }
        int f(int a, int *p) {
          int arr[2];
          arr[0] = *p;
          g = a ? h(a) : -a;
          int *fp = &h;
          return fp(g) + arr[0];
        }
        """,
        "m",
    )
    for function in module.functions.values():
        text = format_function(function)
        for line in text.splitlines():
            assert "\n" not in line
            assert len(line) < 200
