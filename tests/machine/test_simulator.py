"""PRISM simulator tests: semantics, metrics, faults."""

import pytest

from repro import compile_program, run_executable
from repro.machine.simulator import (
    CostModel,
    ExecutionLimitExceeded,
    MachineError,
    Simulator,
)


def run_source(source, opt_level=2, **kwargs):
    result = compile_program({"m": source}, opt_level)
    return run_executable(result.executable, **kwargs)


def test_exit_code_from_main():
    stats = run_source("int main() { return 42; }")
    assert stats.exit_code == 42


def test_print_output():
    stats = run_source(
        "int main() { print(1); print(-23); print(0); return 0; }"
    )
    assert stats.output == "1\n-23\n0\n"


def test_putc_output():
    stats = run_source(
        "int main() { putc('h'); putc('i'); putc(10); return 0; }"
    )
    assert stats.output == "hi\n"


def test_arithmetic_matches_c_semantics():
    stats = run_source(
        """
        int main() {
          print(7 / 2);
          print(-7 / 2);
          print(7 % -2);
          print(-7 % 2);
          print(1 << 10);
          print(-16 >> 2);
          print(2147483647 + 1);
          print(-2147483647 - 2);
          return 0;
        }
        """,
        opt_level=0,  # force runtime evaluation
    )
    assert stats.output.splitlines() == [
        "3", "-3", "1", "-1", "1024", "-4",
        "-2147483648", "2147483647",
    ]


def test_constant_folding_agrees_with_runtime():
    source = """
    int main() {
      int a = -7;
      int b = 2;
      print(a / b);
      print(a % b);
      print(a >> 1);
      return 0;
    }
    """
    folded = run_source(source, opt_level=2)
    runtime = run_source(source, opt_level=0)
    assert folded.output == runtime.output


def test_division_by_zero_faults():
    with pytest.raises(MachineError, match="division"):
        run_source("int main() { int z = 0; return 1 / z; }")


def test_remainder_by_zero_faults():
    with pytest.raises(MachineError, match="remainder"):
        run_source("int main() { int z = 0; return 1 % z; }")


def test_wild_store_faults():
    with pytest.raises(MachineError, match="store"):
        run_source(
            "int main() { int *p = 3; *p = 1; return 0; }"
        )


def test_guard_region_reads_zero():
    stats = run_source(
        "int main() { int *p = 40; return *p + 5; }"
    )
    assert stats.exit_code == 5


def test_cycle_limit_enforced():
    with pytest.raises(ExecutionLimitExceeded):
        run_source(
            "int main() { for (;;) ; return 0; }", max_cycles=10_000
        )


def test_cycle_and_instruction_counts_positive():
    stats = run_source("int main() { print(1); return 0; }")
    assert stats.instructions > 0
    assert stats.cycles == stats.instructions  # default cost model


def test_cost_model_changes_cycles():
    result = compile_program(
        {"m": "int main() { int a = 6; int b = 2; return a * b / 2; }"},
        opt_level=0,
    )
    cheap = run_executable(result.executable)
    costly = run_executable(
        result.executable, cost_model=CostModel(mul=8, div=30)
    )
    assert costly.cycles > cheap.cycles
    assert costly.instructions == cheap.instructions


def test_singleton_vs_array_accounting():
    stats = run_source(
        """
        int g;
        int arr[8];
        int main() {
          int i;
          for (i = 0; i < 8; i++) arr[i] = i;  // array: not singleton
          g = arr[3];                           // one singleton store
          return g;
        }
        """,
        opt_level=0,
    )
    assert stats.stores >= 9
    assert stats.singleton_stores >= 1
    assert stats.singleton_stores < stats.stores


def test_call_counts_recorded():
    stats = run_source(
        """
        int helper(int x) { return x + 1; }
        int main() {
          int i;
          int s = 0;
          for (i = 0; i < 5; i++) s = helper(s);
          return s;
        }
        """
    )
    assert stats.call_counts["helper"] == 5
    assert stats.call_counts["main"] == 1
    assert stats.call_edges[("main", "helper")] == 5


def test_indirect_call_counts_attributed():
    stats = run_source(
        """
        int target(int x) { return x * 2; }
        int main() {
          int *p = &target;
          return p(4);
        }
        """
    )
    assert stats.call_counts["target"] == 1
    assert stats.call_edges[("main", "target")] == 1


def test_indirect_call_to_data_address_faults():
    with pytest.raises(MachineError, match="indirect"):
        run_source(
            """
            int g;
            int main() { int *p = &g; return p(1); }
            """
        )


def test_recursion_deep_but_bounded():
    stats = run_source(
        """
        int sum(int n) {
          if (n == 0) return 0;
          return n + sum(n - 1);
        }
        int main() { return sum(500) & 255; }
        """
    )
    assert stats.exit_code == (500 * 501 // 2) & 255
    assert stats.call_counts["sum"] == 501


def test_memory_isolated_between_runs():
    result = compile_program(
        {"m": "int g; int main() { g = g + 1; return g; }"}
    )
    first = run_executable(result.executable)
    second = run_executable(result.executable)
    assert first.exit_code == second.exit_code == 1


def test_globals_initialized_from_data_segment():
    stats = run_source(
        """
        int a = 11;
        int arr[4] = {5, 6};
        static int s = -3;
        int main() { return a + arr[0] + arr[1] + arr[3] + s; }
        """
    )
    assert stats.exit_code == 11 + 5 + 6 + 0 - 3


def test_total_calls_property():
    stats = run_source(
        "int f() { return 1; } int main() { return f() + f(); }"
    )
    assert stats.total_calls == 3  # main + 2x f
