"""Profiler (gprof-equivalent) tests."""

from repro import compile_program, run_executable
from repro.machine.profiler import ProfileData


SOURCE = """
int leaf(int x) { return x + 1; }
int mid(int x) {
  int i;
  int s = 0;
  for (i = 0; i < 4; i++) s += leaf(x + i);
  return s;
}
int main() {
  int i;
  int total = 0;
  for (i = 0; i < 3; i++) total += mid(i);
  print(total);
  return 0;
}
"""


def profile_of(source):
    result = compile_program({"m": source})
    stats = run_executable(result.executable)
    return ProfileData.from_stats(stats)


def test_node_counts():
    profile = profile_of(SOURCE)
    assert profile.node_count("main") == 1
    assert profile.node_count("mid") == 3
    assert profile.node_count("leaf") == 12
    assert profile.node_count("nonexistent") == 0


def test_edge_counts():
    profile = profile_of(SOURCE)
    assert profile.edge_count("main", "mid") == 3
    assert profile.edge_count("mid", "leaf") == 12
    assert profile.edge_count("main", "leaf") == 0


def test_stub_edge_filtered():
    profile = profile_of(SOURCE)
    assert all(caller != "<stub>" for caller, _ in profile.call_edges)


def test_profile_feeds_analyzer_configs():
    from repro.analyzer.options import AnalyzerOptions

    profile = profile_of(SOURCE)
    options_b = AnalyzerOptions.config("B", profile)
    assert options_b.profile is profile
    options_f = AnalyzerOptions.config("F", profile)
    assert options_f.global_promotion == "webs"
