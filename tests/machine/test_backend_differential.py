"""Cross-backend differential suite.

The compiled (threaded-code) backend must be observationally
indistinguishable from the reference interpreter: bit-identical
:class:`ExecutionStats` — cycles, instructions, memref/singleton
splits, save/restore, call counts and edges, per-procedure
attribution, output, exit code — and the same exception with the same
message at the same instruction boundary.  The matrix here is the full
workload suite under every analyzer configuration A-F (plus the
level-2 baseline), seeded fuzz programs, cycle-limit boundaries, and a
convention-violating executable.  See ``docs/SIMULATOR.md``.
"""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    collect_profile,
    compile_program,
    compile_with_database,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.machine.simulator import (
    BACKENDS,
    DEFAULT_BACKEND,
    ConventionViolation,
    ExecutionLimitExceeded,
    MachineError,
    Simulator,
    resolve_backend,
)
from repro.target import isa
from repro.verify.progen import generate_fuzz_program
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
CONFIGS = [None, "A", "B", "C", "D", "E", "F"]
FUZZ_SEEDS = range(12)
FUZZ_MAX_CYCLES = 200_000


def _stats_key(stats):
    """Every observable field of :class:`ExecutionStats`."""
    return (
        stats.cycles,
        stats.instructions,
        stats.loads,
        stats.stores,
        stats.singleton_loads,
        stats.singleton_stores,
        stats.save_restore_executed,
        dict(stats.call_counts),
        dict(stats.call_edges),
        repr(stats.per_procedure),
        stats.output,
        stats.exit_code,
    )


def _outcome(executable, max_cycles, backend, **kwargs):
    """Run to a comparable value: stats on success, else the exact
    exception class and message."""
    try:
        stats = Simulator(executable, backend=backend, **kwargs).run(
            max_cycles
        )
        return ("stats", _stats_key(stats))
    except ExecutionLimitExceeded as exc:
        return ("limit", str(exc))
    except ConventionViolation as exc:
        return ("convention", str(exc))
    except MachineError as exc:
        return ("fault", str(exc))


def assert_backends_agree(executable, max_cycles, **kwargs):
    reference = _outcome(executable, max_cycles, "reference", **kwargs)
    compiled = _outcome(executable, max_cycles, "compiled", **kwargs)
    assert compiled == reference
    return reference


# ----------------------------------------------------------------------
# Workload matrix: every workload x {baseline, A-F}.

_PHASE1 = {}
_PROFILES = {}


def _workload_phase1(name):
    if name not in _PHASE1:
        _PHASE1[name] = run_phase1(WORKLOADS[name].sources)
    return _PHASE1[name]


def _workload_profile(name):
    if name not in _PROFILES:
        workload = WORKLOADS[name]
        _PROFILES[name] = collect_profile(
            _workload_phase1(name), max_cycles=workload.max_cycles
        )
    return _PROFILES[name]


def _database(name, config):
    if config is None:
        return ProgramDatabase()
    phase1 = _workload_phase1(name)
    profile = _workload_profile(name) if config in "BF" else None
    return analyze_program(
        [result.summary for result in phase1],
        AnalyzerOptions.config(config, profile),
    )


@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: c or "baseline")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_matrix_bit_identical(name, config):
    workload = WORKLOADS[name]
    database = _database(name, config)
    executable = compile_with_database(_workload_phase1(name), database)
    outcome = assert_backends_agree(executable, workload.max_cycles)
    assert outcome[0] == "stats"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_per_procedure_attribution_identical(name):
    workload = WORKLOADS[name]
    executable = compile_with_database(
        _workload_phase1(name), ProgramDatabase()
    )
    outcome = assert_backends_agree(
        executable, workload.max_cycles, procedure_stats=True
    )
    assert outcome[0] == "stats"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_convention_checking_identical(name):
    workload = WORKLOADS[name]
    database = _database(name, "C")
    executable = compile_with_database(_workload_phase1(name), database)
    outcome = assert_backends_agree(
        executable,
        workload.max_cycles,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    )
    assert outcome[0] == "stats"


# ----------------------------------------------------------------------
# Seeded fuzz programs.

@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_program_bit_identical(seed):
    sources = generate_fuzz_program(seed)
    executable = compile_program(sources).executable
    for kwargs in ({}, {"procedure_stats": True},
                   {"check_conventions": True}):
        assert_backends_agree(executable, FUZZ_MAX_CYCLES, **kwargs)


# ----------------------------------------------------------------------
# Cycle-limit boundaries: ExecutionLimitExceeded must fire at the same
# instruction boundary, and runs that just fit must complete on both.

def test_limit_boundary_identical():
    result = compile_program({"m": """
        int work(int n) {
          int i;
          int s = 0;
          for (i = 0; i < n; i++) s = s + i * i;
          return s;
        }
        int main() { print(work(40)); return work(9) & 255; }
    """})
    executable = result.executable
    total = Simulator(executable, backend="reference").run().cycles
    saw_limit = saw_stats = False
    limits = (list(range(1, 48))
              + [total // 2, total - 1, total, total + 1])
    for limit in limits:
        outcome = assert_backends_agree(executable, limit)
        if outcome[0] == "limit":
            saw_limit = True
        else:
            saw_stats = True
    assert saw_limit and saw_stats


# ----------------------------------------------------------------------
# Convention violations: same exception, same message, both backends.

def test_convention_violation_identical():
    result = compile_program({"m": """
        int helper(int x) { return x + 1; }
        int main() { return helper(1); }
    """})
    executable = result.executable
    start = executable.function_entries["helper"]
    executable.instructions[start] = isa.LDI(20, 12345)
    outcome = assert_backends_agree(
        executable, 200_000_000, check_conventions=True
    )
    assert outcome[0] == "convention"
    assert "r20" in outcome[1]


# ----------------------------------------------------------------------
# Backend selection plumbing.

def test_default_backend_is_compiled():
    assert DEFAULT_BACKEND == "compiled"
    assert set(BACKENDS) == {"compiled", "reference"}


def test_resolve_backend_prefers_explicit_name(monkeypatch):
    monkeypatch.setenv("REPRO_SIM", "compiled")
    assert resolve_backend("reference") == "reference"


def test_resolve_backend_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SIM", "reference")
    assert resolve_backend() == "reference"
    result = compile_program({"m": "int main() { return 3; }"})
    assert Simulator(result.executable).backend == "reference"
    monkeypatch.delenv("REPRO_SIM")
    assert resolve_backend() == DEFAULT_BACKEND


def test_unknown_backend_rejected(monkeypatch):
    with pytest.raises(ValueError, match="unknown simulator backend"):
        resolve_backend("turbo")
    monkeypatch.setenv("REPRO_SIM", "bogus")
    with pytest.raises(ValueError, match="unknown simulator backend"):
        resolve_backend()
