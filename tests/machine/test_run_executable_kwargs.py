"""Regression tests: ``run_executable`` threads every Simulator kwarg.

The convenience wrapper once accepted ``check_conventions``,
``volatile_registers``, and ``procedure_stats`` but silently dropped
them on the floor, so callers on the convenience path
(``obs/report.py``, ``driver/pipeline.py``) could not enable
convention checking.  Each test here proves one kwarg observably
reaches the simulator.
"""

import pytest

from repro import (
    AnalyzerOptions,
    compile_program,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.driver.pipeline import collect_profile, compile_with_database
from repro.machine.simulator import (
    ConventionViolation,
    CostModel,
    MachineError,
)
from repro.target import isa


def _corrupted_executable():
    """A program whose callee smashes callee-saves r20 — only a
    convention-checking run can tell."""
    result = compile_program({"m": """
        int helper(int x) { return x + 1; }
        int main() { return helper(1); }
    """})
    executable = result.executable
    start = executable.function_entries["helper"]
    executable.instructions[start] = isa.LDI(20, 12345)
    return executable


def test_check_conventions_is_threaded():
    executable = _corrupted_executable()
    # Without checking the corruption goes unnoticed...
    run_executable(executable)
    # ...with it, the violation must surface through the wrapper.
    with pytest.raises(ConventionViolation, match="r20"):
        run_executable(executable, check_conventions=True)


def test_volatile_registers_are_threaded():
    """Config-E blanket promotion parks globals in registers the
    checker would flag unless the database's volatile set is passed."""
    phase1 = run_phase1({"m": """
        int g;
        int bump() { g = g + 1; return g; }
        int main() {
          int i;
          for (i = 0; i < 5; i++) bump();
          print(g);
          return 0;
        }
    """})
    database = analyze_program(
        [result.summary for result in phase1],
        AnalyzerOptions.config("E"),
    )
    volatile = database.convention_volatile_registers()
    assert volatile, "config E must promote at least one global"
    executable = compile_with_database(phase1, database)
    stats = run_executable(
        executable,
        check_conventions=True,
        volatile_registers=volatile,
    )
    assert stats.output == "5\n"
    with pytest.raises(ConventionViolation):
        run_executable(executable, check_conventions=True)


def test_procedure_stats_is_threaded():
    result = compile_program({"m": """
        int helper(int x) { return x * 2; }
        int main() { return helper(21); }
    """})
    attributed = run_executable(result.executable, procedure_stats=True)
    assert attributed.per_procedure
    assert "helper" in attributed.per_procedure
    plain = run_executable(result.executable, procedure_stats=False)
    assert not plain.per_procedure


def test_cost_model_is_threaded():
    result = compile_program(
        {"m": "int main() { int a = 6; int b = 2; return a * b / b; }"},
        0,
    )
    cheap = run_executable(result.executable)
    costly = run_executable(
        result.executable, cost_model=CostModel(mul=8, div=30)
    )
    assert costly.cycles > cheap.cycles
    assert costly.instructions == cheap.instructions


def test_memory_words_is_threaded():
    result = compile_program(
        {"m": "int main() { int *p = 100000; return *p; }"}
    )
    assert run_executable(result.executable).exit_code == 0
    with pytest.raises(MachineError, match="load"):
        run_executable(result.executable, memory_words=1 << 10)


def test_backend_is_threaded():
    result = compile_program({"m": """
        int main() { int i; int s = 0;
          for (i = 0; i < 9; i++) s = s + i;
          print(s); return s & 255; }
    """})
    reference = run_executable(result.executable, backend="reference")
    compiled = run_executable(result.executable, backend="compiled")
    assert reference.cycles == compiled.cycles
    assert reference.output == compiled.output
    with pytest.raises(ValueError, match="unknown simulator backend"):
        run_executable(result.executable, backend="turbo")


def test_collect_profile_backend_is_threaded():
    phase1 = run_phase1({"m": """
        int helper(int x) { return x + 1; }
        int main() { return helper(helper(1)); }
    """})
    reference = collect_profile(phase1, backend="reference")
    compiled = collect_profile(phase1, backend="compiled")
    assert reference.call_counts == compiled.call_counts
    with pytest.raises(ValueError, match="unknown simulator backend"):
        collect_profile(phase1, backend="turbo")
