"""Calling-convention checker tests.

``Simulator(check_conventions=True)`` verifies at every return that the
callee preserved every register outside the call's declared clobber set.
It validates the analyzer's directives against real execution — and must
stay quiet on correct code.
"""

import pytest

from repro import (
    AnalyzerOptions,
    ProgramDatabase,
    compile_program,
    compile_with_database,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.machine.simulator import ConventionViolation, Simulator
from repro.target import isa
from repro.target.registers import RP
from repro.workloads import get_workload


def test_clean_program_passes():
    result = compile_program(
        {"m": """
            int helper(int x) { return x * 2; }
            int main() { print(helper(21)); return 0; }
        """}
    )
    stats = Simulator(result.executable, check_conventions=True).run()
    assert stats.output == "42\n"


def test_violation_detected_on_corrupted_code():
    """Manually corrupt a callee to smash a callee-saves register."""
    result = compile_program(
        {"m": """
            int helper(int x) { return x + 1; }
            int main() { return helper(1); }
        """}
    )
    exe = result.executable
    start = exe.function_entries["helper"]
    # Inject a write to r20 (callee-saves, not in any clobber set) at
    # the top of helper.
    exe.instructions[start] = isa.LDI(20, 12345)
    with pytest.raises(ConventionViolation, match="r20"):
        Simulator(exe, check_conventions=True).run()


def test_promoted_registers_exempted():
    sources = {
        "m": """
            int g;
            int bump() { g = g + 1; return g; }
            int main() {
              int i;
              for (i = 0; i < 5; i++) bump();
              print(g);
              return 0;
            }
        """
    }
    phase1 = run_phase1(sources)
    database = analyze_program(
        [r.summary for r in phase1], AnalyzerOptions.config("C")
    )
    exe = compile_with_database(phase1, database)
    stats = Simulator(
        exe,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run()
    assert stats.output == "5\n"


@pytest.mark.parametrize("config", ["A", "C", "D", "E"])
def test_workload_respects_conventions(config):
    workload = get_workload("fgrep")
    phase1 = run_phase1(workload.sources)
    database = analyze_program(
        [r.summary for r in phase1], AnalyzerOptions.config(config)
    )
    exe = compile_with_database(phase1, database)
    stats = Simulator(
        exe,
        check_conventions=True,
        volatile_registers=database.convention_volatile_registers(),
    ).run(workload.max_cycles)
    assert stats.output


def test_baseline_conventions_hold():
    workload = get_workload("dhrystone")
    phase1 = run_phase1(workload.sources)
    exe = compile_with_database(phase1, ProgramDatabase())
    Simulator(exe, check_conventions=True).run(workload.max_cycles)
