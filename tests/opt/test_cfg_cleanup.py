"""CFG cleanup pass tests."""

from repro.ir.function import IRFunction
from repro.ir.instructions import CJump, Jump, Move, Return
from repro.ir.values import Const
from repro.opt import cfg_cleanup


def new_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_unreachable_block_removed():
    func = new_function()
    dead = func.new_block("dead")
    dead.terminator = Return(Const(1))
    func.entry.terminator = Return(Const(0))
    assert cfg_cleanup.run(func)
    assert "dead" not in {b.label for b in func.blocks.values()}


def test_empty_forwarder_threaded():
    func = new_function()
    hop = func.new_block("hop")
    target = func.new_block("target")
    func.entry.terminator = Jump(hop.label)
    hop.terminator = Jump(target.label)
    target.terminator = Return(Const(0))
    cfg_cleanup.run(func)
    # entry now reaches target directly; everything merged into entry.
    assert isinstance(func.entry.terminator, Return)


def test_forwarder_chain_threaded():
    func = new_function()
    hops = [func.new_block(f"h{i}") for i in range(4)]
    target = func.new_block("target")
    func.entry.terminator = Jump(hops[0].label)
    for i, hop in enumerate(hops):
        next_label = hops[i + 1].label if i + 1 < len(hops) else target.label
        hop.terminator = Jump(next_label)
    target.terminator = Return(Const(0))
    cfg_cleanup.run(func)
    assert isinstance(func.entry.terminator, Return)


def test_cjump_with_identical_targets_collapsed():
    func = new_function()
    target = func.new_block("t")
    cond = func.new_temp()
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = CJump(cond, target.label, target.label)
    target.terminator = Return(Const(0))
    cfg_cleanup.run(func)
    assert isinstance(func.entry.terminator, Return) or isinstance(
        func.entry.terminator, Jump
    )
    # After collapsing + merging, only one block remains.
    assert len(func.blocks) == 1


def test_straightline_merge_preserves_instructions():
    func = new_function()
    second = func.new_block("second")
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, Const(1)))
    func.entry.terminator = Jump(second.label)
    second.append(Move(b, Const(2)))
    second.terminator = Return(b)
    cfg_cleanup.run(func)
    assert len(func.blocks) == 1
    assert len(func.entry.instructions) == 2


def test_block_with_two_predecessors_not_merged():
    func = new_function()
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    cond = func.new_temp()
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = CJump(cond, left.label, right.label)
    left.append(Move(func.new_temp(), Const(1)))
    left.terminator = Jump(join.label)
    right.append(Move(func.new_temp(), Const(2)))
    right.terminator = Jump(join.label)
    join.terminator = Return(Const(0))
    cfg_cleanup.run(func)
    assert join.label in func.blocks


def test_self_loop_not_threaded_into_infinite_recursion():
    func = new_function()
    loop = func.new_block("loop")
    func.entry.terminator = Jump(loop.label)
    loop.terminator = Jump(loop.label)
    cfg_cleanup.run(func)  # must terminate
    assert loop.label in func.blocks


def test_no_change_returns_false():
    func = new_function()
    func.entry.terminator = Return(Const(0))
    assert cfg_cleanup.run(func) is False
