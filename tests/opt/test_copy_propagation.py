"""Copy propagation pass tests."""

from repro.ir.function import IRFunction
from repro.ir.instructions import BinOp, Call, Move, Return
from repro.ir.values import Const
from repro.opt import copy_propagation


def new_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_copy_propagated_to_use():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, x))
    func.entry.append(BinOp(b, "+", a, Const(1)))
    func.entry.terminator = Return(b)
    assert copy_propagation.run(func)
    assert func.entry.instructions[1].lhs is x


def test_copy_killed_by_source_redefinition():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, x))
    func.entry.append(Move(x, Const(9)))  # x redefined
    func.entry.append(BinOp(b, "+", a, Const(1)))
    func.entry.terminator = Return(b)
    copy_propagation.run(func)
    assert func.entry.instructions[2].lhs is a  # not replaced


def test_copy_killed_by_destination_redefinition():
    func = new_function()
    x = func.new_temp("x")
    y = func.new_temp("y")
    func.params.extend([x, y])
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, x))
    func.entry.append(Move(a, y))
    func.entry.append(BinOp(b, "+", a, Const(1)))
    func.entry.terminator = Return(b)
    copy_propagation.run(func)
    assert func.entry.instructions[2].lhs is y


def test_copy_chains_propagate():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    c = func.new_temp()
    func.entry.append(Move(a, x))
    func.entry.append(Move(b, a))
    func.entry.append(BinOp(c, "*", b, b))
    func.entry.terminator = Return(c)
    copy_propagation.run(func)
    assert func.entry.instructions[2].lhs is x
    assert func.entry.instructions[2].rhs is x


def test_terminator_uses_rewritten():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    func.entry.append(Move(a, x))
    func.entry.terminator = Return(a)
    copy_propagation.run(func)
    assert func.entry.terminator.value is x


def test_copies_involving_pinned_temps_killed_at_calls():
    func = new_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 30
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, pinned))  # a = old g
    func.entry.append(Call(None, "mutator", []))
    func.entry.append(Move(b, a))
    func.entry.terminator = Return(b)
    copy_propagation.run(func)
    # "a" must NOT be replaced by pinned after the call: pinned now holds
    # the NEW g, while a deliberately holds the old value.
    assert func.entry.instructions[2].src is a


def test_no_change_reports_false():
    func = new_function()
    t = func.new_temp()
    func.entry.append(Move(t, Const(1)))
    func.entry.terminator = Return(t)
    assert copy_propagation.run(func) is False
