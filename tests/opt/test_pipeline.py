"""Optimization pipeline tests: structure and semantic preservation."""

import pytest

from repro import compile_and_run
from repro.ir import lower_source, verify_module
from repro.opt import optimize_module
from repro.testing import generate_program

SOURCE = """
int g;
extern int h(int);
int f(int n) {
  int i;
  int total = 0;
  int unused = 123 * 456;
  for (i = 0; i < n; i++) {
    total += g + g;
    g = total;
  }
  return total + 0;
}
"""


def test_pipeline_preserves_verification():
    for level in (0, 1, 2):
        module = lower_source(SOURCE, "m")
        optimize_module(module, level)
        verify_module(module)


def test_level_zero_is_identity():
    module = lower_source(SOURCE, "m")
    before = sum(
        len(b.instructions) for b in module.functions["f"].blocks.values()
    )
    optimize_module(module, 0)
    after = sum(
        len(b.instructions) for b in module.functions["f"].blocks.values()
    )
    assert before == after


def test_higher_levels_shrink_code():
    sizes = {}
    for level in (0, 1, 2):
        module = lower_source(SOURCE, "m")
        optimize_module(module, level)
        sizes[level] = sum(
            len(b.instructions)
            for b in module.functions["f"].blocks.values()
        )
    assert sizes[1] < sizes[0]
    assert sizes[2] <= sizes[1]


@pytest.mark.parametrize("seed", range(8))
def test_opt_levels_preserve_semantics(seed):
    """Differential oracle: random programs behave identically at every
    optimization level."""
    sources = generate_program(seed + 1000)
    results = set()
    for level in (0, 1, 2):
        stats = compile_and_run(sources, level, max_cycles=50_000_000)
        results.add((stats.output, stats.exit_code))
    assert len(results) == 1


def test_optimized_code_runs_faster():
    sources = generate_program(77, num_modules=2, functions_per_module=4)
    slow = compile_and_run(sources, 0, max_cycles=100_000_000)
    fast = compile_and_run(sources, 2, max_cycles=100_000_000)
    assert fast.output == slow.output
    assert fast.cycles <= slow.cycles
