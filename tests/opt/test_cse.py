"""Local CSE pass tests."""

from repro.ir.function import IRFunction
from repro.ir.instructions import (
    BinOp,
    Call,
    FrameAddr,
    FrameSlot,
    LoadAddr,
    Move,
    Return,
)
from repro.ir.values import Const
from repro.opt import cse


def new_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_repeated_binop_replaced_by_move():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    c = func.new_temp()
    func.entry.append(BinOp(a, "+", x, Const(1)))
    func.entry.append(BinOp(b, "+", x, Const(1)))
    func.entry.append(BinOp(c, "*", a, b))
    func.entry.terminator = Return(c)
    assert cse.run(func)
    second = func.entry.instructions[1]
    assert isinstance(second, Move)
    assert second.src is a


def test_different_operands_not_merged():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(BinOp(a, "+", x, Const(1)))
    func.entry.append(BinOp(b, "+", x, Const(2)))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[1], BinOp)


def test_operand_redefinition_invalidates():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(BinOp(a, "+", x, Const(1)))
    func.entry.append(Move(x, Const(5)))
    func.entry.append(BinOp(b, "+", x, Const(1)))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[2], BinOp)


def test_result_redefinition_invalidates():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(BinOp(a, "+", x, Const(1)))
    func.entry.append(Move(a, Const(5)))  # cached result gone
    func.entry.append(BinOp(b, "+", x, Const(1)))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[2], BinOp)


def test_loadaddr_deduplicated():
    func = new_function()
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(LoadAddr(a, "g"))
    func.entry.append(LoadAddr(b, "g"))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[1], Move)


def test_frameaddr_deduplicated_by_slot_identity():
    func = new_function()
    slot = func.add_frame_slot(FrameSlot("arr", 4))
    other = func.add_frame_slot(FrameSlot("arr2", 4))
    a = func.new_temp()
    b = func.new_temp()
    c = func.new_temp()
    func.entry.append(FrameAddr(a, slot))
    func.entry.append(FrameAddr(b, slot))
    func.entry.append(FrameAddr(c, other))
    func.entry.terminator = Return(c)
    cse.run(func)
    assert isinstance(func.entry.instructions[1], Move)
    assert isinstance(func.entry.instructions[2], FrameAddr)


def test_expressions_over_pinned_temps_killed_at_calls():
    func = new_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 29
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(BinOp(a, "+", pinned, Const(1)))
    func.entry.append(Call(None, "mutator", []))
    func.entry.append(BinOp(b, "+", pinned, Const(1)))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[2], BinOp)


def test_division_cse_allowed():
    func = new_function()
    x = func.new_temp("x")
    y = func.new_temp("y")
    func.params.extend([x, y])
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(BinOp(a, "/", x, y))
    func.entry.append(BinOp(b, "/", x, y))
    func.entry.terminator = Return(b)
    cse.run(func)
    assert isinstance(func.entry.instructions[1], Move)
