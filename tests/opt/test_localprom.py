"""Intraprocedural global caching (local promotion) tests."""

from repro.ir import lower_source
from repro.ir.instructions import (
    Call,
    Load,
    LoadGlobal,
    Store,
    StoreGlobal,
)
from repro.opt import localprom


def run_on(source, name="f"):
    module = lower_source(source, "m")
    func = module.functions[name]
    localprom.run(func, module)
    return module, func


def count(func, kind, symbol=None):
    total = 0
    for instr in func.iter_instructions():
        if isinstance(instr, kind):
            if symbol is None or instr.symbol == symbol:
                total += 1
    return total


def test_repeated_reads_in_block_load_once():
    _, func = run_on(
        "int g; int f() { return g + g + g; }"
    )
    assert count(func, LoadGlobal, "g") == 1


def test_store_sunk_to_block_end():
    _, func = run_on(
        "int g; int f() { g = 1; g = 2; g = 3; return 0; }"
    )
    assert count(func, StoreGlobal, "g") == 1


def test_dirty_value_flushed_before_call():
    _, func = run_on(
        """
        int g;
        extern int h();
        int f() { g = 1; h(); return 0; }
        """
    )
    block = func.entry
    store_index = next(
        i for i, ins in enumerate(block.instructions)
        if isinstance(ins, StoreGlobal)
    )
    call_index = next(
        i for i, ins in enumerate(block.instructions)
        if isinstance(ins, Call) and not ins.is_builtin
    )
    assert store_index < call_index


def test_cache_invalidated_after_call():
    _, func = run_on(
        """
        int g;
        extern int h();
        int f() { int a = g; h(); return a + g; }
        """
    )
    # g must be loaded twice: once before, once after the call.
    assert count(func, LoadGlobal, "g") == 2


def test_pointer_store_invalidates_aliasable_global():
    _, func = run_on(
        """
        int g;
        int f(int *p) { int a = g; *p = 5; return a + g; }
        """
    )
    assert count(func, LoadGlobal, "g") == 2


def test_pointer_load_does_not_invalidate_clean_cache():
    _, func = run_on(
        """
        int g;
        int f(int *p) { int a = g; int b = *p; return a + g + b; }
        """
    )
    assert count(func, LoadGlobal, "g") == 1


def test_pointer_load_forces_writeback_of_dirty_value():
    _, func = run_on(
        """
        int g;
        int f(int *p) { g = 7; return *p + g; }
        """
    )
    block = func.entry
    store_index = next(
        i for i, ins in enumerate(block.instructions)
        if isinstance(ins, StoreGlobal)
    )
    load_index = next(
        i for i, ins in enumerate(block.instructions)
        if isinstance(ins, Load)
    )
    assert store_index < load_index


def test_static_unaliased_global_survives_pointer_store():
    _, func = run_on(
        """
        static int s;
        int f(int *p) { int a = s; *p = 5; return a + s; }
        """
    )
    assert count(func, LoadGlobal, "m.s") == 1


def test_extern_global_treated_conservatively():
    _, func = run_on(
        """
        extern int g;
        int f(int *p) { int a = g; *p = 5; return a + g; }
        """
    )
    assert count(func, LoadGlobal, "g") == 2
