"""Constant folding/propagation pass tests."""

from repro.ir import lower_source
from repro.ir.function import IRFunction
from repro.ir.instructions import BinOp, Call, CJump, Jump, Move, Return, UnOp
from repro.ir.values import Const, Temp
from repro.opt import constant_folding


def fold(func):
    constant_folding.run(func)
    return func


def new_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_binop_on_constants_folds():
    func = new_function()
    t = func.new_temp()
    func.entry.append(BinOp(t, "+", Const(2), Const(3)))
    func.entry.terminator = Return(t)
    fold(func)
    (instr,) = func.entry.instructions
    assert isinstance(instr, Move)
    assert instr.src == Const(5)


def test_constant_propagates_through_moves():
    func = new_function()
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, Const(4)))
    func.entry.append(BinOp(b, "*", a, Const(3)))
    func.entry.terminator = Return(b)
    fold(func)
    assert isinstance(func.entry.instructions[1], Move)
    assert func.entry.instructions[1].src == Const(12)


def test_division_by_zero_not_folded():
    func = new_function()
    t = func.new_temp()
    func.entry.append(BinOp(t, "/", Const(1), Const(0)))
    func.entry.terminator = Return(t)
    fold(func)
    assert isinstance(func.entry.instructions[0], BinOp)


def test_unop_folds():
    func = new_function()
    t = func.new_temp()
    func.entry.append(UnOp(t, "-", Const(7)))
    func.entry.terminator = Return(t)
    fold(func)
    assert func.entry.instructions[0].src == Const(-7)


def test_algebraic_identities():
    cases = [
        ("+", 0, lambda i: isinstance(i, Move) and isinstance(i.src, Temp)),
        ("*", 1, lambda i: isinstance(i, Move) and isinstance(i.src, Temp)),
        ("*", 0, lambda i: isinstance(i, Move) and i.src == Const(0)),
        ("&", 0, lambda i: isinstance(i, Move) and i.src == Const(0)),
        ("-", 0, lambda i: isinstance(i, Move) and isinstance(i.src, Temp)),
    ]
    for op, const, check in cases:
        func = new_function()
        x = func.new_temp("x")
        func.params.append(x)
        t = func.new_temp()
        func.entry.append(BinOp(t, op, x, Const(const)))
        func.entry.terminator = Return(t)
        fold(func)
        assert check(func.entry.instructions[0]), (op, const)


def test_same_operand_identities():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    t = func.new_temp()
    func.entry.append(BinOp(t, "-", x, x))
    func.entry.terminator = Return(t)
    fold(func)
    assert func.entry.instructions[0].src == Const(0)


def test_commutative_constant_canonicalized_right():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    t = func.new_temp()
    func.entry.append(BinOp(t, "+", Const(5), x))
    func.entry.terminator = Return(t)
    fold(func)
    instr = func.entry.instructions[0]
    assert isinstance(instr, BinOp)
    assert instr.rhs == Const(5)


def test_constant_condition_becomes_jump():
    func = new_function()
    then_block = func.new_block("then")
    else_block = func.new_block("else")
    cond = func.new_temp()
    func.entry.append(Move(cond, Const(1)))
    func.entry.terminator = CJump(cond, then_block.label, else_block.label)
    then_block.terminator = Return(Const(1))
    else_block.terminator = Return(Const(2))
    fold(func)
    assert isinstance(func.entry.terminator, Jump)
    assert func.entry.terminator.target == then_block.label


def test_redefinition_invalidates_constant():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    a = func.new_temp()
    b = func.new_temp()
    func.entry.append(Move(a, Const(1)))
    func.entry.append(Move(a, x))  # a no longer constant
    func.entry.append(BinOp(b, "+", a, Const(0)))
    func.entry.terminator = Return(b)
    fold(func)
    final = func.entry.instructions[2]
    assert isinstance(final, Move)
    assert final.src is a


def test_pinned_temp_constant_killed_by_call():
    func = new_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    t = func.new_temp()
    func.entry.append(Move(pinned, Const(10)))
    func.entry.append(Call(None, "other", []))
    func.entry.append(BinOp(t, "+", pinned, Const(1)))
    func.entry.terminator = Return(t)
    fold(func)
    final = func.entry.instructions[2]
    # Must NOT fold to 11: the callee may have changed the register.
    assert isinstance(final, BinOp)
    assert final.lhs is pinned


def test_end_to_end_source_folding():
    module = lower_source(
        "int f() { int a = 2 + 3 * 4; return a - 14; }", "m"
    )
    constant_folding.run(module.functions["f"])
    returns = [
        b.terminator for b in module.functions["f"].blocks.values()
    ]
    # After folding + the builder's own folding, everything is constant.
    assert any(isinstance(t, Return) for t in returns)
