"""Dead code elimination tests."""

from repro.ir.function import IRFunction
from repro.ir.instructions import (
    BinOp,
    Call,
    Jump,
    Load,
    Move,
    Return,
    Store,
    StoreGlobal,
)
from repro.ir.values import Const
from repro.opt import dce


def new_function():
    func = IRFunction("f")
    func.add_entry_block()
    return func


def test_unused_pure_computation_removed():
    func = new_function()
    dead = func.new_temp()
    live = func.new_temp()
    func.entry.append(BinOp(dead, "+", Const(1), Const(2)))
    func.entry.append(Move(live, Const(3)))
    func.entry.terminator = Return(live)
    assert dce.run(func)
    assert len(func.entry.instructions) == 1


def test_chain_of_dead_code_removed():
    func = new_function()
    a = func.new_temp()
    b = func.new_temp()
    c = func.new_temp()
    func.entry.append(Move(a, Const(1)))
    func.entry.append(BinOp(b, "+", a, Const(2)))
    func.entry.append(BinOp(c, "*", b, b))  # c unused
    func.entry.terminator = Return(Const(0))
    dce.run(func)
    assert func.entry.instructions == []


def test_side_effecting_instructions_kept():
    func = new_function()
    dead = func.new_temp()
    addr = func.new_temp()
    func.entry.append(Move(addr, Const(2000)))
    func.entry.append(Load(dead, addr))  # result unused, but may fault
    func.entry.append(Store(addr, Const(1)))
    func.entry.append(StoreGlobal("g", Const(2)))
    func.entry.append(Call(dead, "h", []))
    func.entry.terminator = Return(None)
    dce.run(func)
    kinds = [type(i).__name__ for i in func.entry.instructions]
    assert kinds == ["Move", "Load", "Store", "StoreGlobal", "Call"]


def test_division_with_nonzero_constant_divisor_removable():
    func = new_function()
    dead = func.new_temp()
    func.entry.append(BinOp(dead, "/", Const(10), Const(2)))
    func.entry.terminator = Return(Const(0))
    dce.run(func)
    assert func.entry.instructions == []


def test_division_by_possibly_zero_kept():
    func = new_function()
    x = func.new_temp("x")
    func.params.append(x)
    dead = func.new_temp()
    func.entry.append(BinOp(dead, "/", Const(10), x))
    func.entry.terminator = Return(Const(0))
    dce.run(func)
    assert len(func.entry.instructions) == 1


def test_value_live_across_blocks_kept():
    func = new_function()
    t = func.new_temp()
    exit_block = func.new_block("exit")
    func.entry.append(Move(t, Const(42)))
    func.entry.terminator = Jump(exit_block.label)
    exit_block.terminator = Return(t)
    dce.run(func)
    assert len(func.entry.instructions) == 1


def test_write_to_pinned_temp_before_return_kept():
    func = new_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    func.entry.append(Move(pinned, Const(7)))
    func.entry.terminator = Return(None)
    dce.run(func)
    # The register value IS the global; it is observable by the caller.
    assert len(func.entry.instructions) == 1


def test_write_to_pinned_temp_before_call_kept():
    func = new_function()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    func.entry.append(Move(pinned, Const(7)))
    func.entry.append(Call(None, "reader", []))
    func.entry.append(Move(pinned, Const(9)))
    func.entry.terminator = Return(None)
    dce.run(func)
    # Both writes observable: by the callee and by the caller.
    moves = [i for i in func.entry.instructions if isinstance(i, Move)]
    assert len(moves) == 2


def test_unpinned_overwritten_value_removed():
    func = new_function()
    t = func.new_temp()
    func.entry.append(Move(t, Const(7)))
    func.entry.append(Move(t, Const(9)))
    func.entry.terminator = Return(t)
    dce.run(func)
    assert len(func.entry.instructions) == 1
    assert func.entry.instructions[0].src == Const(9)
