"""Linker tests: symbol resolution, layout, relocation."""

import pytest

from repro.analyzer.database import ProgramDatabase
from repro.backend.phase2 import compile_module_phase2
from repro.frontend.phase1 import compile_module_phase1
from repro.linker.link import DATA_BASE, LinkError, link
from repro.target import isa


def compile_objects(modules, opt_level=2):
    database = ProgramDatabase()
    objects = []
    for name, source in modules.items():
        result = compile_module_phase1(source, name, opt_level)
        objects.append(
            compile_module_phase2(result.ir_module, database, opt_level)
        )
    return objects


def test_single_module_links():
    (obj,) = compile_objects({"m": "int main() { return 0; }"})
    exe = link([obj])
    assert "main" in exe.function_entries
    assert exe.entry_pc == 0
    assert isinstance(exe.instructions[0], isa.BL)
    assert exe.instructions[0].callee == "main"
    assert isinstance(exe.instructions[1], isa.HALT)


def test_cross_module_symbols_resolve():
    objects = compile_objects({
        "a": "int helper(int x) { return x * 2; }\nint g = 5;",
        "b": (
            "extern int helper(int);\nextern int g;\n"
            "int main() { return helper(g); }"
        ),
    })
    exe = link(objects)
    assert "helper" in exe.function_entries
    assert "g" in exe.global_addresses
    assert exe.global_addresses["g"] >= DATA_BASE


def test_duplicate_global_rejected():
    objects = compile_objects({
        "a": "int g; int main() { return g; }",
        "b": "int g;",
    })
    with pytest.raises(LinkError, match="duplicate"):
        link(objects)


def test_duplicate_function_rejected():
    objects = compile_objects({
        "a": "int f() { return 1; } int main() { return f(); }",
        "b": "int f() { return 2; }",
    })
    with pytest.raises(LinkError, match="duplicate"):
        link(objects)


def test_identically_named_statics_coexist():
    objects = compile_objects({
        "a": "static int s = 1; int get_a() { return s; }",
        "b": (
            "static int s = 2;\nextern int get_a();\n"
            "int main() { return get_a() + s; }"
        ),
    })
    exe = link(objects)
    assert "a.s" in exe.global_addresses
    assert "b.s" in exe.global_addresses


def test_undefined_global_rejected():
    objects = compile_objects({
        "a": "extern int missing; int main() { return missing; }",
    })
    with pytest.raises(LinkError, match="undefined global"):
        link(objects)


def test_undefined_function_rejected():
    objects = compile_objects({
        "a": "extern int missing(int); int main() { return missing(1); }",
    })
    with pytest.raises(LinkError, match="undefined function"):
        link(objects)


def test_missing_entry_point_rejected():
    objects = compile_objects({"a": "int f() { return 0; }"})
    with pytest.raises(LinkError, match="entry"):
        link(objects)


def test_data_layout_sequential_with_initializers():
    objects = compile_objects({
        "m": (
            "int a = 7;\nint arr[3] = {1, 2};\nint z;\n"
            "int main() { return a + arr[0] + z; }"
        ),
    })
    exe = link(objects)
    address_a = exe.global_addresses["a"]
    address_arr = exe.global_addresses["arr"]
    words = exe.data_words
    assert words[address_a - DATA_BASE] == 7
    assert words[address_arr - DATA_BASE: address_arr - DATA_BASE + 3] == [
        1, 2, 0,
    ]
    total = sum(v.size_words for v in exe.globals_by_name.values())
    assert len(words) == total


def test_branches_rebased_into_function_ranges():
    objects = compile_objects({
        "m": (
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 3; i++) s += i; return s; }"
        ),
    })
    exe = link(objects)
    start = exe.function_entries["main"]
    for instruction in exe.instructions[start:]:
        if isinstance(instruction, (isa.B, isa.BC)):
            assert start <= instruction.target < len(exe.instructions)


def test_lda_resolution_function_vs_data():
    objects = compile_objects({
        "m": (
            "int g;\nint target(int x) { return x; }\n"
            "int main() { int *p = &target; int *q = &g;"
            " *q = 3; return p(g); }"
        ),
    })
    exe = link(objects)
    ldas = [
        i for i in exe.instructions if isinstance(i, isa.LDA)
    ]
    for lda in ldas:
        if lda.is_function:
            assert lda.resolved == exe.function_entries[lda.symbol]
        else:
            assert lda.resolved == exe.global_addresses[lda.symbol]


def test_function_at_maps_pc_to_name():
    objects = compile_objects({
        "m": (
            "int f() { return 1; }\n"
            "int main() { return f(); }"
        ),
    })
    exe = link(objects)
    for name, start in exe.function_entries.items():
        assert exe.function_at(start) == name
    assert exe.function_at(0) == "<stub>"


def test_linking_is_repeatable():
    objects = compile_objects({"m": "int main() { return 3; }"})
    exe1 = link(objects)
    exe2 = link(objects)
    # The linker must not mutate its inputs: both images identical.
    assert len(exe1.instructions) == len(exe2.instructions)
    for a, b in zip(exe1.instructions, exe2.instructions):
        assert repr(a) == repr(b)
