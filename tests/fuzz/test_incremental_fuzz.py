"""Churn fuzzing: executables built from incrementally-analyzed
databases audit clean.

A seeded fuzz program is mutated step by step while an incremental
scheduler recompiles it; every link runs the post-link auditor
(``verify=True``), so each incrementally patched database must produce
directives the generated code actually honors.  Mutants are analyzed,
built, and audited — never executed: call-edge mutations may create
runtime recursion (:meth:`FuzzProgramGenerator.mutate`).
"""

import pytest

from repro import AnalyzerOptions
from repro.driver.scheduler import CompilationScheduler
from repro.verify.progen import FuzzProgramGenerator

STEPS = 8
SEEDS = (1, 4)


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    with CompilationScheduler(
        jobs=2,
        cache_dir=tmp_path_factory.mktemp("churn-cache"),
        verify=True,
        incremental=True,
    ) as sched:
        yield sched


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("config", ["C", "D"])
def test_churned_programs_build_and_audit_clean(seed, config, scheduler):
    generator = FuzzProgramGenerator(seed)
    sources = generator.generate()
    options = AnalyzerOptions.config(config)
    incremental_steps = 0

    for step in range(STEPS + 1):
        if step:
            sources = generator.mutate(sources, step)
        result = scheduler.compile_program(
            sources, analyzer_options=options
        )
        assert result.executable is not None, (seed, config, step)

        audit = scheduler.last_audit_report
        assert audit is not None and audit.ok, (
            seed, config, step, audit and audit.format()
        )
        assert audit.functions_checked == len(
            result.executable.function_ranges
        )

        report = scheduler.last_invalidation_report
        assert report is not None
        if report.mode == "incremental":
            incremental_steps += 1
        assert result.metrics.analyze.get("runs") == 1

    # The chain must exercise the incremental path, not fall back
    # from scratch on every edit.
    assert incremental_steps > STEPS // 2, (seed, config)
