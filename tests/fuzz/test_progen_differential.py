"""Seeded differential fuzzing of the allocation machinery.

Every seed drives an allocator-hostile random program (register
pressure across calls, hot-global loops, multi-argument helpers —
:mod:`repro.verify.progen`) through the scheduler across analyzer
configurations with the post-link auditor enabled, and asserts

* the auditor finds **zero** directive violations (a violation raises
  :class:`~repro.verify.auditor.AuditError` out of the scheduler and
  additionally fails the report assertion below), and
* execution output and exit code are identical to configuration A's —
  the directive machinery may only change *where* values live, never
  what the program computes.

Configs B and F need a profiling run, so only a couple of seeds pay for
one; the others sweep the unprofiled configurations.  Seeds are fixed:
the suite is deterministic and sized for the tier-1 budget by default.
``REPRO_FUZZ_SEEDS`` widens the sweep — CI's verify-fuzz step runs 100
seeds, affordable now that the compiled simulator backend executes the
run-and-compare leg >=5x faster (docs/SIMULATOR.md).
"""

import os

import pytest

from repro import (
    AnalyzerOptions,
    collect_profile,
    compile_with_database,
    run_executable,
    run_phase1,
)
from repro.analyzer.driver import analyze_program
from repro.driver.scheduler import CompilationScheduler
from repro.verify.progen import generate_fuzz_program

MAX_CYCLES = 60_000_000

SEEDS = range(int(os.environ.get("REPRO_FUZZ_SEEDS", "10")))
PROFILE_SEEDS = {0, 7}


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    """Parallel workers + warm cache + post-link auditing: the
    configuration under test is the one real runs use."""
    with CompilationScheduler(
        jobs=2,
        cache_dir=tmp_path_factory.mktemp("fuzz-cache"),
        verify=True,
    ) as sched:
        yield sched


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_program_audits_clean_across_configs(seed, scheduler):
    sources = generate_fuzz_program(seed)
    phase1 = run_phase1(sources, scheduler=scheduler)
    summaries = [result.summary for result in phase1]

    if seed in PROFILE_SEEDS:
        profile = collect_profile(
            phase1, max_cycles=MAX_CYCLES, scheduler=scheduler
        )
        configs = "ABCDEF"
    else:
        profile = None
        configs = "ACDE"

    reference = None
    for config in configs:
        database = analyze_program(
            summaries,
            AnalyzerOptions.config(
                config, profile if config in "BF" else None
            ),
        )
        executable = compile_with_database(
            phase1, database, scheduler=scheduler
        )
        report = scheduler.last_audit_report
        assert report is not None and report.ok, (
            config, report and report.format()
        )
        assert report.functions_checked == len(executable.function_ranges)
        stats = run_executable(executable, max_cycles=MAX_CYCLES)
        observed = (tuple(stats.output), stats.exit_code)
        if reference is None:
            reference = observed  # config A sets the oracle
        else:
            assert observed == reference, (seed, config)


def test_fuzz_generator_is_deterministic():
    assert generate_fuzz_program(3) == generate_fuzz_program(3)
    assert generate_fuzz_program(3) != generate_fuzz_program(4)


def test_fuzz_programs_vary_in_shape():
    """The seed must steer program shape, or the sweep tests one
    program ten times."""
    shapes = {
        tuple(sorted(generate_fuzz_program(seed))) for seed in SEEDS
    }
    assert len(shapes) > 1
