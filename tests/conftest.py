"""Suite-wide defaults.

The incremental analyzer's debug cross-check — every
:meth:`~repro.incremental.engine.IncrementalAnalyzer.update` shadowed
by a from-scratch analysis, any divergence raised as
:class:`~repro.incremental.engine.IncrementalMismatchError` — is
always on under the test suite: correctness of the patched database is
non-negotiable, so every test that touches the incremental path pays
for the proof.
"""

import os

os.environ.setdefault("REPRO_INCREMENTAL_CHECK", "1")
