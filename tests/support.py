"""Shared helpers for building synthetic call graphs in tests."""

from repro.callgraph.graph import CallGraph
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)


def build_graph(procs, globals_=(), module="m"):
    """Build a call graph from a compact spec.

    Args:
        procs: mapping ``name -> spec`` where spec is a dict with optional
            keys ``calls`` ({callee: freq}), ``refs`` ({global: freq}),
            ``stores`` ({global: freq}), ``need`` (callee-saves estimate).
        globals_: names of (eligible) global variables.

    Returns:
        (CallGraph with normalized weights, ModuleSummary)
    """
    summary = ModuleSummary(module_name=module)
    for name, spec in procs.items():
        summary.procedures.append(
            ProcedureSummary(
                name=name,
                module=module,
                calls=dict(spec.get("calls", {})),
                global_refs=dict(spec.get("refs", {})),
                global_stores=dict(spec.get("stores", {})),
                callee_saves_needed=spec.get("need", 0),
                makes_indirect_calls=spec.get("indirect", False),
                address_taken_procs=list(spec.get("address_taken", [])),
            )
        )
    summary.globals = [
        GlobalSummary(name=g, module=module) for g in globals_
    ]
    graph = CallGraph.build([summary])
    graph.normalize_weights()
    return graph, summary


FIGURE3_PROCS = {
    "A": {"calls": {"B": 1, "C": 1}, "refs": {"g3": 10},
          "stores": {"g3": 5}},
    "B": {"calls": {"D": 1, "E": 1}, "refs": {"g1": 10, "g3": 10},
          "stores": {"g1": 5, "g3": 5}},
    "C": {"calls": {"F": 1, "G": 1}, "refs": {"g2": 10, "g3": 10},
          "stores": {"g2": 5, "g3": 5}},
    "D": {"refs": {"g1": 10}, "stores": {"g1": 5}},
    "E": {"refs": {"g1": 10, "g2": 10}, "stores": {"g1": 5, "g2": 5}},
    "F": {"calls": {"H": 1}, "refs": {"g2": 10}, "stores": {"g2": 5}},
    "G": {"calls": {"H": 1}, "refs": {"g2": 10}, "stores": {"g2": 5}},
    "H": {},
}

FIGURE3_GLOBALS = ("g1", "g2", "g3")


def figure3_graph():
    """The paper's Figure 3 example call graph."""
    return build_graph(FIGURE3_PROCS, FIGURE3_GLOBALS)
