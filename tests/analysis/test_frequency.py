"""Usage frequency and register-need estimation tests."""

from repro.analysis.frequency import (
    analyze_function_usage,
    block_weight,
    estimate_callee_saves_need,
)
from repro.ir import lower_source
from repro.opt import optimize_module


def usage_of(source, name="f", opt_level=0):
    module = lower_source(source, "m")
    if opt_level:
        optimize_module(module, opt_level)
    return analyze_function_usage(module.functions[name])


def test_block_weight_exponential():
    assert block_weight(0) == 1
    assert block_weight(1) == 10
    assert block_weight(2) == 100
    assert block_weight(99) == block_weight(6)  # capped


def test_global_refs_counted_with_loop_weight():
    usage = usage_of(
        """
        int g;
        int f(int n) {
          int i;
          g = 1;
          for (i = 0; i < n; i++) g = g + 1;
          return g;
        }
        """
    )
    # One store at depth 0, plus a load+store at depth 1, plus final load.
    assert usage.global_refs["g"] >= 21
    assert usage.global_stores["g"] >= 11


def test_call_frequency_weighted():
    usage = usage_of(
        """
        extern int h(int);
        int f(int n) {
          int i;
          int s = h(0);
          for (i = 0; i < n; i++) s += h(i);
          return s;
        }
        """
    )
    assert usage.calls["h"] == 11


def test_builtin_calls_not_counted():
    usage = usage_of("int f() { print(1); return 0; }")
    assert not usage.calls


def test_indirect_call_flags():
    usage = usage_of(
        """
        int h(int x) { return x; }
        int f() { int *p = &h; return p(1); }
        """
    )
    assert usage.makes_indirect_calls
    assert usage.indirect_call_freq >= 1
    assert usage.address_taken_functions == {"h"}


def test_leaf_needs_no_callee_saves():
    usage = usage_of("int f(int a, int b) { return a * b + 1; }")
    assert usage.callee_saves_needed == 0


def test_value_live_across_call_needs_callee_saves():
    usage = usage_of(
        """
        extern int h(int);
        int f(int a) {
          int x = a * 3;
          int y = h(a);
          return x + y;
        }
        """,
        opt_level=1,
    )
    assert usage.callee_saves_needed >= 1


def test_many_values_across_call_need_many_registers():
    source_parts = ["extern int h(int);", "int f(int a) {"]
    for i in range(6):
        source_parts.append(f"  int x{i} = a * {i + 2};")
    source_parts.append("  int y = h(a);")
    total = " + ".join(f"x{i}" for i in range(6))
    source_parts.append(f"  return y + {total};")
    source_parts.append("}")
    usage = usage_of("\n".join(source_parts), opt_level=1)
    assert usage.callee_saves_needed >= 6


def test_single_liveness_solve_per_function(monkeypatch):
    """``analyze_function_usage`` solves liveness once and threads the
    result (plus the pre-walked instruction tuples) into both register
    estimates — regression for the hot path that used to re-solve the
    fixpoint three times per function."""
    import repro.analysis.frequency as frequency

    calls = []
    real = frequency.compute_ir_liveness
    monkeypatch.setattr(
        frequency,
        "compute_ir_liveness",
        lambda function: (calls.append(function), real(function))[1],
    )
    module = lower_source(
        """
        int g;
        int f(int n) {
          int s = 0;
          int i;
          for (i = 0; i < n; i++) { s += other(i); g = s; }
          return s;
        }
        int other(int x) { return x + 1; }
        """,
        "m",
    )
    analyze_function_usage(module.functions["f"])
    assert len(calls) == 1


def test_estimates_identical_across_kernels(monkeypatch):
    """Packed bitmask peaks equal the reference set-cardinality peaks."""
    source = """
        int g;
        int h;
        int f(int n) {
          int a = n + 1;
          int b = n + 2;
          int c = other(a);
          g = a + b + c;
          h = other(b) + other(c);
          return g + h;
        }
        int other(int x) { return x * 2; }
    """
    results = {}
    for mode in ("packed", "reference"):
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        module = lower_source(source, "m")
        usage = analyze_function_usage(module.functions["f"])
        results[mode] = (
            usage.callee_saves_needed,
            usage.caller_saves_needed,
            dict(usage.global_refs),
        )
    assert results["packed"] == results["reference"]
    assert results["packed"][1] > 0  # values do live across those calls
