"""Dominator computation tests (shared by CFGs and call graphs)."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.dominators import compute_dominators


def dominators_of_graph(edges, roots, nodes=None):
    if nodes is None:
        nodes = sorted({n for e in edges for n in e} | set(roots))
    successors = {n: [] for n in nodes}
    for a, b in edges:
        successors[a].append(b)
    return compute_dominators(nodes, roots, lambda n: successors[n]), successors


def test_diamond():
    tree, _ = dominators_of_graph(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], ["a"]
    )
    assert tree.immediate_dominator("d") == "a"
    assert tree.immediate_dominator("b") == "a"
    assert tree.dominates("a", "d")
    assert not tree.dominates("b", "d")
    assert tree.strictly_dominates("a", "d")
    assert not tree.strictly_dominates("d", "d")


def test_chain():
    tree, _ = dominators_of_graph([("a", "b"), ("b", "c")], ["a"])
    assert tree.dominators_of("c") == ["c", "b", "a"]


def test_loop():
    tree, _ = dominators_of_graph(
        [("a", "b"), ("b", "c"), ("c", "b"), ("b", "d")], ["a"]
    )
    assert tree.immediate_dominator("b") == "a"
    assert tree.immediate_dominator("c") == "b"
    assert tree.immediate_dominator("d") == "b"


def test_multiple_roots():
    # d is reachable from both roots; nothing but itself dominates it.
    tree, _ = dominators_of_graph(
        [("r1", "d"), ("r2", "d")], ["r1", "r2"]
    )
    assert tree.immediate_dominator("d") is None
    assert tree.dominates("d", "d")
    assert not tree.dominates("r1", "d")


def test_unreachable_nodes_excluded():
    tree, _ = dominators_of_graph(
        [("a", "b"), ("x", "y")], ["a"], nodes=["a", "b", "x", "y"]
    )
    assert "x" not in tree.reachable_nodes
    assert "b" in tree.reachable_nodes


def test_root_has_no_immediate_dominator():
    tree, _ = dominators_of_graph([("a", "b")], ["a"])
    assert tree.immediate_dominator("a") is None


def _random_graph(seed, size):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(size)]
    edges = []
    for i, node in enumerate(nodes):
        for _ in range(rng.randint(0, 3)):
            edges.append((node, rng.choice(nodes)))
    return nodes, edges


def _reachable_without(successors, root, banned, target):
    """Is target reachable from root avoiding ``banned``?"""
    if root == banned:
        return root == target
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        if node == target:
            return True
        for nxt in successors[node]:
            if nxt != banned and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=12))
def test_idom_truly_dominates(seed, size):
    """Property: removing idom(n) disconnects n from the root."""
    nodes, edges = _random_graph(seed, size)
    root = nodes[0]
    tree, successors = dominators_of_graph(edges, [root], nodes=nodes)
    for node in nodes:
        if node == root or node not in tree.reachable_nodes:
            continue
        idom = tree.immediate_dominator(node)
        if idom is None:
            continue
        assert not _reachable_without(successors, root, idom, node), (
            f"{idom} does not dominate {node}"
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=12))
def test_dominates_is_reflexive_and_transitive(seed, size):
    nodes, edges = _random_graph(seed, size)
    root = nodes[0]
    tree, _ = dominators_of_graph(edges, [root], nodes=nodes)
    reachable = [n for n in nodes if n in tree.reachable_nodes]
    for node in reachable:
        assert tree.dominates(node, node)
        chain = tree.dominators_of(node)
        for ancestor in chain:
            assert tree.dominates(ancestor, node)
