"""Differential oracle for the packed dataflow kernels.

The bit-packed kernels (``REPRO_DATAFLOW=packed``, the default) must be
*byte-identical* to the set-based reference implementations: same
``ProgramDatabase`` JSON for every workload and analyzer configuration,
and therefore the same executables.  Nothing here tolerates "equivalent
but reordered" — the incremental analyzer's cache keys and the paper's
recompilation-avoidance story both hang on exact database bytes.

Covers the seven Table-3 workloads across configurations A–F (profiled
configs included), ten fuzz-generator programs, executable fingerprints
for two workloads, and the ``REPRO_DATAFLOW`` knob itself.
"""

import pytest

from repro import (
    AnalyzerOptions,
    CompilationScheduler,
    collect_profile,
    run_phase1,
)
from repro.analysis.packed import (
    DATAFLOW_MODES,
    DEFAULT_DATAFLOW,
    DenseIndex,
    resolve_dataflow,
)
from repro.analyzer.driver import analyze_program
from repro.linker.link import executable_fingerprint
from repro.verify.progen import generate_fuzz_program
from repro.workloads import all_workloads

FAST_WORKLOADS = ("dhrystone", "fgrep", "protoc")
SLOW_WORKLOADS = ("othello", "war", "crtool", "paopt")
CONFIGS = ("A", "B", "C", "D", "E", "F")
PROFILE_CONFIGS = frozenset("BF")
FUZZ_SEEDS = range(10)
FUZZ_CONFIGS = ("A", "C", "D", "E")


@pytest.fixture(scope="module")
def scheduler(tmp_path_factory):
    with CompilationScheduler(
        jobs=1, cache_dir=tmp_path_factory.mktemp("dataflow-diff-cache")
    ) as sched:
        yield sched


@pytest.fixture(scope="module")
def workload_state(scheduler):
    """Per-workload phase-1 results / summaries / profile, computed once
    (phase 1 and the profiling run are mode-independent)."""
    cache: dict = {}

    def state(name: str, with_profile: bool):
        entry = cache.get(name)
        if entry is None:
            workload = all_workloads()[name]
            phase1 = run_phase1(workload.sources, scheduler=scheduler)
            entry = cache[name] = {
                "phase1": phase1,
                "summaries": [result.summary for result in phase1],
                "profile": None,
                "max_cycles": workload.max_cycles,
            }
        if with_profile and entry["profile"] is None:
            entry["profile"] = collect_profile(
                entry["phase1"],
                max_cycles=entry["max_cycles"],
                scheduler=scheduler,
            )
        return entry

    return state


def _databases_both_modes(monkeypatch, summaries, options):
    payloads = {}
    for mode in DATAFLOW_MODES:
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        payloads[mode] = analyze_program(summaries, options).to_json()
    return payloads


def _assert_workload_matrix(monkeypatch, workload_state, name):
    for config in CONFIGS:
        with_profile = config in PROFILE_CONFIGS
        entry = workload_state(name, with_profile)
        options = AnalyzerOptions.config(
            config, entry["profile"] if with_profile else None
        )
        payloads = _databases_both_modes(
            monkeypatch, entry["summaries"], options
        )
        assert payloads["packed"] == payloads["reference"], (
            f"{name} config {config}: database bytes diverge"
        )


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_workload_databases_identical(monkeypatch, workload_state, name):
    """Every workload × config A–F: packed and reference kernels emit
    byte-identical program databases."""
    _assert_workload_matrix(monkeypatch, workload_state, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_WORKLOADS)
def test_workload_databases_identical_slow(
    monkeypatch, workload_state, name
):
    _assert_workload_matrix(monkeypatch, workload_state, name)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_databases_identical(monkeypatch, scheduler, seed):
    """Generated programs: both kernels agree on every non-profile
    configuration."""
    sources = generate_fuzz_program(seed)
    summaries = [
        result.summary
        for result in run_phase1(sources, scheduler=scheduler)
    ]
    for config in FUZZ_CONFIGS:
        options = AnalyzerOptions.config(config)
        payloads = _databases_both_modes(monkeypatch, summaries, options)
        assert payloads["packed"] == payloads["reference"], (
            f"fuzz seed {seed} config {config}: database bytes diverge"
        )


@pytest.mark.parametrize("name", ("dhrystone", "othello"))
def test_executables_identical(monkeypatch, scheduler, workload_state,
                               name):
    """Identical databases imply identical executables: the full config-C
    build fingerprints match across kernels."""
    entry = workload_state(name, False)
    fingerprints = {}
    for mode in DATAFLOW_MODES:
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        database = analyze_program(
            entry["summaries"], AnalyzerOptions.config("C")
        )
        executable = scheduler.compile_with_database(
            entry["phase1"], database
        )
        fingerprints[mode] = executable_fingerprint(executable)
    assert fingerprints["packed"] == fingerprints["reference"]


def test_resolve_dataflow_knob(monkeypatch):
    monkeypatch.delenv("REPRO_DATAFLOW", raising=False)
    assert resolve_dataflow() == DEFAULT_DATAFLOW == "packed"
    assert resolve_dataflow("reference") == "reference"
    assert resolve_dataflow("  Packed ") == "packed"
    monkeypatch.setenv("REPRO_DATAFLOW", "reference")
    assert resolve_dataflow() == "reference"
    assert resolve_dataflow("packed") == "packed"  # explicit mode wins
    monkeypatch.setenv("REPRO_DATAFLOW", "vectorized")
    with pytest.raises(ValueError, match="unknown dataflow mode"):
        resolve_dataflow()


def test_dense_index_round_trip():
    """Both ``set_of`` decode strategies (bytewise for dense masks,
    per-bit for sparse ones) invert ``mask_of``."""
    items = [f"item{i:04d}" for i in range(700)]
    index = DenseIndex(items)
    dense = set(items[40:120])  # contiguous: takes the bytewise branch
    sparse = {items[3], items[333], items[698]}  # wide: per-bit branch
    for subset in (dense, sparse, set(), {items[0]}, set(items)):
        mask = index.mask_of(subset)
        assert index.set_of(mask) == subset
        assert index.frozenset_of(mask) == frozenset(subset)
    # Ascending-bit iteration over a sorted index equals sorted order.
    assert index.items == tuple(sorted(items))
