"""Natural loop detection tests."""

from repro.analysis.loops import (
    find_natural_loops,
    loop_nesting_depths,
)
from repro.ir import lower_source


def lower(source):
    return lower_source(source, "m")


def test_no_loops():
    module = lower("int f(int a) { if (a) return 1; return 2; }")
    assert find_natural_loops(module.functions["f"]) == []


def test_single_while_loop():
    module = lower(
        "int f(int n) { while (n > 0) n = n - 1; return n; }"
    )
    loops = find_natural_loops(module.functions["f"])
    assert len(loops) == 1
    assert "head" in loops[0].header


def test_nested_loops_have_nested_depths():
    module = lower(
        """
        int f(int n) {
          int i;
          int j;
          int s = 0;
          for (i = 0; i < n; i++)
            for (j = 0; j < n; j++)
              s += 1;
          return s;
        }
        """
    )
    func = module.functions["f"]
    depths = loop_nesting_depths(func)
    assert max(depths.values()) == 2


def test_graph_depths_bounded_by_syntactic_depths():
    """The builder's syntactic loop depth over-approximates the
    graph-derived depth: blocks on early-exit paths (e.g. a ``break``)
    are syntactically inside the loop but not part of the natural loop.
    For blocks that are members of natural loops the two agree."""
    module = lower(
        """
        int f(int n) {
          int i;
          int s = 0;
          for (i = 0; i < n; i++) {
            s += i;
            if (s > 100) break;
          }
          while (n) { n = n / 2; }
          do { s--; } while (s > 0);
          return s;
        }
        """
    )
    func = module.functions["f"]
    graph_depths = loop_nesting_depths(func)
    in_a_loop = set()
    for loop in find_natural_loops(func):
        in_a_loop |= loop.body
    for label, block in func.blocks.items():
        assert block.loop_depth >= graph_depths[label], label
        if label in in_a_loop:
            assert block.loop_depth == graph_depths[label], label
