"""Liveness analysis tests."""

from repro.analysis.liveness import compute_ir_liveness
from repro.ir import lower_source
from repro.ir.function import IRFunction
from repro.ir.instructions import BinOp, CJump, Jump, Move, Return, Call
from repro.ir.values import Const


def test_straightline_liveness():
    func = IRFunction("f")
    func.add_entry_block()
    a = func.new_temp("a")
    b = func.new_temp("b")
    func.entry.append(Move(a, Const(1)))
    func.entry.append(Move(b, a))
    func.entry.terminator = Return(b)
    result = compute_ir_liveness(func)
    assert result.live_in("entry") == set()
    assert result.live_out("entry") == set()


def test_param_live_into_entry():
    func = IRFunction("f")
    func.add_entry_block()
    param = func.new_temp("p")
    func.params.append(param)
    func.entry.terminator = Return(param)
    result = compute_ir_liveness(func)
    assert param in result.live_in("entry")


def test_loop_carried_value_live_around_backedge():
    module = lower_source(
        """
        int f(int n) {
          int s = 0;
          int i;
          for (i = 0; i < n; i++) s += i;
          return s;
        }
        """,
        "m",
    )
    func = module.functions["f"]
    result = compute_ir_liveness(func)
    head = next(label for label in func.blocks if "head" in label)
    # The accumulator is live around the loop.
    hints = {t.hint for t in result.live_in(head)}
    assert "s" in hints
    assert "i" in hints


def test_pinned_temp_live_at_return():
    func = IRFunction("f")
    func.add_entry_block()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    value = func.new_temp()
    func.entry.append(Move(pinned, Const(5)))
    func.entry.append(Move(value, Const(0)))
    func.entry.terminator = Return(value)
    result = compute_ir_liveness(func)
    # Without the pinned rule, the Move into pinned would be dead.
    assert pinned in result.live_out("entry") or pinned in {
        u for u in result.blocks["entry"].use
    } or True
    # The strong check: DCE must not remove the move (see test_dce).


def test_call_is_barrier_for_pinned_temps():
    func = IRFunction("f")
    func.add_entry_block()
    pinned = func.new_temp("web.g")
    func.pinned_temps[pinned] = 31
    func.entry.append(Move(pinned, Const(1)))
    func.entry.append(Call(None, "other", []))
    func.entry.append(Move(pinned, Const(2)))
    func.entry.terminator = Return(None)
    result = compute_ir_liveness(func)
    # The first move's value is consumed by the call (callee may read the
    # register), so pinned must be in the block's upward-exposed... it is
    # defined first, so instead check via the use set of the call proxy:
    fact = result.blocks["entry"]
    # pinned is both defined and used inside the block; the define set
    # must contain it.
    assert pinned in fact.define


def _diamond_function():
    """entry -> (left | right) -> join, with a value defined in entry,
    conditionally overwritten on one arm, and consumed at the join."""
    func = IRFunction("f")
    func.add_entry_block()
    cond = func.new_temp("c")
    value = func.new_temp("v")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    func.entry.append(Move(cond, Const(1)))
    func.entry.append(Move(value, Const(10)))
    func.entry.terminator = CJump(cond, left.label, right.label)
    left.append(Move(value, Const(20)))
    left.terminator = Jump(join.label)
    right.terminator = Jump(join.label)
    join.terminator = Return(value)
    return func, value


def test_diamond_converges_in_one_visit_per_block(monkeypatch):
    """Regression for the worklist seeding order: a backward solver
    seeded in reverse post-order and popped LIFO sweeps successors
    first, so an acyclic diamond must converge in exactly one worklist
    pop per block — re-visits mean the seed order regressed to the old
    every-pass-over-every-block scheme."""
    for mode in ("packed", "reference"):
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        func, value = _diamond_function()
        result = compute_ir_liveness(func)
        assert result.block_visits == len(func.blocks) == 4, mode
        # And the facts themselves: v flows through both arms.
        for label in ("left", "right"):
            block = next(l for l in func.blocks if label in l)
            assert value in result.live_out(block), mode


def test_loop_requires_revisits_but_terminates(monkeypatch):
    """A back edge needs at least one re-visit (visits > blocks) and the
    count is identical across kernels — the packed solver mirrors the
    reference worklist pop for pop."""
    visits = {}
    for mode in ("packed", "reference"):
        monkeypatch.setenv("REPRO_DATAFLOW", mode)
        module = lower_source(
            """
            int f(int n) {
              int s = 0;
              int i;
              for (i = 0; i < n; i++) s += i;
              return s;
            }
            """,
            "m",
        )
        func = module.functions["f"]
        result = compute_ir_liveness(func)
        assert result.block_visits > len(func.blocks), mode
        visits[mode] = result.block_visits
    assert visits["packed"] == visits["reference"]
