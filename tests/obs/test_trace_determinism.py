"""Trace determinism (ISSUE satellite c).

Two runs of the same compilation are *defined* equivalent when their
canonicalized traces compare equal.  This suite pins that definition
against reality over seeded fuzz programs: run-to-run (same process,
fresh scheduler) and serial-vs-parallel (``jobs=1`` against ``jobs=2``,
where worker scheduling must not reorder or alter the narration).
"""

import pytest

from repro.analyzer.options import AnalyzerOptions
from repro.driver.scheduler import CompilationScheduler
from repro.obs.tracer import Tracer, canonicalize_trace
from repro.verify.progen import generate_fuzz_program

SEEDS = (1, 2, 3)


def _traced_compile(sources, jobs=1):
    tracer = Tracer()
    with CompilationScheduler(jobs=jobs, trace=tracer) as scheduler:
        phase1 = scheduler.run_phase1(sources)
        database = scheduler.analyze(
            [result.summary for result in phase1],
            AnalyzerOptions.config("C"),
        )
        scheduler.compile_with_database(phase1, database)
    return canonicalize_trace(tracer.records)


@pytest.mark.parametrize("seed", SEEDS)
def test_two_serial_runs_trace_identically(seed):
    sources = generate_fuzz_program(seed)
    first = _traced_compile(sources)
    second = _traced_compile(sources)
    assert first == second


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_and_parallel_runs_trace_identically(seed):
    sources = generate_fuzz_program(seed)
    serial = _traced_compile(sources, jobs=1)
    parallel = _traced_compile(sources, jobs=2)
    assert serial == parallel


def test_trace_has_substance():
    """Guard against vacuous determinism (empty == empty)."""
    sources = generate_fuzz_program(SEEDS[0])
    records = _traced_compile(sources)
    kinds = {
        record.get("type")
        for record in records
        if record.get("ev") == "event"
    }
    assert "module-phase1" in kinds
    assert "global-decision" in kinds
    assert "directive" in kinds
    assert "link" in kinds
    spans = {
        record.get("name")
        for record in records
        if record.get("ev") == "span-begin"
    }
    assert {"phase1", "analyze", "coloring", "clusters",
            "register-sets", "phase2", "link"} <= spans
