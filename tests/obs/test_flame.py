"""Span-stream profiling: tree rebuild, folding, request summaries."""

import time

from repro.obs.flame import (
    fold_spans,
    frame_label,
    render_collapsed,
    request_summaries,
    self_time_table,
    slowest_requests,
    span_tree,
)
from repro.obs.tracer import Tracer


def _sample_records():
    tracer = Tracer()
    with tracer.span("request", op="compile", request=1, trace="t"):
        with tracer.span("compile"):
            with tracer.span("phase1"):
                with tracer.span("module", stage="phase1",
                                 module="othello"):
                    time.sleep(0.002)
            with tracer.span("phase2"):
                time.sleep(0.001)
            tracer.event("worker-handoff", seconds=0.5)
    return tracer.records


def test_span_tree_rebuilds_nesting():
    roots = span_tree(_sample_records())
    assert len(roots) == 1
    request = roots[0]
    assert request["name"] == "request"
    assert request["data"]["op"] == "compile"
    compile_span = request["children"][0]
    assert [c["name"] for c in compile_span["children"]] == [
        "phase1", "phase2"
    ]
    module = compile_span["children"][0]["children"][0]
    assert frame_label(module) == "module:othello"
    assert module["seconds"] > 0
    assert compile_span["events"][0]["type"] == "worker-handoff"


def test_span_tree_survives_torn_stream():
    records = _sample_records()
    # Drop the trailing span-end records: open spans keep seconds=0.
    torn = records[:-2]
    roots = span_tree(torn)
    assert roots[0]["name"] == "request"
    assert roots[0]["seconds"] == 0.0


def test_fold_spans_self_time():
    records = _sample_records()
    folded = fold_spans(records)
    module_stack = (
        "request;compile;phase1;module:othello"
    )
    assert module_stack in folded
    assert folded[module_stack] >= 1000  # slept 2ms, µs weights
    # Self-time: the module's sleep must not double-count into phase1.
    roots = span_tree(records)
    phase1 = roots[0]["children"][0]["children"][0]
    module = phase1["children"][0]
    phase1_self = folded.get("request;compile;phase1", 0)
    assert phase1_self <= int(phase1["seconds"] * 1e6) - int(
        module["seconds"] * 1e6
    ) + 2


def test_render_collapsed_format():
    text = render_collapsed(fold_spans(_sample_records()))
    assert text.endswith("\n")
    for line in text.strip().splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert ";" in stack or stack == "request"
        assert int(weight) > 0
    # Sorted, so output is deterministic given identical weights.
    stacks = [line.rsplit(" ", 1)[0]
              for line in text.strip().splitlines()]
    assert stacks == sorted(stacks)


def test_self_time_table_orders_by_self_time():
    rows = self_time_table(_sample_records())
    labels = [row["label"] for row in rows]
    assert "module:othello" in labels
    assert rows == sorted(
        rows, key=lambda row: (-row["self_seconds"], row["label"])
    )
    for row in rows:
        assert row["self_seconds"] <= row["total_seconds"] + 1e-9
        assert row["count"] >= 1


def _tagged(records, trace):
    return [dict(record, trace=trace) for record in records]


def test_request_summaries_and_slowest():
    fast = Tracer()
    with fast.span("request", op="ping", request=1, trace="a"):
        pass
    slow = Tracer()
    with slow.span("request", op="compile", request=1, trace="b",
                   session="s1"):
        with slow.span("lock-wait"):
            pass
        with slow.span("compile"):
            with slow.span("queue-wait"):
                pass
            with slow.span("phase1"):
                time.sleep(0.002)
    records = _tagged(fast.records, "a") + _tagged(slow.records, "b")
    rows = request_summaries(records)
    assert {row["trace"] for row in rows} == {"a", "b"}
    ranked = slowest_requests(records, top=1)
    assert len(ranked) == 1
    assert ranked[0]["trace"] == "b"
    assert ranked[0]["phases"]["phase1"] > 0
    assert ranked[0]["lock_wait"] >= 0.0
    assert ranked[0]["error"] is None


def test_request_summaries_ignores_plain_scheduler_traces():
    tracer = Tracer()
    with tracer.span("phase1"):
        pass
    assert request_summaries(tracer.records) == []
