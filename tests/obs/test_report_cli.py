"""The ``repro-explain`` CLI end to end (on the fast workload)."""

import json

import pytest

from repro.obs.report import main, render_report, report_data


def _run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_report_renders_paper_tables(capsys):
    code, out = _run(
        capsys, "report", "--workload", "dhrystone", "--config", "C",
        "--verify",
    )
    assert code == 0
    assert "Global promotion (paper Tables 1-2)" in out
    assert "Clusters (spill code motion" in out
    assert "Per-procedure execution" in out
    assert "Post-link audit" in out
    # Non-empty tables: known dhrystone globals and procedures appear.
    assert "Int_Glob" in out
    assert "promoted" in out
    assert "main" in out
    assert "violation_count=0" in out


def test_default_command_is_report(capsys):
    code, out = _run(
        capsys, "--workload", "dhrystone", "--config", "A",
    )
    assert code == 0
    assert "Global promotion" in out
    # Config A turns promotion off: everything is rejected with the
    # machine-readable reason.
    assert "promotion-disabled" in out


def test_why_promoted_global(capsys):
    code, out = _run(
        capsys, "why", "Int_Glob", "--workload", "dhrystone",
        "--config", "C",
    )
    assert code == 0
    assert "global Int_Glob: promoted" in out
    assert "colored -> r" in out


def test_why_unknown_global_fails(capsys):
    code, out = _run(
        capsys, "why", "no_such_global", "--workload", "dhrystone",
        "--config", "C",
    )
    assert code == 1
    assert "unknown" in out


def test_save_and_reload_trace_render_identically(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code, compiled_out = _run(
        capsys, "report", "--workload", "dhrystone", "--config", "C",
        "--save-trace", str(path),
    )
    assert code == 0
    code, reloaded_out = _run(
        capsys, "report", "--from-trace", str(path),
    )
    assert code == 0
    # Identical below the title line (which names the source).
    strip = lambda text: text.split("\n", 2)[2]  # noqa: E731
    assert strip(reloaded_out) == strip(compiled_out)


def test_json_report_is_machine_readable(capsys):
    code, out = _run(
        capsys, "report", "--workload", "dhrystone", "--config", "C",
        "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["globals"], "web table must be non-empty"
    assert payload["clusters"], "cluster table must be non-empty"
    assert payload["web_stats"]["formed"] > 0
    assert payload["execution"]["procedures"]
    total = payload["execution"]["cycles"]
    assert sum(
        row["cycles"] for row in payload["execution"]["procedures"]
    ) == total


def test_proc_subcommand(capsys):
    code, out = _run(
        capsys, "proc", "main", "--workload", "dhrystone",
        "--config", "C",
    )
    assert code == 0
    assert "procedure main" in out
    assert "CALLER:" in out
    assert "execution: cycles=" in out


def test_metrics_subcommand(capsys):
    code, out = _run(
        capsys, "metrics", "--workload", "dhrystone", "--config", "C",
    )
    assert code == 0
    assert "# TYPE repro_stage_seconds_total counter" in out
    assert "# TYPE repro_run_cycles gauge" in out
    assert 'repro_procedure_cycles_total{procedure="main"}' in out
    assert "# TYPE repro_cluster_cycles_total counter" in out


def test_metrics_rejects_from_trace(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _run(
        capsys, "report", "--workload", "dhrystone", "--config", "C",
        "--save-trace", str(path),
    )
    with pytest.raises(SystemExit):
        main(["metrics", "--from-trace", str(path)])


def test_why_requires_name(capsys):
    with pytest.raises(SystemExit):
        main(["why"])


def test_render_report_empty_trace_degrades_gracefully():
    data = report_data([])
    assert data["globals"] == []
    assert data["clusters"] == []
    text = render_report([], title="empty")
    assert "(no eligible globals)" in text
    assert "(no clusters formed)" in text
