"""The structured tracer: determinism-by-construction properties."""

import json

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    TIMING_FIELDS,
    Tracer,
    _jsonable,
    activate,
    canonicalize_trace,
    current_tracer,
    read_trace,
    suppressed,
)


def test_ordinals_are_monotonic_and_dense():
    tracer = Tracer()
    with tracer.span("outer"):
        tracer.event("one", a=1)
        tracer.event("two", b=2)
    ordinals = [record["ord"] for record in tracer.records]
    assert ordinals == list(range(len(tracer.records)))


def test_span_nesting_parent_ids():
    tracer = Tracer()
    with tracer.span("outer") as outer_id:
        tracer.event("inside-outer")
        with tracer.span("inner") as inner_id:
            tracer.event("inside-inner")
    begins = {
        record["name"]: record
        for record in tracer.records
        if record["ev"] == "span-begin"
    }
    assert begins["outer"]["parent"] == 0
    assert begins["inner"]["parent"] == outer_id
    events = {
        record["type"]: record
        for record in tracer.records
        if record["ev"] == "event"
    }
    assert events["inside-outer"]["span"] == outer_id
    assert events["inside-inner"]["span"] == inner_id
    ends = [
        record for record in tracer.records if record["ev"] == "span-end"
    ]
    # Inner span closes before the outer one.
    assert [record["name"] for record in ends] == ["inner", "outer"]
    for record in ends:
        assert record["seconds"] >= 0.0


def test_span_end_emitted_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert tracer.records[-1]["ev"] == "span-end"
    assert tracer.records[-1]["name"] == "doomed"


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        with tracer.span("compile", modules=2):
            tracer.event("decision", name="g", registers={3, 1, 2})
    loaded = read_trace(path)
    assert loaded == tracer.records
    # Every line is standalone JSON (streaming consumers can tail it).
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            json.loads(line)


def test_jsonable_sorts_sets_recursively():
    payload = _jsonable(
        {"regs": {9, 3, 27}, "nested": [{"s": frozenset({"b", "a"})}]}
    )
    assert payload == {"regs": [3, 9, 27], "nested": [{"s": ["a", "b"]}]}


def test_event_payload_sets_become_sorted_lists():
    tracer = Tracer()
    tracer.event("x", members=frozenset({"c", "a", "b"}))
    assert tracer.records[0]["data"]["members"] == ["a", "b", "c"]


def test_canonicalize_strips_timing_and_sorts_by_ordinal():
    tracer = Tracer()
    with tracer.span("s"):
        tracer.event("e")
    shuffled = list(reversed(tracer.records))
    canonical = canonicalize_trace(shuffled)
    assert [record["ord"] for record in canonical] == [0, 1, 2]
    for record in canonical:
        for key in TIMING_FIELDS:
            assert key not in record
    # The only per-run-varying field was the timing one, so two
    # canonicalizations of equivalent streams compare equal.
    assert canonical == canonicalize_trace(tracer.records)


def test_ambient_activation_and_suppression():
    assert current_tracer() is NULL_TRACER
    tracer = Tracer()
    with activate(tracer):
        assert current_tracer() is tracer
        with suppressed():
            assert current_tracer() is NULL_TRACER
            current_tracer().event("dropped", x=1)
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER
    assert tracer.records == []  # the suppressed event never landed


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.event("anything", x=1)
    with NULL_TRACER.span("whatever", y=2):
        pass
    NULL_TRACER.close()
    assert NULL_TRACER.records == []
