"""The perf-regression sentinel: flattening, history, verdicts, CLI."""

import json

import pytest

from repro.obs import sentinel
from repro.obs.report import main as explain_main


def test_flatten_scalars_dotted_paths():
    flat = sentinel.flatten_scalars(
        {
            "service_load": {
                "compiles_per_sec": 12.5,
                "sessions": 100,
                "byte_identical": True,
                "latency": {"compile": {"p95_ms": 40.0}},
            },
            "legend": {"A": "Spill motion only"},
        }
    )
    assert flat["service_load.compiles_per_sec"] == 12.5
    assert flat["service_load.sessions"] == 100.0
    assert flat["service_load.latency.compile.p95_ms"] == 40.0
    # Booleans and strings are not perf scalars.
    assert "service_load.byte_identical" not in flat
    assert "legend.A" not in flat


def test_metric_direction_heuristics():
    assert sentinel.metric_direction(
        "service_load.compiles_per_sec") == 1
    assert sentinel.metric_direction("cache_hit_rate") == 1
    assert sentinel.metric_direction("simulator.speedup") == 1
    assert sentinel.metric_direction(
        "observability.compile_seconds") == -1
    assert sentinel.metric_direction("latency.compile.p95_ms") == -1
    assert sentinel.metric_direction("workloads.othello.cycles") == -1
    # Unjudgeable names are skipped rather than guessed.
    assert sentinel.metric_direction("sessions") == 0


def _entry(sha, **metrics):
    return {"sha": sha, "timestamp": "2026-08-08T00:00:00+00:00",
            "metrics": metrics}


def test_check_flags_regressions_in_bad_direction_only():
    entries = [
        _entry("a", compiles_per_sec=10.0, compile_seconds=2.0),
        _entry("b", compiles_per_sec=10.0, compile_seconds=2.0),
        _entry("c", compiles_per_sec=5.0, compile_seconds=1.0),
    ]
    rows = sentinel.check_regressions(
        entries, threshold=0.25, window=5
    )
    # Throughput halved (bad); seconds halved (good, not flagged).
    assert [row["metric"] for row in rows] == ["compiles_per_sec"]
    assert rows[0]["delta"] == pytest.approx(-0.5)
    assert rows[0]["direction"] == "higher-better"


def test_check_uses_trailing_window_mean():
    entries = [
        _entry("a", compile_seconds=1.0),
        _entry("b", compile_seconds=3.0),
        _entry("c", compile_seconds=2.5),
    ]
    # Baseline mean = 2.0; newest 2.5 is +25%, inside a 30% threshold
    # but outside 20%.
    assert not sentinel.check_regressions(
        entries, threshold=0.30, window=5
    )
    assert sentinel.check_regressions(
        entries, threshold=0.20, window=5
    )


def test_check_handles_sparse_and_short_histories():
    assert sentinel.check_regressions([], threshold=0.1) == []
    assert sentinel.check_regressions(
        [_entry("a", compile_seconds=1.0)], threshold=0.1
    ) == []
    # A metric present only in the newest point has no baseline.
    entries = [
        _entry("a", compile_seconds=1.0),
        _entry("b", compile_seconds=1.0, new_seconds=9.0),
    ]
    rows = sentinel.check_regressions(entries, threshold=0.1)
    assert rows == []


def test_append_history_replaces_same_sha(tmp_path):
    path = tmp_path / "history.jsonl"
    sentinel.append_history(
        path, {"x_seconds": 1.0}, "sha1", "t1"
    )
    sentinel.append_history(
        path, {"x_seconds": 2.0}, "sha2", "t2"
    )
    sentinel.append_history(
        path, {"x_seconds": 3.0}, "sha2", "t3"
    )
    entries = sentinel.read_history(path)
    assert [entry["sha"] for entry in entries] == ["sha1", "sha2"]
    assert entries[-1]["metrics"]["x_seconds"] == 3.0
    assert entries[-1]["timestamp"] == "t3"


def test_format_check_renders_delta_table():
    entries = [
        _entry("aaaaaaaaaaaaaaaa", compiles_per_sec=10.0),
        _entry("bbbbbbbbbbbbbbbb", compiles_per_sec=4.0),
    ]
    rows = sentinel.check_regressions(entries, threshold=0.25)
    text = sentinel.format_check(entries, rows, threshold=0.25)
    assert "bbbbbbbbbbbb" in text
    assert "compiles_per_sec" in text
    assert "-60.0%" in text
    assert "higher-better" in text


def _write_history(path, entries):
    sentinel.write_history(path, entries)


def test_bench_check_cli_exit_codes(tmp_path, capsys):
    history = tmp_path / "BENCH_history.jsonl"
    healthy = [
        _entry("a", compiles_per_sec=10.0),
        _entry("b", compiles_per_sec=10.1),
    ]
    _write_history(history, healthy)
    assert explain_main(
        ["bench", "--check", "--history", str(history)]
    ) == 0
    out = capsys.readouterr().out
    assert "no tracked scalar regressed" in out

    regressed = healthy + [_entry("c", compiles_per_sec=2.0)]
    _write_history(history, regressed)
    assert explain_main(
        ["bench", "--check", "--history", str(history)]
    ) == 1
    out = capsys.readouterr().out
    assert "compiles_per_sec" in out

    # JSON mode carries the same verdict machine-readably.
    assert explain_main(
        ["bench", "--check", "--history", str(history), "--json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["points"] == 3
    assert payload["regressions"][0]["metric"] == "compiles_per_sec"


def test_bench_cli_lists_history(tmp_path, capsys):
    history = tmp_path / "BENCH_history.jsonl"
    _write_history(history, [_entry("abcdef1234567890", x_seconds=1.0)])
    assert explain_main(
        ["bench", "--history", str(history)]
    ) == 0
    out = capsys.readouterr().out
    assert "abcdef123456" in out
    assert "1 point(s)" in out


def test_threshold_and_window_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_SENTINEL_THRESHOLD", "0.5")
    monkeypatch.setenv("REPRO_SENTINEL_WINDOW", "2")
    assert sentinel.sentinel_threshold() == 0.5
    assert sentinel.sentinel_window() == 2
    entries = [
        _entry("a", compile_seconds=1.0),
        _entry("b", compile_seconds=1.4),
    ]
    # +40% is inside the 50% env threshold.
    assert sentinel.check_regressions(entries) == []
