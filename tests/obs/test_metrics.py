"""The unified metrics registry and its fold functions."""

import json

import pytest

from repro.analyzer.database import ClusterRecord
from repro.driver.scheduler import MetricsSnapshot
from repro.machine.simulator import ExecutionStats, ProcedureStats
from repro.obs.metrics import (
    MetricsRegistry,
    cluster_owner_map,
    fold_audit,
    fold_execution,
    fold_metrics_snapshot,
    unified_registry,
)


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    registry.inc("hits", stage="phase1")
    registry.inc("hits", 2, stage="phase1")
    registry.inc("hits", stage="phase2")
    assert registry.value("hits", stage="phase1") == 3
    assert registry.value("hits", stage="phase2") == 1
    assert registry.value("hits", stage="nope") is None
    assert registry.value("unset") is None


def test_gauge_overwrites():
    registry = MetricsRegistry()
    registry.set_gauge("jobs", 2)
    registry.set_gauge("jobs", 4)
    assert registry.value("jobs") == 4


def test_histogram_buckets_and_json():
    registry = MetricsRegistry()
    for value in (0.5, 5, 50, 1e9):
        registry.observe("lat", value, buckets=(1.0, 10.0, 100.0))
    payload = registry.to_json_dict()["lat"]
    assert payload["type"] == "histogram"
    histogram = payload["values"][0]["value"]
    assert histogram["counts"] == [1, 1, 1, 1]  # last = +Inf overflow
    assert histogram["count"] == 4
    assert histogram["sum"] == pytest.approx(0.5 + 5 + 50 + 1e9)


def test_type_conflict_raises():
    registry = MetricsRegistry()
    registry.inc("m")
    with pytest.raises(ValueError):
        registry.set_gauge("m", 1)
    with pytest.raises(ValueError):
        registry.observe("m", 1)


def test_text_exposition_format():
    registry = MetricsRegistry()
    registry.inc("repro_things_total", 3, kind="web")
    registry.set_gauge("repro_level", 2.5)
    registry.observe("repro_sizes", 5, buckets=(1.0, 10.0))
    text = registry.to_text()
    assert '# TYPE repro_things_total counter' in text
    assert 'repro_things_total{kind="web"} 3' in text
    assert '# TYPE repro_level gauge' in text
    assert 'repro_level 2.5' in text
    # Histogram buckets are cumulative and end at +Inf.
    assert 'repro_sizes_bucket{le="1"} 0' in text
    assert 'repro_sizes_bucket{le="10"} 1' in text
    assert 'repro_sizes_bucket{le="+Inf"} 1' in text
    assert 'repro_sizes_sum 5' in text
    assert 'repro_sizes_count 1' in text


def test_json_dict_is_json_serializable_and_sorted():
    registry = MetricsRegistry()
    registry.inc("b_metric", 1, z="1", a="2")
    registry.inc("a_metric", 1)
    payload = registry.to_json_dict()
    json.dumps(payload)  # must not raise
    assert list(payload) == ["a_metric", "b_metric"]
    assert payload["b_metric"]["values"][0]["labels"] == {
        "a": "2", "z": "1",
    }


def test_fold_metrics_snapshot():
    snapshot = MetricsSnapshot(
        jobs=2,
        stage_seconds={"phase1": 1.5, "analyze": 0.5},
        stage_tasks={"phase1": 3},
        cache_hits={"phase1": 2},
        cache_misses={"phase2": 1},
        cache_bad_entries={},
        cache_evictions={},
        analyze={"webs_recomputed": 4},
        audit={"functions_checked": 7, "calls_checked": 9,
               "violation_count": 0},
    )
    registry = MetricsRegistry()
    fold_metrics_snapshot(registry, snapshot)
    assert registry.value("repro_scheduler_jobs") == 2
    assert registry.value(
        "repro_stage_seconds_total", stage="phase1"
    ) == pytest.approx(1.5)
    assert registry.value("repro_stage_tasks_total", stage="phase1") == 3
    assert registry.value(
        "repro_cache_events_total", stage="phase1", outcome="hits"
    ) == 2
    assert registry.value(
        "repro_cache_events_total", stage="phase2", outcome="misses"
    ) == 1
    assert registry.value(
        "repro_analyze_total", counter="webs_recomputed"
    ) == 4
    assert registry.value("repro_audit_functions_checked") == 7
    assert registry.value("repro_audit_violations") == 0


def test_fold_audit_violations_by_check():
    registry = MetricsRegistry()
    fold_audit(
        registry,
        {
            "functions_checked": 1,
            "calls_checked": 2,
            "violation_count": 3,
            "violations_by_check": {"callee-saved": 2, "mspill": 1},
        },
    )
    assert registry.value(
        "repro_audit_violations_total", check="callee-saved"
    ) == 2
    assert registry.value(
        "repro_audit_violations_total", check="mspill"
    ) == 1


class _FakeDatabase:
    def __init__(self, clusters):
        self.clusters = clusters


def test_cluster_owner_map_roots_attribute_to_themselves():
    database = _FakeDatabase(
        [
            ClusterRecord(root="a", members=frozenset({"b", "c"})),
            # "c" is itself a nested root: its own traffic is its own.
            ClusterRecord(root="c", members=frozenset({"d"})),
        ]
    )
    owner = cluster_owner_map(database)
    assert owner["b"] == "a"
    assert owner["d"] == "c"
    assert owner["a"] == "a"
    assert owner["c"] == "c"


def test_fold_execution_attributes_per_cluster():
    stats = ExecutionStats()
    stats.cycles = 100
    stats.instructions = 90
    stats.save_restore_executed = 12
    stats.per_procedure = {
        "root": ProcedureStats(
            cycles=60, instructions=55, loads=4, stores=2, save_restore=8
        ),
        "leaf": ProcedureStats(
            cycles=30, instructions=25, loads=1, stores=1, save_restore=4
        ),
        "other": ProcedureStats(
            cycles=10, instructions=10, loads=0, stores=0, save_restore=0
        ),
    }
    database = _FakeDatabase(
        [ClusterRecord(root="root", members=frozenset({"leaf"}))]
    )
    registry = MetricsRegistry()
    fold_execution(registry, stats, database)
    assert registry.value("repro_run_cycles") == 100
    assert registry.value("repro_run_save_restore_executed") == 12
    assert registry.value(
        "repro_procedure_cycles_total", procedure="leaf"
    ) == 30
    assert registry.value(
        "repro_procedure_memrefs_total", procedure="root"
    ) == 6
    # leaf's counters roll up into its root; "other" is unclustered.
    assert registry.value(
        "repro_cluster_cycles_total", root="root"
    ) == 90
    assert registry.value(
        "repro_cluster_save_restore_total", root="root"
    ) == 12
    assert registry.value(
        "repro_cluster_cycles_total", root="<none>"
    ) == 10


def test_unified_registry_composes_all_surfaces():
    snapshot = MetricsSnapshot(
        jobs=1,
        stage_seconds={"phase1": 0.1},
        stage_tasks={"phase1": 1},
        cache_hits={},
        cache_misses={},
        cache_bad_entries={},
        cache_evictions={},
        analyze={},
        audit={},
    )
    stats = ExecutionStats()
    stats.cycles = 5
    registry = unified_registry(snapshot=snapshot, stats=stats)
    assert registry.value("repro_scheduler_jobs") == 1
    assert registry.value("repro_run_cycles") == 5
    # All-default call answers an empty but valid registry.
    assert unified_registry().names() == []
