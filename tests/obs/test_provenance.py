"""Provenance completeness: every decision is narrated, exactly once.

The contract under test (ISSUE satellite d): for the real workloads
under every Table 4 configuration, each eligible global appears exactly
once in the ``global-decision`` stream — promoted with registers or
rejected with machine-readable reasons — and every ineligible global is
reported with its screening reasons.  Separately, the simulator's
per-procedure attribution must account for every cycle of the program
total.
"""

import pytest

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.driver import analyze_program
from repro.analyzer.options import AnalyzerOptions
from repro.callgraph.dataflow import classify_globals
from repro.driver.scheduler import CompilationScheduler
from repro.machine.profiler import ProfileData
from repro.machine.simulator import Simulator, run_executable
from repro.obs.provenance import (
    events_of,
    explain_global,
    format_explanation,
)
from repro.obs.tracer import Tracer, activate
from repro.workloads import get_workload

WORKLOADS = ("othello", "dhrystone")
CONFIGS = ("A", "B", "C", "D", "E", "F")

_PHASE1: dict = {}
_PROFILES: dict = {}


def _phase1(workload_name):
    """Phase-1 results, computed once per workload for the module."""
    if workload_name not in _PHASE1:
        workload = get_workload(workload_name)
        with CompilationScheduler() as scheduler:
            _PHASE1[workload_name] = scheduler.run_phase1(
                workload.sources
            )
    return _PHASE1[workload_name]


def _profile(workload_name):
    """Call-count profile for configs B/F, computed once per workload."""
    if workload_name not in _PROFILES:
        workload = get_workload(workload_name)
        phase1 = _phase1(workload_name)
        with CompilationScheduler() as scheduler:
            executable = scheduler.compile_with_database(
                phase1, ProgramDatabase()
            )
        stats = run_executable(executable, workload.max_cycles)
        _PROFILES[workload_name] = ProfileData.from_stats(stats)
    return _PROFILES[workload_name]


def _trace_analysis(workload_name, config):
    summaries = [result.summary for result in _phase1(workload_name)]
    profile = _profile(workload_name) if config in ("B", "F") else None
    options = AnalyzerOptions.config(config, profile)
    tracer = Tracer()
    with activate(tracer):
        database = analyze_program(summaries, options)
    return summaries, tracer.records, database


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_eligible_global_decided_exactly_once(workload, config):
    summaries, records, _database = _trace_analysis(workload, config)
    classes = classify_globals(summaries)
    eligible = sorted(
        name for name, reasons in classes.items() if not reasons
    )
    ineligible = sorted(
        name for name, reasons in classes.items() if reasons
    )
    assert eligible, "workload must exercise the promotion machinery"

    decisions = events_of(records, "global-decision")
    assert sorted(d["name"] for d in decisions) == eligible
    for decision in decisions:
        if decision["decision"] == "promoted":
            assert decision["registers"], decision
            assert decision["reasons"] == [], decision
        else:
            assert decision["decision"] == "rejected", decision
            assert decision["reasons"], decision
            assert decision["registers"] == [], decision

    marked = events_of(records, "global-ineligible")
    assert sorted(payload["name"] for payload in marked) == ineligible
    for payload in marked:
        assert payload["reasons"], payload


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_promoted_decisions_match_database(workload, config):
    _summaries, records, database = _trace_analysis(workload, config)
    promoted_in_db = set()
    for directives in database.procedures.values():
        for entry in directives.promoted:
            promoted_in_db.add(entry.name)
    promoted_in_trace = {
        decision["name"]
        for decision in events_of(records, "global-decision")
        if decision["decision"] == "promoted"
    }
    assert promoted_in_trace == promoted_in_db


@pytest.mark.parametrize("workload", WORKLOADS)
def test_per_procedure_cycles_sum_to_program_total(workload):
    workload_def = get_workload(workload)
    tracer = Tracer()
    with CompilationScheduler(trace=tracer) as scheduler:
        phase1 = scheduler.run_phase1(workload_def.sources)
        database = scheduler.analyze(
            [result.summary for result in phase1],
            AnalyzerOptions.config("C"),
        )
        executable = scheduler.compile_with_database(phase1, database)
        with activate(tracer):
            stats = Simulator(
                executable,
                volatile_registers=(
                    database.convention_volatile_registers()
                ),
            ).run(workload_def.max_cycles)

    assert stats.per_procedure
    totals = stats.per_procedure.values()
    assert sum(entry.cycles for entry in totals) == stats.cycles
    assert sum(
        entry.instructions for entry in totals
    ) == stats.instructions
    assert sum(
        entry.save_restore for entry in totals
    ) == stats.save_restore_executed

    # The trace's execution event carries the same attribution.
    execution = events_of(tracer.records, "execution")[-1]
    assert execution["cycles"] == stats.cycles
    assert execution["save_restore_executed"] == (
        stats.save_restore_executed
    )
    assert sum(
        entry["cycles"] for entry in execution["per_procedure"].values()
    ) == stats.cycles


def test_why_promoted_global_othello():
    """Acceptance: a promoted global explains its coloring win."""
    _summaries, records, database = _trace_analysis("othello", "C")
    explanation = explain_global(records, "passes")
    assert explanation["status"] == "promoted"
    assert explanation["registers"]
    colored = [
        web for web in explanation["webs"] if web["status"] == "colored"
    ]
    assert colored
    assert colored[0]["register"] in explanation["registers"]
    assert colored[0]["benefit"] is not None
    assert colored[0]["entry_cost"] is not None
    text = format_explanation(explanation)
    assert "promoted" in text
    assert f"r{explanation['registers'][0]}" in text

    # Database-only reconstruction agrees on the verdict.
    from_db = explain_global(database, "passes")
    assert from_db["status"] == "promoted"
    assert from_db["registers"] == explanation["registers"]


def test_why_not_coloring_rejected_global_othello():
    """Acceptance: a coloring-rejected global names the winner webs."""
    _summaries, records, database = _trace_analysis("othello", "C")
    rejected = [
        decision["name"]
        for decision in events_of(records, "global-decision")
        if decision["decision"] == "rejected"
        and "lost-coloring" in decision["reasons"]
    ]
    assert rejected, "config C on othello must reject some globals"
    name = rejected[0]

    explanation = explain_global(records, name)
    assert explanation["status"] == "rejected"
    assert "lost-coloring" in explanation["reasons"]
    uncolored = [
        web
        for web in explanation["webs"]
        if web["status"] == "uncolored"
    ]
    assert uncolored
    winners = uncolored[0]["winners"]
    assert winners, "the losing web must name its interfering winners"
    promoted = {
        decision["name"]
        for decision in events_of(records, "global-decision")
        if decision["decision"] == "promoted"
    }
    for winner in winners:
        assert winner["variable"] in promoted
        assert winner["register"] is not None
    text = format_explanation(explanation)
    assert "lost to web" in text

    # The database reconstructs the same winners from interference.
    from_db = explain_global(database, name)
    assert from_db["status"] == "rejected"
    db_winner_ids = {
        winner["web_id"]
        for web in from_db["webs"]
        if web["status"] == "uncolored"
        for winner in web["winners"]
    }
    trace_winner_ids = {winner["web_id"] for winner in winners}
    assert db_winner_ids == trace_winner_ids


def test_explain_unknown_global():
    _summaries, records, database = _trace_analysis("dhrystone", "C")
    assert explain_global(records, "no_such")["status"] == "unknown"
    assert explain_global(database, "no_such")["status"] == "unknown"


def test_ineligible_global_explained():
    _summaries, records, _database = _trace_analysis("othello", "C")
    explanation = explain_global(records, "board")
    assert explanation["status"] == "ineligible"
    assert "address-taken" in explanation["reasons"]
