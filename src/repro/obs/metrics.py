"""Unified metrics registry.

One registry with three metric types — monotonically increasing
**counters**, point-in-time **gauges**, and bucketed **histograms** —
plus text and JSON exporters, and *fold* functions that pour every
existing instrumentation surface into it:

* :class:`~repro.driver.scheduler.MetricsSnapshot` (stage wall-clock,
  task counts, cache counters, incremental ``analyze`` counters, the
  last audit summary);
* :class:`~repro.incremental.engine.InvalidationReport`;
* post-link audit summaries;
* :class:`~repro.machine.simulator.ExecutionStats`, including the new
  per-procedure counters, attributed per cluster root against a
  :class:`~repro.analyzer.database.ProgramDatabase`.

Metrics are identified by name plus a sorted label set, prometheus
style; the text exporter renders the conventional exposition format so
the output can be scraped or diffed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default histogram bucket upper bounds; wide because observed values
#: range from fractions of a second to hundreds of millions of cycles.
DEFAULT_BUCKETS = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

#: The one bucket schema for wall-clock histograms, shared by the
#: service request-latency histograms and the per-phase compile
#: histograms so their prometheus exposition stays structurally stable
#: across runs and directly comparable between metric families.
#: Explicit log-spaced bounds (1/2.5/5 per decade) from 100µs to one
#: minute — request latencies and single phases both land inside.
SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 60.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


@dataclass
class _Histogram:
    buckets: tuple
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def to_json(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Name+labels -> value store with counter/gauge/histogram types."""

    def __init__(self):
        # name -> {"type": ..., "values": {label_key: value|_Histogram}}
        self._families: dict = {}

    # -- writing ----------------------------------------------------------

    def _family(self, name: str, type_: str) -> dict:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = {"type": type_, "values": {}}
        elif family["type"] != type_:
            raise ValueError(
                f"metric {name!r} is a {family['type']}, not a {type_}"
            )
        return family

    def inc(self, name: str, amount=1, **labels) -> None:
        """Add ``amount`` to the counter ``name``."""
        values = self._family(name, "counter")["values"]
        key = _label_key(labels)
        values[key] = values.get(key, 0) + amount

    def set_gauge(self, name: str, value, **labels) -> None:
        """Set the gauge ``name`` to ``value``."""
        self._family(name, "gauge")["values"][_label_key(labels)] = value

    def observe(self, name: str, value, buckets=DEFAULT_BUCKETS,
                **labels) -> None:
        """Record one observation in the histogram ``name``."""
        values = self._family(name, "histogram")["values"]
        key = _label_key(labels)
        histogram = values.get(key)
        if histogram is None:
            histogram = values[key] = _Histogram(tuple(buckets))
        histogram.observe(value)

    # -- reading ----------------------------------------------------------

    def value(self, name: str, **labels):
        """Current value of a counter/gauge (None when unset)."""
        family = self._families.get(name)
        if family is None:
            return None
        return family["values"].get(_label_key(labels))

    def names(self) -> list:
        return sorted(self._families)

    # -- exporters --------------------------------------------------------

    def to_json_dict(self) -> dict:
        out = {}
        for name in sorted(self._families):
            family = self._families[name]
            rendered = []
            for key in sorted(family["values"]):
                value = family["values"][key]
                rendered.append(
                    {
                        "labels": dict(key),
                        "value": (
                            value.to_json()
                            if isinstance(value, _Histogram)
                            else value
                        ),
                    }
                )
            out[name] = {"type": family["type"], "values": rendered}
        return out

    def to_text(self) -> str:
        """Prometheus-style exposition text."""
        lines = []
        for name in sorted(self._families):
            family = self._families[name]
            lines.append(f"# TYPE {name} {family['type']}")
            for key in sorted(family["values"]):
                value = family["values"][key]
                if isinstance(value, _Histogram):
                    cumulative = 0
                    for bound, count in zip(value.buckets, value.counts):
                        cumulative += count
                        bucket_key = key + (("le", f"{bound:g}"),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} "
                            f"{cumulative}"
                        )
                    cumulative += value.counts[-1]
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_format_labels(inf_key)} "
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {value.total:g}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {value.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{value:g}" if isinstance(value, float)
                        else f"{name}{_format_labels(key)} {value}"
                    )
        return "\n".join(lines) + "\n"


# -- fold functions --------------------------------------------------------


def fold_metrics_snapshot(registry: MetricsRegistry, snapshot) -> None:
    """Fold a scheduler :class:`MetricsSnapshot` into ``registry``."""
    registry.set_gauge("repro_scheduler_jobs", snapshot.jobs)
    for stage, seconds in snapshot.stage_seconds.items():
        registry.inc("repro_stage_seconds_total", seconds, stage=stage)
    for stage, count in snapshot.stage_tasks.items():
        registry.inc("repro_stage_tasks_total", count, stage=stage)
    cache_families = (
        ("hits", snapshot.cache_hits),
        ("misses", snapshot.cache_misses),
        ("bad_entries", snapshot.cache_bad_entries),
        ("evictions", snapshot.cache_evictions),
    )
    for outcome, counters in cache_families:
        for stage, count in counters.items():
            registry.inc(
                "repro_cache_events_total", count,
                stage=stage, outcome=outcome,
            )
    for counter, count in snapshot.analyze.items():
        registry.inc("repro_analyze_total", count, counter=counter)
    if snapshot.audit:
        fold_audit(registry, snapshot.audit)


def fold_audit(registry: MetricsRegistry, summary: dict) -> None:
    """Fold a post-link audit summary (``AuditReport.summary()``)."""
    registry.set_gauge(
        "repro_audit_functions_checked",
        summary.get("functions_checked", 0),
    )
    registry.set_gauge(
        "repro_audit_calls_checked", summary.get("calls_checked", 0)
    )
    registry.set_gauge(
        "repro_audit_violations", summary.get("violation_count", 0)
    )
    for check, count in summary.get("violations_by_check", {}).items():
        registry.inc(
            "repro_audit_violations_total", count, check=check
        )


def fold_invalidation(registry: MetricsRegistry, report) -> None:
    """Fold an incremental :class:`InvalidationReport`."""
    registry.inc("repro_invalidation_runs_total", mode=report.mode)
    if report.reason:
        registry.inc(
            "repro_invalidation_fallbacks_total", reason=report.reason
        )
    for what, reused, recomputed in (
        ("webs", report.webs_reused, report.webs_recomputed),
        ("clusters", report.clusters_reused, report.clusters_recomputed),
    ):
        registry.inc(
            "repro_invalidation_items_total", reused,
            item=what, outcome="reused",
        )
        registry.inc(
            "repro_invalidation_items_total", recomputed,
            item=what, outcome="recomputed",
        )
    registry.set_gauge(
        "repro_invalidation_fraction_reanalyzed",
        report.fraction_reanalyzed,
    )


def cluster_owner_map(database) -> dict:
    """procedure name -> the cluster root its counters attribute to.

    Non-root members attribute to their cluster's root; roots attribute
    to themselves (each root executes its own migrated spill code, so
    its traffic is its own), even when nested inside a parent cluster.
    """
    owner: dict = {}
    for cluster in database.clusters:
        for member in cluster.members:
            owner[member] = cluster.root
    for cluster in database.clusters:
        owner[cluster.root] = cluster.root
    return owner


def fold_execution(registry: MetricsRegistry, stats,
                   database=None) -> None:
    """Fold one run's :class:`ExecutionStats`; with a ``database``,
    per-procedure counters are additionally attributed per cluster
    root."""
    registry.set_gauge("repro_run_cycles", stats.cycles)
    registry.set_gauge("repro_run_instructions", stats.instructions)
    registry.set_gauge(
        "repro_run_memory_references", stats.memory_references
    )
    registry.set_gauge(
        "repro_run_singleton_references", stats.singleton_references
    )
    registry.set_gauge(
        "repro_run_save_restore_executed", stats.save_restore_executed
    )
    for name, entry in sorted(stats.per_procedure.items()):
        registry.inc(
            "repro_procedure_cycles_total", entry.cycles, procedure=name
        )
        registry.inc(
            "repro_procedure_memrefs_total",
            entry.loads + entry.stores,
            procedure=name,
        )
        registry.inc(
            "repro_procedure_save_restore_total",
            entry.save_restore,
            procedure=name,
        )
        registry.observe(
            "repro_procedure_cycles_histogram", entry.cycles
        )
    if database is not None and stats.per_procedure:
        owner = cluster_owner_map(database)
        for name, entry in sorted(stats.per_procedure.items()):
            root = owner.get(name, "<none>")
            registry.inc(
                "repro_cluster_cycles_total", entry.cycles, root=root
            )
            registry.inc(
                "repro_cluster_save_restore_total",
                entry.save_restore,
                root=root,
            )


def unified_registry(snapshot=None, stats=None, database=None,
                     audit=None, invalidation=None) -> MetricsRegistry:
    """Build one registry from whichever surfaces the caller has."""
    registry = MetricsRegistry()
    if snapshot is not None:
        fold_metrics_snapshot(registry, snapshot)
    if audit is not None:
        fold_audit(registry, audit)
    if invalidation is not None:
        fold_invalidation(registry, invalidation)
    if stats is not None:
        fold_execution(registry, stats, database)
    return registry
