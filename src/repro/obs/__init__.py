"""Allocation observability: tracing, provenance, metrics, reporting.

The analyzer makes thousands of interdependent decisions per program —
web formation, interference coloring, cluster selection, register-set
assignment — and the scheduler, incremental engine, and auditor judge
those decisions.  This package is what lets a human (or a later tool)
*explain* them:

* :mod:`repro.obs.tracer` — zero-dependency structured event/span
  tracer producing deterministic JSONL streams;
* :mod:`repro.obs.provenance` — machine-readable reason records for
  every promotion, rejection, and spill-motion decision, queryable via
  :func:`~repro.obs.provenance.explain_global` /
  :func:`~repro.obs.provenance.explain_procedure`;
* :mod:`repro.obs.metrics` — a unified counter/gauge/histogram registry
  folding scheduler, incremental, audit, and simulator counters into
  one exportable view;
* :mod:`repro.obs.flame` — span-stream profiling: collapsed-stack
  flamegraph folding, self-time tables, per-request latency
  breakdowns over daemon trace streams;
* :mod:`repro.obs.sentinel` — the perf-regression sentinel judging
  each bench session against the tracked benchmark history;
* :mod:`repro.obs.report` — the ``repro-explain`` CLI rendering
  paper-style allocation reports, answering ``why`` / ``why-not``
  queries, and fronting the ``flame`` / ``slow`` / ``bench`` views.

See ``docs/OBSERVABILITY.md`` for the event schema and usage.
"""

from repro.obs.flame import (
    fold_spans,
    render_collapsed,
    request_summaries,
    self_time_table,
    slowest_requests,
    span_tree,
)
from repro.obs.metrics import MetricsRegistry, unified_registry
from repro.obs.report import compile_workload, render_report, report_data
from repro.obs.provenance import (
    explain_global,
    explain_procedure,
    format_explanation,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    activate,
    canonicalize_request_trace,
    canonicalize_trace,
    current_tracer,
    read_trace,
    suppressed,
    trace_groups,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "Tracer",
    "activate",
    "canonicalize_request_trace",
    "canonicalize_trace",
    "compile_workload",
    "current_tracer",
    "explain_global",
    "explain_procedure",
    "fold_spans",
    "format_explanation",
    "read_trace",
    "render_collapsed",
    "render_report",
    "report_data",
    "request_summaries",
    "self_time_table",
    "slowest_requests",
    "span_tree",
    "suppressed",
    "trace_groups",
    "unified_registry",
]
