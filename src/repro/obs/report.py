"""``repro-explain``: paper-style allocation reports from a trace.

The CLI compiles a registered workload under one of the paper's Table 4
configurations (or loads a previously saved ``REPRO_TRACE`` JSONL file)
and renders what the allocator *decided* and what it *cost*:

* a global-promotion table in the spirit of the paper's Tables 1-2 —
  per eligible global: webs formed, coloring outcome, registers,
  rejection reasons;
* a per-cluster spill-code-motion summary (section 4.2.3) — which
  MSPILL registers migrated to each cluster root and which stayed put;
* per-procedure execution attribution (Tables 4-5 flavor) — cycles,
  memory references, and save/restore traffic, rolled up per cluster;
* the post-link audit summary when verification ran.

Everything is rendered from the trace record stream alone, so
``--from-trace`` and a fresh compile share one code path.

Three profiling/sentinel commands ride on the same trace plumbing:
``flame`` folds a span stream (a compile trace or a daemon's
``REPRO_SERVICE_TRACE`` stream) into collapsed stacks plus a self-time
table, ``slow`` ranks a daemon trace's requests by latency with
queue-wait and per-phase breakdowns, and ``bench`` renders the
benchmark history — ``bench --check`` is the perf-regression sentinel
(:mod:`repro.obs.sentinel`), exiting non-zero when the newest history
point regressed past the threshold.

Usage::

    repro-explain [report] --workload othello --config C
    repro-explain why passes --workload othello
    repro-explain why-not black_wins --workload othello
    repro-explain proc main --workload othello
    repro-explain metrics --workload othello
    repro-explain report --from-trace trace.jsonl
    repro-explain flame --from-trace service.jsonl --out out.folded
    repro-explain slow --from-trace service.jsonl --top 5
    repro-explain bench --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from repro.obs.provenance import (
    events_of,
    explain_global,
    explain_procedure,
    format_explanation,
)
from repro.obs.tracer import Tracer, activate, canonicalize_trace, read_trace

COMMANDS = (
    "report", "why", "why-not", "proc", "metrics",
    "flame", "slow", "bench",
)


# -- compilation front-end -------------------------------------------------


def _collect_profile(workload, opt_level: int, jobs: int):
    """The gprof step for configs B/F, kept out of the main trace.

    Uses a throwaway untraced scheduler: the baseline compile-and-run
    is scaffolding for call counts, not part of the allocation story
    the report narrates.
    """
    from repro.analyzer.database import ProgramDatabase
    from repro.driver.scheduler import CompilationScheduler
    from repro.machine.profiler import ProfileData
    from repro.machine.simulator import run_executable
    from repro.obs.tracer import NULL_TRACER

    with CompilationScheduler(
        jobs=jobs, trace=NULL_TRACER, verify=False
    ) as scheduler:
        phase1 = scheduler.run_phase1(workload.sources, opt_level)
        executable = scheduler.compile_with_database(
            phase1, ProgramDatabase(), opt_level
        )
    stats = run_executable(executable, workload.max_cycles)
    return ProfileData.from_stats(stats)


def compile_workload(
    workload_name: str,
    config: str = "C",
    opt_level: int = 2,
    jobs: int = 1,
    save_trace=None,
    verify: bool | None = None,
):
    """Compile + simulate one workload under full tracing.

    Returns ``(records, snapshot, stats, database, invalidation)``;
    ``records`` is the in-memory trace (also written to ``save_trace``
    when given).
    """
    from repro.analyzer.options import AnalyzerOptions
    from repro.driver.scheduler import CompilationScheduler
    from repro.machine.simulator import Simulator
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    tracer = Tracer(save_trace)
    try:
        profile = None
        if config.upper() in ("B", "F"):
            profile = _collect_profile(workload, opt_level, jobs)
        options = AnalyzerOptions.config(config, profile)
        with CompilationScheduler(
            jobs=jobs, trace=tracer, verify=verify
        ) as scheduler:
            phase1 = scheduler.run_phase1(workload.sources, opt_level)
            database = scheduler.analyze(
                [result.summary for result in phase1], options
            )
            executable = scheduler.compile_with_database(
                phase1, database, opt_level
            )
            with activate(tracer):
                simulator = Simulator(
                    executable,
                    volatile_registers=(
                        database.convention_volatile_registers()
                    ),
                )
                stats = simulator.run(workload.max_cycles)
            snapshot = scheduler.metrics_snapshot()
            invalidation = scheduler.last_invalidation_report
    finally:
        tracer.close()
    return tracer.records, snapshot, stats, database, invalidation


# -- report model ----------------------------------------------------------


def _last(payloads: list) -> dict:
    return payloads[-1] if payloads else {}


def report_data(records) -> dict:
    """Distill a record stream into the report's structured form."""
    records = canonicalize_trace(records)

    modules = events_of(records, "module-phase1")
    link = _last(events_of(records, "link"))
    audit = _last(events_of(records, "audit"))
    execution = _last(events_of(records, "execution"))

    webs_formed = events_of(records, "web-formed")
    screened = Counter(
        payload["reason"]
        for payload in events_of(records, "web-screened")
    )
    colored = {
        payload["web_id"]: payload
        for payload in events_of(records, "web-colored")
    }
    uncolored = {
        payload["web_id"]: payload
        for payload in events_of(records, "web-uncolored")
    }
    rejected = {
        payload["web_id"]: payload
        for payload in events_of(records, "web-rejected")
    }

    globals_table = []
    for data in events_of(records, "global-decision"):
        globals_table.append(
            {
                "global": data["name"],
                "status": data["decision"],
                "registers": list(data.get("registers", ())),
                "webs": list(data.get("webs", ())),
                "reasons": list(data.get("reasons", ())),
            }
        )
    ineligible = [
        {"global": data["name"], "reasons": list(data["reasons"])}
        for data in events_of(records, "global-ineligible")
    ]

    clusters = []
    migrated = events_of(records, "mspill-migrated")
    kept = events_of(records, "mspill-kept")
    owner = {}
    for data in events_of(records, "cluster-formed"):
        root = data["root"]
        for member in data["members"]:
            owner[member] = root
        moved: set = set()
        for move in migrated:
            if move["cluster_root"] == root:
                moved.update(move["registers"])
        stayed: set = set()
        for keep in kept:
            if keep["cluster_root"] == root:
                stayed.update(keep["registers"])
        clusters.append(
            {
                "root": root,
                "members": list(data["members"]),
                "migrated_registers": sorted(moved),
                "kept_registers": sorted(stayed),
            }
        )

    procedures = []
    cluster_cycles: Counter = Counter()
    cluster_saves: Counter = Counter()
    total_cycles = execution.get("cycles", 0) or 0
    for name, counters in sorted(
        execution.get("per_procedure", {}).items(),
        key=lambda item: (-item[1]["cycles"], item[0]),
    ):
        root = owner.get(name, "<none>")
        cluster_cycles[root] += counters["cycles"]
        cluster_saves[root] += counters["save_restore"]
        procedures.append(
            {
                "procedure": name,
                "cycles": counters["cycles"],
                "percent": (
                    100.0 * counters["cycles"] / total_cycles
                    if total_cycles
                    else 0.0
                ),
                "memory_references": (
                    counters["loads"] + counters["stores"]
                ),
                "save_restore": counters["save_restore"],
                "cluster": root,
            }
        )

    return {
        "modules": modules,
        "link": link,
        "globals": globals_table,
        "ineligible": ineligible,
        "web_stats": {
            "formed": len(webs_formed),
            "screened": dict(sorted(screened.items())),
            "colored": len(colored),
            "uncolored": len(uncolored),
            "rejected": len(rejected),
        },
        "clusters": clusters,
        "execution": {
            "cycles": execution.get("cycles"),
            "instructions": execution.get("instructions"),
            "memory_references": execution.get("memory_references"),
            "save_restore_executed": execution.get(
                "save_restore_executed"
            ),
            "exit_code": execution.get("exit_code"),
            "procedures": procedures,
            "cluster_cycles": dict(sorted(cluster_cycles.items())),
            "cluster_save_restore": dict(sorted(cluster_saves.items())),
        },
        "audit": audit,
    }


# -- text rendering --------------------------------------------------------


def _table(headers: list, rows: list) -> str:
    """Fixed-width text table (left-aligned, two-space gutters)."""
    rendered = [
        [str(cell) for cell in row] for row in [headers] + list(rows)
    ]
    widths = [
        max(len(row[col]) for row in rendered)
        for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(rendered):
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append(
                "  ".join("-" * width for width in widths)
            )
    return "\n".join(lines)


def _csv(items) -> str:
    return ",".join(str(item) for item in items) if items else "-"


def render_report(records, title: str = "") -> str:
    """The paper-style allocation report as plain text."""
    data = report_data(records)
    out: list = []
    if title:
        out.append(f"Allocation report: {title}")
        out.append("")

    if data["modules"]:
        out.append("== Modules (phase 1) ==")
        out.append(
            _table(
                ["module", "functions", "cached"],
                [
                    [
                        mod["module"],
                        _csv(mod["functions"]),
                        "yes" if mod["cached"] else "no",
                    ]
                    for mod in data["modules"]
                ],
            )
        )
        out.append("")

    out.append("== Global promotion (paper Tables 1-2) ==")
    if data["globals"]:
        out.append(
            _table(
                ["global", "status", "registers", "webs", "reasons"],
                [
                    [
                        row["global"],
                        row["status"],
                        _csv(f"r{r}" for r in row["registers"]),
                        _csv(f"#{w}" for w in row["webs"]),
                        _csv(row["reasons"]),
                    ]
                    for row in data["globals"]
                ],
            )
        )
    else:
        out.append("(no eligible globals)")
    stats = data["web_stats"]
    screened_total = sum(stats["screened"].values())
    out.append(
        "webs: {formed} formed, {screened} screened, {colored} colored,"
        " {uncolored} uncolored, {rejected} rejected".format(
            formed=stats["formed"],
            screened=screened_total,
            colored=stats["colored"],
            uncolored=stats["uncolored"],
            rejected=stats["rejected"],
        )
    )
    if stats["screened"]:
        out.append(
            "screening: "
            + ", ".join(
                f"{reason}={count}"
                for reason, count in stats["screened"].items()
            )
        )
    if data["ineligible"]:
        out.append("")
        out.append("== Ineligible globals (section 3) ==")
        out.append(
            _table(
                ["global", "reasons"],
                [
                    [row["global"], _csv(row["reasons"])]
                    for row in data["ineligible"]
                ],
            )
        )
    out.append("")

    out.append("== Clusters (spill code motion, section 4.2.3) ==")
    if data["clusters"]:
        out.append(
            _table(
                ["root", "members", "migrated", "kept"],
                [
                    [
                        cluster["root"],
                        len(cluster["members"]),
                        _csv(
                            f"r{r}"
                            for r in cluster["migrated_registers"]
                        ),
                        _csv(
                            f"r{r}" for r in cluster["kept_registers"]
                        ),
                    ]
                    for cluster in data["clusters"]
                ],
            )
        )
    else:
        out.append("(no clusters formed)")
    out.append("")

    execution = data["execution"]
    if execution["procedures"]:
        out.append("== Per-procedure execution (overhead attribution) ==")
        out.append(
            _table(
                [
                    "procedure",
                    "cycles",
                    "%total",
                    "memrefs",
                    "save/restore",
                    "cluster",
                ],
                [
                    [
                        row["procedure"],
                        row["cycles"],
                        f"{row['percent']:.1f}",
                        row["memory_references"],
                        row["save_restore"],
                        row["cluster"],
                    ]
                    for row in execution["procedures"]
                ],
            )
        )
        out.append(
            "total: cycles={cycles} instructions={instructions}"
            " memrefs={memory_references}"
            " save/restore={save_restore_executed}"
            " exit={exit_code}".format(**execution)
        )
        out.append("")
        out.append("== Per-cluster attribution ==")
        out.append(
            _table(
                ["cluster root", "cycles", "save/restore"],
                [
                    [
                        root,
                        cycles,
                        execution["cluster_save_restore"].get(root, 0),
                    ]
                    for root, cycles in sorted(
                        execution["cluster_cycles"].items(),
                        key=lambda item: (-item[1], item[0]),
                    )
                ],
            )
        )
        out.append("")

    if data["audit"]:
        out.append("== Post-link audit ==")
        out.append(
            " ".join(
                f"{key}={value}"
                for key, value in sorted(data["audit"].items())
                if not isinstance(value, (dict, list))
            )
        )
        out.append("")

    return "\n".join(out).rstrip() + "\n"


def render_metrics(snapshot, stats, database, invalidation=None) -> str:
    """The unified registry's text exposition for one compile+run."""
    from repro.obs.metrics import unified_registry

    registry = unified_registry(
        snapshot=snapshot,
        stats=stats,
        database=database,
        invalidation=invalidation,
    )
    return registry.to_text()


def render_self_time(records, top: int = 20) -> str:
    """The flame view's text companion: heaviest self-time first."""
    from repro.obs.flame import self_time_table

    rows = self_time_table(records)[:top]
    if not rows:
        return "(no spans in trace)\n"
    return (
        _table(
            ["span", "self s", "total s", "count"],
            [
                [
                    row["label"],
                    f"{row['self_seconds']:.6f}",
                    f"{row['total_seconds']:.6f}",
                    row["count"],
                ]
                for row in rows
            ],
        )
        + "\n"
    )


def render_slow(records, top: int = 10) -> str:
    """Slowest daemon requests with waits and per-phase breakdown."""
    from repro.obs.flame import PHASE_SPANS, slowest_requests

    rows = slowest_requests(records, top=top)
    if not rows:
        return (
            "(no request spans in trace — is this a daemon "
            "REPRO_SERVICE_TRACE stream?)\n"
        )
    headers = ["trace", "req", "op", "seconds", "queue", "lock"]
    headers += list(PHASE_SPANS) + ["error"]
    body = []
    for row in rows:
        line = [
            row["trace"],
            row["request"],
            row["op"],
            f"{row['seconds']:.6f}",
            f"{row['queue_wait']:.6f}",
            f"{row['lock_wait']:.6f}",
        ]
        for phase in PHASE_SPANS:
            seconds = row["phases"].get(phase)
            line.append("-" if seconds is None else f"{seconds:.6f}")
        line.append(row["error"] or "-")
        body.append(line)
    return _table(headers, body) + "\n"


def _default_history_path() -> str:
    env = os.environ.get("REPRO_BENCH_HISTORY", "").strip()
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks", "BENCH_history.jsonl")


def run_bench_command(args) -> int:
    """``repro-explain bench``: history view / ``--check`` sentinel."""
    from repro.obs import sentinel

    history_path = args.history or _default_history_path()
    entries = sentinel.read_history(history_path)
    if args.check:
        regressions = sentinel.check_regressions(
            entries, threshold=args.threshold, window=args.window
        )
        if args.json:
            print(json.dumps(
                {
                    "history": history_path,
                    "points": len(entries),
                    "regressions": regressions,
                },
                indent=2,
            ))
        else:
            print(
                sentinel.format_check(
                    entries, regressions, threshold=args.threshold
                ),
                end="",
            )
        return 1 if regressions else 0
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    if not entries:
        print(f"no bench history at {history_path}")
        return 0
    print(f"bench history: {history_path} ({len(entries)} point(s))")
    print(
        _table(
            ["sha", "timestamp", "metrics"],
            [
                [
                    str(entry.get("sha", "?"))[:12],
                    entry.get("timestamp", "?"),
                    len(entry.get("metrics", {})),
                ]
                for entry in entries
            ],
        )
    )
    return 0


# -- CLI -------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description=(
            "Explain interprocedural register-allocation decisions "
            "from a compilation trace."
        ),
    )
    parser.add_argument(
        "command",
        choices=COMMANDS,
        nargs="?",
        default="report",
        help="report (default), why NAME, why-not NAME, proc NAME,"
        " metrics",
    )
    parser.add_argument(
        "name",
        nargs="?",
        help="global (why/why-not) or procedure (proc) to explain",
    )
    parser.add_argument(
        "--workload",
        default="othello",
        help="registered workload name (default: othello)",
    )
    parser.add_argument(
        "--config",
        default="C",
        help="paper Table 4 configuration A-F (default: C)",
    )
    parser.add_argument(
        "--opt-level", type=int, default=2, help="optimization level"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel compile jobs"
    )
    parser.add_argument(
        "--from-trace",
        metavar="PATH",
        help="render from a saved REPRO_TRACE JSONL instead of"
        " compiling",
    )
    parser.add_argument(
        "--save-trace",
        metavar="PATH",
        help="also write the trace JSONL here",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the post-link auditor (REPRO_VERIFY=1 also works)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="flame: write the collapsed-stack file here (stdout gets"
        " the self-time table instead)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="slow: how many requests to list (default: 10)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="bench: run the perf-regression sentinel (non-zero exit"
        " on regression)",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        help="bench: history JSONL (default:"
        " benchmarks/BENCH_history.jsonl, or REPRO_BENCH_HISTORY)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="bench --check: fractional regression threshold"
        " (default: 0.25, or REPRO_SENTINEL_THRESHOLD)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="bench --check: trailing baseline window (default: 5,"
        " or REPRO_SENTINEL_WINDOW)",
    )
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if not argv or argv[0].startswith("-"):
        argv.insert(0, "report")
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command in ("why", "why-not", "proc") and not args.name:
        parser.error(f"{args.command} requires a NAME argument")
    if args.command == "metrics" and args.from_trace:
        parser.error(
            "metrics folds scheduler/simulator state and cannot be"
            " rendered from a saved trace; drop --from-trace"
        )
    if args.command == "slow" and not args.from_trace:
        parser.error(
            "slow ranks daemon requests and needs --from-trace"
            " pointing at a REPRO_SERVICE_TRACE stream"
        )
    if args.command == "bench":
        return run_bench_command(args)

    snapshot = stats = database = invalidation = None
    if args.from_trace:
        records = read_trace(args.from_trace)
        title = os.path.basename(args.from_trace)
    else:
        verify = args.verify or None
        records, snapshot, stats, database, invalidation = (
            compile_workload(
                args.workload,
                config=args.config,
                opt_level=args.opt_level,
                jobs=args.jobs,
                save_trace=args.save_trace,
                verify=verify,
            )
        )
        title = (
            f"{args.workload}, config {args.config.upper()},"
            f" O{args.opt_level}"
        )

    if args.command == "report":
        if args.json:
            print(json.dumps(report_data(records), indent=2))
        else:
            print(render_report(records, title=title), end="")
        return 0

    if args.command == "flame":
        from repro.obs.flame import fold_spans, render_collapsed

        collapsed = render_collapsed(fold_spans(records))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(collapsed)
            print(f"wrote {args.out}")
            print(render_self_time(records), end="")
        elif args.json:
            print(json.dumps(fold_spans(records), indent=2))
        else:
            print(collapsed, end="")
        return 0

    if args.command == "slow":
        if args.json:
            from repro.obs.flame import slowest_requests

            print(json.dumps(
                slowest_requests(records, top=args.top), indent=2
            ))
        else:
            print(render_slow(records, top=args.top), end="")
        return 0

    if args.command == "metrics":
        print(
            render_metrics(snapshot, stats, database, invalidation),
            end="",
        )
        return 0

    if args.command == "proc":
        explanation = explain_procedure(records, args.name)
        if args.json:
            print(json.dumps(explanation, indent=2))
        else:
            print(format_explanation(explanation))
        return 0

    # why / why-not: one explanation path answers both questions.
    explanation = explain_global(records, args.name)
    if args.json:
        print(json.dumps(explanation, indent=2))
    else:
        print(format_explanation(explanation))
    return 1 if explanation["status"] == "unknown" else 0


if __name__ == "__main__":
    sys.exit(main())
