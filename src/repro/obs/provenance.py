"""Decision provenance: machine-readable reasons for every allocation
decision.

Every directive the analyzer writes into the
:class:`~repro.analyzer.database.ProgramDatabase` — and every
*rejection* along the way — is narrated into the ambient trace as a
typed event carrying the benefit/cost numbers that drove it.  This
module defines the reason-code vocabulary, and the query API that turns
a trace (or, with reduced detail, a bare database) back into an
explanation:

* :func:`explain_global` — why was this global promoted, and into which
  register — or why not: ineligible (and how), its webs screened out
  (and by which test), priority non-positive, or outcolored by which
  winning neighbor webs;
* :func:`explain_procedure` — a procedure's directives, cluster
  membership, spill-motion history, and (when the trace includes an
  ``execution`` event) its attributed runtime counters.

Reason codes map to paper sections as documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer, read_trace

# -- reason codes ----------------------------------------------------------

#: Global is not a word-sized scalar (section 4.1.2 eligibility).
REASON_NOT_SCALAR_WORD = "not-scalar-word"
#: Some module computed the global's address (section 4.1.2).
REASON_ADDRESS_TAKEN = "address-taken"
#: The global appears in a module's alias set (section 4.1.2).
REASON_ALIASED = "aliased"
#: Options requested no global promotion at all (config A).
REASON_PROMOTION_DISABLED = "promotion-disabled"
#: Web screening (section 4.1.3): reasons copied verbatim from
#: ``Web.discarded_reason``.
REASON_SCREENED_EXTERNAL = "external-caller"
REASON_SCREENED_SPARSE = "sparse"
REASON_SCREENED_SINGLE_LOW = "single-node-low-frequency"
REASON_SCREENED_STATIC_CROSS = "static-cross-module-entry"
#: Coloring (section 4.1.4): estimated benefit did not cover the web
#: entry/exit transfer cost.
REASON_NON_POSITIVE_PRIORITY = "non-positive-priority"
#: Coloring: every candidate register was held by an interfering web of
#: higher priority (the *winners* named in the explanation).
REASON_LOST_COLORING = "lost-coloring"
#: Blanket promotion (config-E style): global not among the selected.
REASON_BLANKET_NOT_SELECTED = "blanket-not-selected"
#: Spill motion (section 4.2.3): a save stayed at the nested root
#: because its register is not available on all paths from the parent.
REASON_NOT_AVAILABLE_ALL_PATHS = "not-available-on-all-paths"

#: Event types the provenance queries consume (emitted by the analyzer
#: driver, coloring, clusters, regsets, scheduler, and simulator).
EVENT_TYPES = (
    "global-ineligible",
    "global-decision",
    "web-formed",
    "web-screened",
    "web-colored",
    "web-uncolored",
    "web-rejected",
    "cluster-root-candidate",
    "cluster-formed",
    "mspill-migrated",
    "mspill-kept",
    "directive",
    "module-phase1",
    "module-phase2",
    "link",
    "audit",
    "execution",
)


def _records_from(source):
    """Normalize ``source`` to a record list, or None for a database."""
    if isinstance(source, Tracer):
        return source.records
    if isinstance(source, (list, tuple)):
        return list(source)
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        return read_trace(source)
    return None  # assume ProgramDatabase


def events_of(records, type_) -> list:
    """All event payloads of one type, in ordinal order."""
    return [
        record["data"]
        for record in records
        if record.get("ev") == "event" and record.get("type") == type_
    ]


# -- explain_global --------------------------------------------------------


def _web_entry(payload, status, **extra) -> dict:
    entry = {
        "web_id": payload.get("web_id"),
        "status": status,
        "nodes": payload.get("nodes", []),
        "priority": payload.get("priority"),
        "benefit": payload.get("benefit"),
        "entry_cost": payload.get("entry_cost"),
        "register": payload.get("register"),
        "reason": payload.get("reason"),
        "winners": payload.get("winners", []),
    }
    entry.update(extra)
    return entry


def _explain_global_from_trace(records, name) -> dict:
    for payload in events_of(records, "global-ineligible"):
        if payload["name"] == name:
            return {
                "name": name,
                "status": "ineligible",
                "reasons": list(payload.get("reasons", [])),
                "webs": [],
                "registers": [],
            }
    webs = []
    for type_, status in (
        ("web-screened", "screened"),
        ("web-rejected", "rejected"),
        ("web-uncolored", "uncolored"),
        ("web-colored", "colored"),
    ):
        for payload in events_of(records, type_):
            if payload.get("variable") == name:
                webs.append(_web_entry(payload, status))
    webs.sort(key=lambda entry: entry.get("web_id") or 0)
    for payload in events_of(records, "global-decision"):
        if payload["name"] == name:
            return {
                "name": name,
                "status": payload["decision"],
                "mode": payload.get("mode"),
                "reasons": list(payload.get("reasons", [])),
                "registers": list(payload.get("registers", [])),
                "webs": webs,
            }
    return {
        "name": name,
        "status": "unknown",
        "reasons": ["not-in-trace"],
        "registers": [],
        "webs": webs,
    }


def _explain_global_from_db(database, name) -> dict:
    """Database-only reconstruction (no benefit/cost numbers, but the
    winners of a lost coloring are recoverable from the web census)."""
    by_id = {record.web_id: record for record in database.webs}
    webs = []
    registers = []
    for record in database.webs:
        if record.variable != name:
            continue
        if record.colored:
            status, reason = "colored", None
            registers.append(record.register)
        elif record.discarded_reason == REASON_NON_POSITIVE_PRIORITY:
            status, reason = "rejected", record.discarded_reason
        elif record.discarded_reason is not None:
            status, reason = "screened", record.discarded_reason
        else:
            status, reason = "uncolored", REASON_LOST_COLORING
        winners = []
        if status == "uncolored":
            for other_id in sorted(record.interferes_with):
                other = by_id.get(other_id)
                if other is not None and other.colored:
                    winners.append(
                        {
                            "web_id": other.web_id,
                            "variable": other.variable,
                            "register": other.register,
                        }
                    )
        webs.append(
            {
                "web_id": record.web_id,
                "status": status,
                "nodes": sorted(record.nodes),
                "priority": record.priority,
                "benefit": None,
                "entry_cost": None,
                "register": record.register,
                "reason": reason,
                "winners": winners,
            }
        )
    promoted_procs = sorted(
        proc_name
        for proc_name, directives in database.procedures.items()
        if any(entry.name == name for entry in directives.promoted)
    )
    if promoted_procs or registers:
        status = "promoted"
        reasons = []
    elif webs:
        status = "rejected"
        reasons = sorted(
            {entry["reason"] for entry in webs if entry["reason"]}
        ) or [REASON_LOST_COLORING]
    else:
        status = "unknown"
        reasons = ["not-in-database"]
    return {
        "name": name,
        "status": status,
        "reasons": reasons,
        "registers": sorted(set(registers)),
        "webs": webs,
        "procedures": promoted_procs,
    }


def explain_global(source, name: str) -> dict:
    """Explain the promotion decision for global ``name``.

    ``source`` may be a trace (a :class:`~repro.obs.tracer.Tracer`, a
    record list, or a JSONL path) or a
    :class:`~repro.analyzer.database.ProgramDatabase`.  A trace carries
    the full benefit/cost numbers; a bare database reconstructs status,
    screening reasons, and coloring winners from the web census.
    """
    records = _records_from(source)
    if records is None:
        return _explain_global_from_db(source, name)
    return _explain_global_from_trace(records, name)


# -- explain_procedure -----------------------------------------------------


def _explain_procedure_from_db(database, name) -> dict:
    directives = database.get(name)
    from repro.analyzer.database import directive_payload

    cluster_root = None
    cluster_members = []
    for cluster in database.clusters:
        if cluster.root == name:
            cluster_root = name
            cluster_members = sorted(cluster.members)
        elif name in cluster.members and cluster_root is None:
            cluster_root = cluster.root
    return {
        "name": name,
        "directives": directive_payload(directives),
        "cluster_root": cluster_root,
        "cluster_members": cluster_members,
        "spill_motion": [],
        "execution": None,
    }


def explain_procedure(source, name: str) -> dict:
    """Explain a procedure's directives, cluster role, spill motion,
    and (trace-only) attributed runtime counters."""
    records = _records_from(source)
    if records is None:
        return _explain_procedure_from_db(source, name)
    explanation = {
        "name": name,
        "directives": None,
        "cluster_root": None,
        "cluster_members": [],
        "spill_motion": [],
        "execution": None,
    }
    for payload in events_of(records, "directive"):
        if payload["procedure"] == name:
            explanation["directives"] = {
                key: value
                for key, value in payload.items()
                if key != "procedure"
            }
    for payload in events_of(records, "cluster-formed"):
        if payload["root"] == name:
            explanation["cluster_root"] = name
            explanation["cluster_members"] = list(
                payload.get("members", [])
            )
        elif name in payload.get("members", []):
            if explanation["cluster_root"] is None:
                explanation["cluster_root"] = payload["root"]
    for type_ in ("mspill-migrated", "mspill-kept"):
        for payload in events_of(records, type_):
            if payload.get("node") == name or (
                type_ == "mspill-migrated"
                and payload.get("cluster_root") == name
            ):
                entry = dict(payload)
                entry["event"] = type_
                explanation["spill_motion"].append(entry)
    for payload in events_of(records, "execution"):
        per_procedure = payload.get("per_procedure", {})
        if name in per_procedure:
            explanation["execution"] = per_procedure[name]
    return explanation


# -- formatting ------------------------------------------------------------


def _format_web(entry) -> list:
    lines = [
        f"  web #{entry['web_id']}: {entry['status']}"
        + (
            f" -> r{entry['register']}"
            if entry.get("register") is not None
            else ""
        )
    ]
    if entry.get("priority") is not None:
        parts = [f"priority={entry['priority']:.2f}"]
        if entry.get("benefit") is not None:
            parts.append(f"benefit={entry['benefit']:.2f}")
        if entry.get("entry_cost") is not None:
            parts.append(f"entry_cost={entry['entry_cost']:.2f}")
        lines.append("    " + " ".join(parts))
    if entry.get("nodes"):
        lines.append("    nodes: " + ", ".join(entry["nodes"]))
    if entry.get("reason"):
        lines.append(f"    reason: {entry['reason']}")
    for winner in entry.get("winners", []):
        lines.append(
            f"    lost to web #{winner['web_id']} "
            f"({winner['variable']}) holding r{winner['register']}"
        )
    return lines


def format_explanation(explanation: dict) -> str:
    """Render an :func:`explain_global` / :func:`explain_procedure`
    result as human-readable text."""
    lines = []
    if "webs" in explanation:  # global explanation
        header = f"global {explanation['name']}: {explanation['status']}"
        if explanation.get("registers"):
            header += " -> " + ", ".join(
                f"r{register}" for register in explanation["registers"]
            )
        lines.append(header)
        for reason in explanation.get("reasons", []):
            lines.append(f"  reason: {reason}")
        for entry in explanation.get("webs", []):
            lines.extend(_format_web(entry))
        if explanation.get("procedures"):
            lines.append(
                "  promoted in: " + ", ".join(explanation["procedures"])
            )
    else:  # procedure explanation
        lines.append(f"procedure {explanation['name']}")
        if explanation.get("cluster_root"):
            role = (
                "cluster root"
                if explanation["cluster_root"] == explanation["name"]
                else f"member of cluster {explanation['cluster_root']}"
            )
            lines.append(f"  {role}")
            if explanation.get("cluster_members"):
                lines.append(
                    "  members: "
                    + ", ".join(explanation["cluster_members"])
                )
        directives = explanation.get("directives")
        if directives:
            for key in ("free", "caller", "callee", "mspill"):
                if key in directives:
                    regs = ", ".join(
                        f"r{register}" for register in directives[key]
                    )
                    lines.append(f"  {key.upper()}: {regs or '-'}")
            for promoted in directives.get("promoted", []):
                lines.append(
                    f"  promoted: {promoted['name']} -> "
                    f"r{promoted['register']}"
                    + (" (entry)" if promoted.get("is_entry") else "")
                )
        for entry in explanation.get("spill_motion", []):
            registers = ", ".join(
                f"r{register}" for register in entry.get("registers", [])
            )
            if entry["event"] == "mspill-migrated":
                lines.append(
                    f"  saves migrated up to {entry['cluster_root']}: "
                    f"{registers}"
                )
            else:
                lines.append(
                    f"  saves kept at {entry['node']}: {registers} "
                    f"({entry.get('reason')})"
                )
        execution = explanation.get("execution")
        if execution:
            lines.append(
                "  execution: "
                f"cycles={execution.get('cycles')} "
                f"memrefs={execution.get('loads', 0) + execution.get('stores', 0)} "
                f"save_restore={execution.get('save_restore')}"
            )
    return "\n".join(lines)
