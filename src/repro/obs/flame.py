"""Compile-phase profiling views over span streams.

The tracer's record stream (:mod:`repro.obs.tracer`) already carries a
full span tree per compilation — request, queue/lock waits, scheduler
phases, per-module work.  This module folds that tree into the two
classic profiler shapes:

* **collapsed stacks** (:func:`fold_spans` / :func:`render_collapsed`)
  — the ``a;b;c weight`` format every flamegraph renderer eats
  (Brendan Gregg's ``flamegraph.pl``, speedscope, the Firefox
  profiler).  Weights are *self-time* in integer microseconds: each
  span contributes its own wall-clock minus its children's, so the
  flame's widths add up instead of double-counting nested work;
* a **self-time table** (:func:`self_time_table`) — per span label,
  aggregate self seconds and visit counts, the "where does the time
  actually go" answer in text form;
* **per-request summaries** (:func:`request_summaries` /
  :func:`slowest_requests`) — for daemon trace streams: one row per
  ``request`` span with queue-wait, session-lock wait, and per-phase
  breakdown, the input of ``repro-explain slow``.

Everything here consumes plain record dicts, so an in-memory
``tracer.records`` list, a ``REPRO_TRACE`` file, and a daemon's
``REPRO_SERVICE_TRACE`` stream all share one code path.
"""

from __future__ import annotations

from repro.obs.tracer import trace_groups

#: Scheduler stage spans recognized by the per-request breakdown.
PHASE_SPANS = ("phase1", "analyze", "phase2", "link", "verify")


def span_tree(records) -> list:
    """Rebuild the span forest from one record stream.

    Returns root nodes (spans whose begin arrived with no span open);
    each node is ``{"name", "id", "data", "seconds", "children",
    "events"}``.  Reconstruction is purely stack-based on stream
    order, so per-request streams with restarting span ids parse the
    same way as one tracer's global stream.  Unclosed spans (a torn
    stream) keep ``seconds == 0.0``.
    """
    roots: list = []
    stack: list = []
    for record in records:
        kind = record.get("ev")
        if kind == "span-begin":
            node = {
                "name": record.get("name", "?"),
                "id": record.get("id"),
                "data": record.get("data") or {},
                "seconds": 0.0,
                "children": [],
                "events": [],
            }
            if stack:
                stack[-1]["children"].append(node)
            else:
                roots.append(node)
            stack.append(node)
        elif kind == "span-end":
            span_id = record.get("id")
            while stack:
                node = stack.pop()
                if node["id"] == span_id:
                    node["seconds"] = record.get("seconds", 0.0) or 0.0
                    break
        elif kind == "event" and stack:
            stack[-1]["events"].append(
                {
                    "type": record.get("type"),
                    "data": record.get("data") or {},
                }
            )
    return roots


def frame_label(node: dict) -> str:
    """One span's frame name in a collapsed stack.

    Per-module spans carry the module name (``module:othello``) so the
    flame splits by module where the work actually splits; every other
    span is just its name.
    """
    module = (node.get("data") or {}).get("module")
    if module:
        return f"{node['name']}:{module}"
    return node["name"]


def _self_seconds(node: dict) -> float:
    children = sum(child["seconds"] for child in node["children"])
    return max(0.0, node["seconds"] - children)


def fold_spans(records) -> dict:
    """Collapsed stacks: ``"a;b;c" -> self-time microseconds``.

    Zero-weight stacks (pure container spans whose time is entirely in
    their children, below microsecond resolution) are dropped — they
    would render as invisible slivers anyway.
    """
    folded: dict = {}

    def walk(node, prefix):
        label = frame_label(node)
        stack_name = f"{prefix};{label}" if prefix else label
        micros = int(round(_self_seconds(node) * 1e6))
        if micros:
            folded[stack_name] = folded.get(stack_name, 0) + micros
        for child in node["children"]:
            walk(child, stack_name)

    for root in span_tree(records):
        walk(root, "")
    return folded


def render_collapsed(folded: dict) -> str:
    """The ``.folded`` file body (one ``stack weight`` line, sorted)."""
    lines = [
        f"{stack} {weight}" for stack, weight in sorted(folded.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def self_time_table(records) -> list:
    """Aggregate self-time per frame label, heaviest first.

    Returns ``[{"label", "self_seconds", "total_seconds", "count"},
    ...]`` sorted by descending self-time (ties by label).
    """
    totals: dict = {}

    def walk(node):
        label = frame_label(node)
        entry = totals.setdefault(
            label,
            {"label": label, "self_seconds": 0.0,
             "total_seconds": 0.0, "count": 0},
        )
        entry["self_seconds"] += _self_seconds(node)
        entry["total_seconds"] += node["seconds"]
        entry["count"] += 1
        for child in node["children"]:
            walk(child)

    for root in span_tree(records):
        walk(root)
    return sorted(
        totals.values(),
        key=lambda entry: (-entry["self_seconds"], entry["label"]),
    )


def request_summaries(records) -> list:
    """One row per ``request`` span in a daemon trace stream.

    Groups the stream by trace id first (per-request span ids restart,
    so the forest must be rebuilt per trace), then summarizes every
    request root: operation, request id, total seconds, queue-wait and
    session-lock wait, per-phase scheduler seconds, and any
    ``request-error`` code.  Plain (untagged) scheduler traces simply
    yield no rows — they have no request spans.
    """
    rows: list = []
    for trace_id, group in trace_groups(records).items():
        for root in span_tree(group):
            if root["name"] != "request":
                continue
            data = root["data"]
            row = {
                "trace": trace_id or data.get("trace") or "-",
                "op": data.get("op"),
                "request": data.get("request"),
                "session": data.get("session"),
                "seconds": root["seconds"],
                "queue_wait": 0.0,
                "lock_wait": 0.0,
                "phases": {},
                "error": None,
            }

            def walk(node):
                for event in node["events"]:
                    if event["type"] == "request-error":
                        row["error"] = event["data"].get("code")
                for child in node["children"]:
                    name = child["name"]
                    if name == "queue-wait":
                        row["queue_wait"] += child["seconds"]
                    elif name == "lock-wait":
                        row["lock_wait"] += child["seconds"]
                    elif name in PHASE_SPANS:
                        row["phases"][name] = (
                            row["phases"].get(name, 0.0)
                            + child["seconds"]
                        )
                    walk(child)

            walk(root)
            rows.append(row)
    return rows


def slowest_requests(records, top: int = 10) -> list:
    """The ``top`` slowest requests of a daemon trace, slowest first.

    Ties (identical wall-clock, common for sub-resolution pings) break
    deterministically by trace id then request id.
    """
    return sorted(
        request_summaries(records),
        key=lambda row: (
            -row["seconds"], str(row["trace"]), str(row["request"])
        ),
    )[: max(0, top)]
