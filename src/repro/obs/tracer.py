"""Structured event/span tracer for the compilation pipeline.

Zero-dependency (standard library only) and deliberately boring: a
:class:`Tracer` collects a flat stream of *records* — typed events and
begin/end markers of nested spans — each carrying a monotonically
increasing ordinal.  Records are kept in memory and, when the tracer
was given a path, appended to a JSONL file as they happen.

Determinism is a hard requirement: the test suite asserts that two
runs of the same compilation — and a serial run against a ``jobs=2``
run — produce *identical* canonicalized streams.  The rules that make
that hold:

* payloads never contain wall-clock values, process ids, memory
  addresses, or hash-order-dependent collections (sets are sorted
  before they enter a record);
* the only timing field is the ``seconds`` slot of span-end records,
  and :func:`canonicalize_trace` strips it;
* every record is emitted from the scheduler's parent process — worker
  processes compute, the parent narrates — so worker scheduling cannot
  reorder the stream.

Instrumentation sites never hold a tracer; they fetch the ambient one
via :func:`current_tracer`, which answers the no-op :data:`NULL_TRACER`
unless a real tracer was installed with :func:`activate` (the scheduler
does this around every stage when constructed with ``trace=`` or with
``REPRO_TRACE`` set).  The ambient slot is a :class:`~contextvars.
ContextVar`, so concurrent service requests running on separate worker
threads each see their own request-scoped tracer.  The null tracer's
methods are empty and its ``enabled`` flag is ``False``, so disabled
tracing costs one context-variable read and one attribute check per
instrumentation site.

The compile service writes many requests' records into one daemon
stream, tagging each record with its request's ``trace`` id; see
:func:`trace_groups` / :func:`canonicalize_request_trace` for how those
interleaved streams are recovered and compared deterministically.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar

#: Keys holding timing values; stripped by :func:`canonicalize_trace`
#: (at the record top level *and* inside event ``data`` payloads, so
#: instrumentation may attach wall-clock readings to events without
#: breaking stream determinism).
TIMING_FIELDS = ("seconds",)

#: Record-level keys that vary between otherwise-equivalent service
#: runs: global write ordinals (interleaving-dependent) — stripped by
#: :func:`canonicalize_request_trace` only; in-process streams keep
#: their dense per-tracer ordinals.
VOLATILE_FIELDS = ("ord",)

#: ``data`` keys carrying server-assigned correlation ids whose values
#: depend on request arrival order (session names are handed out
#: first-come-first-served), stripped by
#: :func:`canonicalize_request_trace`.
VOLATILE_DATA_FIELDS = ("session",)


def _jsonable(value):
    """Render payload values deterministic and JSON-serializable.

    Sets (including frozensets) are sorted — they are the one standard
    container whose iteration order could differ between runs.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so hot instrumentation sites can skip
    payload construction entirely (``if tracer.enabled: ...``).
    """

    enabled = False

    def event(self, type_, **payload):
        pass

    def span(self, name, **attrs):
        return _NULL_SPAN

    def close(self):
        pass

    @property
    def records(self):
        return []


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a deterministic stream of events and nested spans.

    Args:
        path: When given, every record is also appended to this JSONL
            file (created/truncated on construction).  Records are
            always retained in memory on :attr:`records` — traces are
            bounded by program structure (per-module, per-web,
            per-global events), never by execution length.
    """

    enabled = True

    def __init__(self, path=None):
        self.path = str(path) if path is not None else None
        self.records: list = []
        self._file = (
            open(self.path, "w", encoding="utf-8")
            if self.path is not None
            else None
        )
        self._ordinal = 0
        self._span_stack: list = []  # span ids, innermost last
        self._next_span_id = 1

    # -- emission ---------------------------------------------------------

    def _emit(self, record: dict) -> None:
        record["ord"] = self._ordinal
        self._ordinal += 1
        self.records.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record, sort_keys=True))
            self._file.write("\n")

    def event(self, type_: str, **payload) -> None:
        """Record one typed event under the innermost open span."""
        self._emit(
            {
                "ev": "event",
                "type": type_,
                "span": self._span_stack[-1] if self._span_stack else 0,
                "data": _jsonable(payload),
            }
        )

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested span; the end record carries wall-clock
        ``seconds`` (the single timing field in the schema)."""
        span_id = self._next_span_id
        self._next_span_id += 1
        self._emit(
            {
                "ev": "span-begin",
                "name": name,
                "id": span_id,
                "parent": self._span_stack[-1] if self._span_stack else 0,
                "data": _jsonable(attrs),
            }
        )
        self._span_stack.append(span_id)
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            self._emit(
                {
                    "ev": "span-end",
                    "name": name,
                    "id": span_id,
                    "seconds": elapsed,
                }
            )

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- ambient tracer -------------------------------------------------------

#: Context-local so the compile service can activate one request-scoped
#: tracer per worker thread without cross-request contamination; plain
#: single-threaded callers see classic global behavior.
_CURRENT: ContextVar = ContextVar("repro_ambient_tracer",
                                  default=NULL_TRACER)


def current_tracer():
    """The ambient tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _CURRENT.get()


@contextmanager
def activate(tracer):
    """Install ``tracer`` as the ambient tracer for the dynamic extent."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


@contextmanager
def suppressed():
    """Silence the ambient tracer (used by the incremental engine's
    shadow cross-check, whose from-scratch reference analysis must not
    double-emit provenance events)."""
    with activate(NULL_TRACER):
        yield


# -- reading and canonicalization -----------------------------------------


def read_trace(path) -> list:
    """Parse a JSONL trace file back into its record list."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _strip_timing(record: dict) -> dict:
    cleaned = {
        key: value
        for key, value in record.items()
        if key not in TIMING_FIELDS
    }
    data = cleaned.get("data")
    if isinstance(data, dict) and any(key in data
                                      for key in TIMING_FIELDS):
        cleaned["data"] = {
            key: value
            for key, value in data.items()
            if key not in TIMING_FIELDS
        }
    return cleaned


def canonicalize_trace(records) -> list:
    """Ordinal-sorted records with timing fields stripped.

    Two runs of the same compilation are *defined* to be equivalent
    when their canonicalized traces compare equal; the determinism
    suite asserts exactly this.
    """
    return [
        _strip_timing(record)
        for record in sorted(records, key=lambda r: r.get("ord", 0))
    ]


def trace_groups(records) -> dict:
    """Split a daemon trace into per-trace-id record streams.

    The compile service appends each finished request's records to one
    shared JSONL file, tagging every record with the request's
    ``trace`` id (client-chosen; defaults to the session name).  File
    order is preserved within each group: the service flushes a
    request's block atomically from the event loop, and requests
    within one trace are serialized by the client's request/response
    cycle, so per-group order is deterministic even when groups
    interleave arbitrarily in the file.  Untagged records (plain
    scheduler traces) land under ``""``.
    """
    groups: dict = {}
    for record in records:
        groups.setdefault(record.get("trace", ""), []).append(record)
    return groups


def canonicalize_request_trace(records) -> list:
    """Canonical form of one trace group's record stream.

    Like :func:`canonicalize_trace` but for service request streams:
    records keep their file order (per-request ordinals restart at
    zero, so a global ordinal sort would jumble multi-request traces),
    the interleaving-dependent fields in :data:`VOLATILE_FIELDS` are
    dropped, and server-assigned correlation ids
    (:data:`VOLATILE_DATA_FIELDS`) are dropped from span/event
    payloads.  A trace group from a concurrent daemon run compares
    byte-equal to the same session run serially exactly when their
    canonicalized streams match — the service tracing suite asserts
    this.
    """
    canonical = []
    for record in records:
        cleaned = _strip_timing(record)
        for key in VOLATILE_FIELDS:
            cleaned.pop(key, None)
        data = cleaned.get("data")
        if isinstance(data, dict) and any(
            key in data for key in VOLATILE_DATA_FIELDS
        ):
            cleaned["data"] = {
                key: value
                for key, value in data.items()
                if key not in VOLATILE_DATA_FIELDS
            }
        canonical.append(cleaned)
    return canonical
