"""Perf-regression sentinel over the benchmark history.

Each bench session appends one point to a tracked JSONL history
(``benchmarks/BENCH_history.jsonl``): the git SHA, a timestamp, and
every numeric scalar of ``BENCH_results.json`` flattened to dotted
paths (``service_load.compiles_per_sec``, ``simulator.speedup`` ...).
The sentinel (``repro-explain bench --check``) then compares the
newest point against the mean of a trailing window and reports every
tracked scalar that moved past a threshold in its *bad* direction.

Direction is inferred from the metric name (:func:`metric_direction`):
throughputs, rates and speedups regress *down*; seconds, cycles and
overheads regress *up*; metrics whose good direction cannot be
inferred are not judged at all — a sentinel that guesses wrong
directions trains people to ignore it.

The check is a tripwire, not a verdict: CI runs it as a soft-fail
annotation because single-machine wall-clock noise is real.  The
window mean (rather than only the previous point) keeps one noisy
historical sample from hiding or faking a trend.

Knobs: ``REPRO_SENTINEL_THRESHOLD`` (fractional, default ``0.25``)
and ``REPRO_SENTINEL_WINDOW`` (points, default ``5``).
"""

from __future__ import annotations

import json
import os

#: A scalar must move past this fraction of the baseline (in its bad
#: direction) to be reported.  Generous by default: these benches run
#: on shared CI machines.
DEFAULT_THRESHOLD = 0.25

#: How many prior history points form the baseline mean.
DEFAULT_WINDOW = 5

#: Name fragments implying "bigger is better" / "bigger is worse".
#: Checked in this order; first hit wins (so ``*_per_sec`` beats the
#: ``sec`` fragment inside it).
_HIGHER_BETTER = (
    "per_sec", "per_second", "hit_rate", "speedup", "throughput",
    "ratio_reused", "reuse",
)
_LOWER_BETTER = (
    "seconds", "_ms", "millis", "micros", "_us", "cycles",
    "overhead", "latency", "bytes", "misses",
)


def sentinel_threshold() -> float:
    raw = os.environ.get("REPRO_SENTINEL_THRESHOLD", "").strip()
    return float(raw) if raw else DEFAULT_THRESHOLD


def sentinel_window() -> int:
    raw = os.environ.get("REPRO_SENTINEL_WINDOW", "").strip()
    return max(1, int(raw)) if raw else DEFAULT_WINDOW


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 not judged."""
    lowered = name.lower()
    for fragment in _HIGHER_BETTER:
        if fragment in lowered:
            return 1
    for fragment in _LOWER_BETTER:
        if fragment in lowered:
            return -1
    return 0


def flatten_scalars(payload, prefix: str = "") -> dict:
    """Every numeric leaf of a nested dict, as ``dotted.path: value``.

    Booleans are excluded (they are ints to ``isinstance``, but a
    flipped flag is not a 20% regression); lists are skipped entirely
    — history points track named scalars, not positions.
    """
    flat: dict = {}
    if not isinstance(payload, dict):
        return flat
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_scalars(value, path))
    return flat


# -- history file ----------------------------------------------------------


def read_history(path) -> list:
    """Parse the history JSONL (oldest first); missing file -> []."""
    entries: list = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def write_history(path, entries) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")


def append_history(path, results: dict, sha: str,
                   timestamp: str) -> dict:
    """Fold one bench session into the history; returns the new entry.

    An existing entry for the same SHA is *replaced*, not duplicated:
    CI may run partial bench subsets before the full session, and the
    history should converge to one point per commit, the last (most
    complete) run winning.
    """
    entry = {
        "sha": sha,
        "timestamp": timestamp,
        "metrics": flatten_scalars(results),
    }
    entries = [
        existing
        for existing in read_history(path)
        if existing.get("sha") != sha
    ]
    entries.append(entry)
    write_history(path, entries)
    return entry


# -- the check -------------------------------------------------------------


def check_regressions(entries, threshold: float | None = None,
                      window: int | None = None) -> list:
    """Judge the newest history point against its trailing window.

    Returns regression rows ``[{"metric", "newest", "baseline",
    "delta", "direction"}, ...]`` (``delta`` is the signed fractional
    change vs the baseline mean), sorted worst-relative-move first.
    Empty when there is nothing to compare (fewer than two points) —
    an empty history is not a regression.
    """
    if threshold is None:
        threshold = sentinel_threshold()
    if window is None:
        window = sentinel_window()
    if len(entries) < 2:
        return []
    newest = entries[-1].get("metrics", {})
    trailing = entries[max(0, len(entries) - 1 - window):-1]
    regressions: list = []
    for metric in sorted(newest):
        direction = metric_direction(metric)
        if direction == 0:
            continue
        history = [
            entry["metrics"][metric]
            for entry in trailing
            if metric in entry.get("metrics", {})
        ]
        if not history:
            continue
        baseline = sum(history) / len(history)
        if baseline == 0:
            continue
        delta = (newest[metric] - baseline) / abs(baseline)
        # A regression is a move past the threshold *against* the
        # metric's good direction.
        if delta * direction < -threshold:
            regressions.append(
                {
                    "metric": metric,
                    "newest": newest[metric],
                    "baseline": baseline,
                    "delta": delta,
                    "direction": (
                        "higher-better" if direction > 0
                        else "lower-better"
                    ),
                }
            )
    return sorted(
        regressions,
        key=lambda row: (-abs(row["delta"]), row["metric"]),
    )


def format_check(entries, regressions,
                 threshold: float | None = None) -> str:
    """Human-readable sentinel verdict (the ``bench --check`` body)."""
    if threshold is None:
        threshold = sentinel_threshold()
    lines: list = []
    if len(entries) < 2:
        lines.append(
            f"perf sentinel: {len(entries)} history point(s) — "
            "nothing to compare yet"
        )
        return "\n".join(lines) + "\n"
    newest = entries[-1]
    lines.append(
        f"perf sentinel: {newest.get('sha', '?')[:12]} "
        f"vs trailing window of {min(len(entries) - 1, sentinel_window())}"
        f" (threshold {threshold:.0%})"
    )
    if not regressions:
        lines.append("no tracked scalar regressed past the threshold")
        return "\n".join(lines) + "\n"
    width = max(len(row["metric"]) for row in regressions)
    lines.append(f"{len(regressions)} regression(s):")
    for row in regressions:
        lines.append(
            f"  {row['metric'].ljust(width)}  "
            f"{row['baseline']:.6g} -> {row['newest']:.6g}  "
            f"({row['delta']:+.1%}, {row['direction']})"
        )
    return "\n".join(lines) + "\n"
