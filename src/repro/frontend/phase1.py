"""Compiler first phase (paper section 3).

Parses and analyzes one source module, lowers it to IR, runs the
requested optimization level, and collects the summary records the
program analyzer consumes.  Following the paper's prototype (section 6),
summaries are generated *after* optimization "to obtain better heuristic
information on usage counts ... and estimates for callee-saves register
requirements".

The optimized :class:`~repro.ir.IRModule` plays the role of the paper's
intermediate file, handed to the second phase unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.analysis.frequency import analyze_function_usage
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)
from repro.ir.builder import lower_module
from repro.ir.instructions import LoadAddr
from repro.ir.module import IRModule
from repro.ir.verifier import verify_module
from repro.lang.sema import analyze_source
from repro.opt.pipeline import optimize_module


#: Bump when phase-1 output changes for unchanged inputs (new optimizer
#: passes, summary fields, ...): fingerprints — and therefore any cache
#: entries keyed on them — must not survive such a change.
PHASE1_SCHEMA = 1


def phase1_fingerprint(
    source: str, module_name: str, opt_level: int
) -> str:
    """Content address of one module's phase-1 computation.

    Phase 1 is a pure function of exactly these inputs (the paper's
    module-boundary separation), so the fingerprint doubles as the
    cache key for :class:`Phase1Result` artifacts.
    """
    source_digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    token = "|".join(
        ("phase1", str(PHASE1_SCHEMA), module_name, str(opt_level),
         source_digest)
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class Phase1Result:
    """The first phase's two outputs for one module.

    ``fingerprint`` content-addresses the inputs that produced the
    result (see :func:`phase1_fingerprint`); the scheduler keys phase-2
    cache entries on it.  Hand-built results may leave it empty, which
    simply opts them out of caching.
    """

    ir_module: IRModule
    summary: ModuleSummary
    fingerprint: str = ""


def compile_module_phase1(
    source: str, module_name: str, opt_level: int = 2
) -> Phase1Result:
    """Front end + optimization + summary collection for one module."""
    module_info = analyze_source(source, module_name)
    ir_module = lower_module(module_info)
    verify_module(ir_module)
    optimize_module(ir_module, opt_level)
    verify_module(ir_module)
    summary = summarize_module(ir_module)
    return Phase1Result(
        ir_module, summary,
        fingerprint=phase1_fingerprint(source, module_name, opt_level),
    )


def summarize_module(ir_module: IRModule) -> ModuleSummary:
    """Collect the summary file from (optimized) module IR."""
    summary = ModuleSummary(module_name=ir_module.name)
    aliased: set[str] = set()
    for function in ir_module.functions.values():
        usage = analyze_function_usage(function)
        summary.procedures.append(
            ProcedureSummary(
                name=function.name,
                module=ir_module.name,
                global_refs=dict(usage.global_refs),
                global_stores=dict(usage.global_stores),
                calls=dict(usage.calls),
                address_taken_procs=sorted(usage.address_taken_functions),
                makes_indirect_calls=usage.makes_indirect_calls,
                indirect_call_freq=usage.indirect_call_freq,
                callee_saves_needed=usage.callee_saves_needed,
                caller_saves_needed=usage.caller_saves_needed,
                max_call_args=usage.max_call_args,
                num_params=len(function.params),
            )
        )
        for instruction in function.iter_instructions():
            if isinstance(instruction, LoadAddr) and not instruction.is_function:
                aliased.add(instruction.symbol)
    for var in ir_module.globals.values():
        summary.globals.append(
            GlobalSummary(
                name=var.name,
                module=ir_module.name,
                is_scalar_word=var.is_scalar_word,
                address_taken=var.address_taken or var.name in aliased,
                is_static=var.is_static,
            )
        )
    summary.aliased_globals = sorted(aliased)
    return summary
