"""Summary files: the compiler first phase's record for the analyzer.

Paper section 3 — for each procedure the first phase records:

* the globals it accesses, with estimated reference frequencies and
  aliasing flags;
* the procedures it calls, with estimated call frequencies;
* procedures whose addresses it computes, and whether it makes indirect
  calls;
* an estimate of the callee-saves registers it needs.

One :class:`ModuleSummary` per compilation unit aggregates the procedure
records plus the module's global-variable declarations.  Summaries are
JSON-serializable — they are the *files* the two-pass system shuttles
between phases.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class ProcedureSummary:
    """Per-procedure record in a summary file."""

    name: str
    module: str
    global_refs: dict = field(default_factory=dict)  # name -> weighted count
    global_stores: dict = field(default_factory=dict)
    calls: dict = field(default_factory=dict)  # callee -> weighted count
    address_taken_procs: list = field(default_factory=list)
    makes_indirect_calls: bool = False
    indirect_call_freq: int = 0
    callee_saves_needed: int = 0
    caller_saves_needed: int = 0
    max_call_args: int = 0
    num_params: int = 0


@dataclass
class GlobalSummary:
    """Per-global record: what the analyzer needs for eligibility."""

    name: str
    module: str
    is_scalar_word: bool = True
    address_taken: bool = False
    is_static: bool = False


@dataclass
class ModuleSummary:
    """Summary file for one compilation unit."""

    module_name: str
    globals: list = field(default_factory=list)
    procedures: list = field(default_factory=list)
    # Data symbols whose address this module computes (includes externs).
    aliased_globals: list = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModuleSummary":
        raw = json.loads(text)
        summary = cls(module_name=raw["module_name"])
        summary.globals = [GlobalSummary(**g) for g in raw["globals"]]
        summary.procedures = [ProcedureSummary(**p) for p in raw["procedures"]]
        summary.aliased_globals = list(raw["aliased_globals"])
        return summary
