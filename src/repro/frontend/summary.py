"""Summary files: the compiler first phase's record for the analyzer.

Paper section 3 — for each procedure the first phase records:

* the globals it accesses, with estimated reference frequencies and
  aliasing flags;
* the procedures it calls, with estimated call frequencies;
* procedures whose addresses it computes, and whether it makes indirect
  calls;
* an estimate of the callee-saves registers it needs.

One :class:`ModuleSummary` per compilation unit aggregates the procedure
records plus the module's global-variable declarations.  Summaries are
JSON-serializable — they are the *files* the two-pass system shuttles
between phases.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

#: Bump when the summary record layout changes: fingerprints — and any
#: summary-store entries keyed on them — must not survive such a change.
SUMMARY_SCHEMA = 1


def _canonical_digest(payload) -> str:
    """sha256 of the canonical (sorted-keys) JSON form of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ProcedureSummary:
    """Per-procedure record in a summary file."""

    name: str
    module: str
    global_refs: dict = field(default_factory=dict)  # name -> weighted count
    global_stores: dict = field(default_factory=dict)
    calls: dict = field(default_factory=dict)  # callee -> weighted count
    address_taken_procs: list = field(default_factory=list)
    makes_indirect_calls: bool = False
    indirect_call_freq: int = 0
    callee_saves_needed: int = 0
    caller_saves_needed: int = 0
    max_call_args: int = 0
    num_params: int = 0

    def canonical_payload(self) -> dict:
        """Order-insensitive JSON-able form of this record.

        Dict iteration order and list order never leak into the payload
        (dicts are emitted sorted, lists of names are sorted), so two
        summaries carrying the same facts fingerprint identically no
        matter how the front end happened to enumerate them.
        """
        return {
            "schema": SUMMARY_SCHEMA,
            "name": self.name,
            "module": self.module,
            "global_refs": {
                k: self.global_refs[k] for k in sorted(self.global_refs)
            },
            "global_stores": {
                k: self.global_stores[k] for k in sorted(self.global_stores)
            },
            "calls": {k: self.calls[k] for k in sorted(self.calls)},
            "address_taken_procs": sorted(self.address_taken_procs),
            "makes_indirect_calls": self.makes_indirect_calls,
            "indirect_call_freq": self.indirect_call_freq,
            "callee_saves_needed": self.callee_saves_needed,
            "caller_saves_needed": self.caller_saves_needed,
            "max_call_args": self.max_call_args,
            "num_params": self.num_params,
        }

    def fingerprint(self) -> str:
        """Canonical content address of everything the analyzer can see
        of this procedure (globals + frequencies, call edges +
        frequencies, address-taken/indirect flags, register estimates)."""
        return _canonical_digest(self.canonical_payload())


@dataclass
class GlobalSummary:
    """Per-global record: what the analyzer needs for eligibility."""

    name: str
    module: str
    is_scalar_word: bool = True
    address_taken: bool = False
    is_static: bool = False

    def canonical_payload(self) -> dict:
        return {
            "name": self.name,
            "module": self.module,
            "is_scalar_word": self.is_scalar_word,
            "address_taken": self.address_taken,
            "is_static": self.is_static,
        }


@dataclass
class ModuleSummary:
    """Summary file for one compilation unit."""

    module_name: str
    globals: list = field(default_factory=list)
    procedures: list = field(default_factory=list)
    # Data symbols whose address this module computes (includes externs).
    aliased_globals: list = field(default_factory=list)

    def canonical_payload(self) -> dict:
        """Order-insensitive JSON-able form of the whole summary file:
        records are keyed (not listed), so declaration order never leaks
        into the module fingerprint."""
        return {
            "schema": SUMMARY_SCHEMA,
            "module_name": self.module_name,
            "globals": {
                g.name: g.canonical_payload()
                for g in sorted(self.globals, key=lambda g: g.name)
            },
            "procedures": {
                p.name: p.canonical_payload()
                for p in sorted(self.procedures, key=lambda p: p.name)
            },
            "aliased_globals": sorted(self.aliased_globals),
        }

    def fingerprint(self) -> str:
        """Canonical content address of the whole summary file.

        This is *the* hashing scheme for summaries: the incremental
        analyzer's summary store keys on it (and on the per-procedure
        :meth:`ProcedureSummary.fingerprint`), deliberately distinct
        from ``phase1_fingerprint`` which keys on *source text* — a
        source edit that leaves the summary identical must still read
        as "analyzer input unchanged" here.
        """
        return _canonical_digest(self.canonical_payload())

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModuleSummary":
        raw = json.loads(text)
        summary = cls(module_name=raw["module_name"])
        summary.globals = [GlobalSummary(**g) for g in raw["globals"]]
        summary.procedures = [ProcedureSummary(**p) for p in raw["procedures"]]
        summary.aliased_globals = list(raw["aliased_globals"])
        return summary
