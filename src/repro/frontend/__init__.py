"""Compiler first phase: source -> IR + summary files."""

from repro.frontend.phase1 import (
    Phase1Result,
    compile_module_phase1,
    summarize_module,
)
from repro.frontend.summary import (
    GlobalSummary,
    ModuleSummary,
    ProcedureSummary,
)

__all__ = [
    "GlobalSummary",
    "ModuleSummary",
    "Phase1Result",
    "ProcedureSummary",
    "compile_module_phase1",
    "summarize_module",
]
