"""Observability glue between the compile service and :mod:`repro.obs`.

The daemon owns one :class:`~repro.obs.metrics.MetricsRegistry`,
mutated only from the event loop (worker threads compute, the loop
narrates — the same single-writer discipline the scheduler's tracer
uses).  This module holds the fold functions that pour service
activity into it:

* per-request counters and a latency histogram
  (:func:`record_request`);
* each compile's per-stage wall-clock/task deltas
  (:func:`fold_compile_delta`) — these come from the *session's own*
  scheduler under the session lock, so they are exact even with many
  sessions in flight;
* point-in-time service state — open sessions, queued/active jobs,
  shared-cache counters (:func:`fold_service_state`).  Cache counters
  are cache-wide (the cache is shared by design, that is the point),
  so they are exported as totals, not per-session.

``render_prometheus`` stamps the state gauges and returns the
exposition text the ``/metrics`` endpoint serves.
"""

from __future__ import annotations

from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry
from repro.service.protocol import PROTOCOL_VERSION

#: Request latencies and per-phase compile histograms share one
#: explicit log-spaced bucket schema (``repro.obs.metrics.
#: SECONDS_BUCKETS``), so the prometheus exposition is structurally
#: stable across runs and the two families diff cleanly against each
#: other.
LATENCY_BUCKETS = SECONDS_BUCKETS


def record_request(registry: MetricsRegistry, operation: str,
                   outcome: str, seconds: float) -> None:
    """Count one finished request and observe its wall-clock."""
    registry.inc(
        "repro_service_requests_total", type=operation, outcome=outcome
    )
    registry.observe(
        "repro_service_request_seconds", seconds,
        buckets=LATENCY_BUCKETS, type=operation,
    )


def fold_compile_delta(registry: MetricsRegistry, delta) -> None:
    """Fold one compile's :class:`MetricsSnapshot` difference.

    Only the per-scheduler families are folded (stage seconds, stage
    tasks, incremental analyze counters): the ``cache_*`` families in a
    per-compile delta are deltas of the *shared* cache's counters and
    would double-count concurrent sessions' traffic; the shared cache
    is exported once, as totals, by :func:`fold_service_state`.

    Each stage's wall-clock additionally lands in the per-phase
    latency histogram ``repro_service_phase_seconds`` (one observation
    per compile per stage, shared :data:`LATENCY_BUCKETS` schema), so
    ``/metrics`` answers "where do compiles spend their time" with a
    distribution, not just a running total.
    """
    for stage, seconds in delta.stage_seconds.items():
        registry.inc(
            "repro_service_stage_seconds_total", seconds, stage=stage
        )
        registry.observe(
            "repro_service_phase_seconds", seconds,
            buckets=LATENCY_BUCKETS, phase=stage,
        )
    for stage, count in delta.stage_tasks.items():
        registry.inc(
            "repro_service_stage_tasks_total", count, stage=stage
        )
    for counter, count in delta.analyze.items():
        registry.inc(
            "repro_service_analyze_total", count, counter=counter
        )


def record_compile_waits(registry: MetricsRegistry,
                         queue_seconds: float,
                         lock_seconds: float) -> None:
    """Observe one compile's queue/session-lock waits (same schema)."""
    registry.observe(
        "repro_service_phase_seconds", queue_seconds,
        buckets=LATENCY_BUCKETS, phase="queue-wait",
    )
    registry.observe(
        "repro_service_phase_seconds", lock_seconds,
        buckets=LATENCY_BUCKETS, phase="lock-wait",
    )


def fold_service_state(registry: MetricsRegistry, service) -> None:
    """Stamp the point-in-time gauges for one exposition/stats render."""
    registry.set_gauge(
        "repro_service_sessions_open", len(service.sessions)
    )
    registry.set_gauge(
        "repro_service_jobs_pending", service.jobs_pending
    )
    registry.set_gauge(
        "repro_service_jobs_active", service.jobs_active
    )
    registry.set_gauge("repro_service_workers", service.workers)
    registry.set_gauge(
        "repro_service_draining", int(service.draining)
    )
    cache = service.cache
    if cache is None:
        return
    registry.set_gauge("repro_service_cache_shards", cache.shards)
    for outcome, counters in cache.stats.snapshot().items():
        for stage, count in counters.items():
            registry.set_gauge(
                "repro_service_cache_events",
                count, stage=stage, outcome=outcome,
            )


def cache_hit_rate(cache) -> float:
    """Shared-cache hit rate across all stages (0.0 when idle)."""
    if cache is None:
        return 0.0
    snapshot = cache.stats.snapshot()
    hits = sum(snapshot["hits"].values())
    misses = sum(snapshot["misses"].values())
    total = hits + misses
    return hits / total if total else 0.0


def render_prometheus(registry: MetricsRegistry, service) -> str:
    """The ``/metrics`` endpoint body."""
    fold_service_state(registry, service)
    return registry.to_text()


def session_stats(session) -> dict:
    """Per-session JSON statistics (the ``stats`` operation's result).

    Everything is taken from the session's own scheduler, so the
    numbers are exact per session; shared-cache counters appear in the
    server-level stats instead.
    """
    snapshot = session.scheduler.metrics_snapshot()
    return {
        "session": session.name,
        "modules": sorted(session.sources),
        "opt_level": session.opt_level,
        "config": session.config,
        "allocator": session.allocator,
        "compiles": session.compiles,
        "edits": session.edits,
        "has_profile": session.profile is not None,
        "last_fingerprint": session.last_fingerprint,
        "stage_seconds": dict(snapshot.stage_seconds),
        "stage_tasks": dict(snapshot.stage_tasks),
        "analyze": dict(snapshot.analyze),
    }


def server_stats(service) -> dict:
    """Server-level JSON statistics (``stats`` without a session)."""
    cache = service.cache
    payload = {
        "protocol_version": PROTOCOL_VERSION,
        "sessions_open": len(service.sessions),
        "sessions_opened_total": service.sessions_opened,
        "requests_total": service.requests_total,
        "compiles_total": service.compiles_total,
        "jobs_pending": service.jobs_pending,
        "jobs_active": service.jobs_active,
        "workers": service.workers,
        "draining": service.draining,
        "trace_path": service.trace_path,
    }
    if cache is not None:
        payload["cache"] = {
            "shards": cache.shards,
            "hit_rate": cache_hit_rate(cache),
            **cache.stats.snapshot(),
        }
    return payload
