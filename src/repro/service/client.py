"""Blocking client for the compile service.

A thin synchronous wrapper over the newline-JSON protocol
(:mod:`repro.service.protocol`) used by the test suite, the load
benchmark, and ``examples/compiler_explorer.py --connect``.  One
client owns one connection; requests are answered in order, so a
client is safe to share only within one thread (the load test gives
each session thread its own client — connections are cheap).
"""

from __future__ import annotations

import socket

from repro.service.protocol import (
    ServiceError,
    decode_frame,
    request_frame,
)


class ServiceClient:
    """Synchronous connection to a running :class:`CompileService`.

    ``trace`` is an optional client-chosen trace id stamped onto every
    request this client sends; when the daemon runs with request
    tracing enabled (``REPRO_SERVICE_TRACE``), all of this client's
    span trees carry that id in the daemon's trace stream.
    """

    def __init__(self, sock: socket.socket,
                 trace: str | None = None):
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0
        self.trace = trace

    # -- constructors -----------------------------------------------------

    @classmethod
    def connect_unix(cls, path: str,
                     timeout: float | None = 60.0,
                     trace: str | None = None) -> "ServiceClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(str(path))
        return cls(sock, trace=trace)

    @classmethod
    def connect_tcp(cls, host: str, port: int,
                    timeout: float | None = 60.0,
                    trace: str | None = None) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, trace=trace)

    # -- plumbing ---------------------------------------------------------

    def send_raw(self, data: bytes) -> None:
        """Ship arbitrary bytes (robustness tests forge bad frames)."""
        self._file.write(data)
        self._file.flush()

    def recv_response(self) -> dict:
        """Read one response frame (raises ConnectionError on EOF)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def request(self, operation: str, **params) -> dict:
        """One round-trip; returns the ``result`` object or raises
        :class:`ServiceError` on a structured error reply."""
        self._next_id += 1
        request_id = self._next_id
        if self.trace is not None and "trace" not in params:
            params["trace"] = self.trace
        self.send_raw(request_frame(request_id, operation, **params))
        response = self.recv_response()
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"),
                error.get("message", "no message"),
            )
        return response.get("result", {})

    def close(self) -> None:
        # Closing flushes any buffered unsent bytes; if the server
        # already hung up (oversized frame, drain) that flush hits a
        # dead socket, which is not this caller's problem.
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations -------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def open_session(self, sources: dict | None = None, **options) -> dict:
        """Open a session; returns the result (``result["session"]`` is
        the id).  ``options``: opt_level, config, allocator, max_cycles."""
        params = dict(options)
        if sources is not None:
            params["sources"] = sources
        return self.request("open_session", **params)

    def edit(self, session: str, module: str, text: str | None) -> dict:
        """Upsert one module's source (``None`` removes the module)."""
        return self.request(
            "edit", session=session, module=module, text=text
        )

    def compile(self, session: str) -> dict:
        return self.request("compile", session=session)

    def profile(self, session: str) -> dict:
        return self.request("profile", session=session)

    def stats(self, session: str | None = None) -> dict:
        if session is None:
            return self.request("stats")
        return self.request("stats", session=session)

    def close_session(self, session: str) -> dict:
        return self.request("close", session=session)

    def shutdown(self) -> dict:
        return self.request("shutdown")
