"""Compile service: a long-lived multi-session daemon over the
scheduler and incremental engine.

The paper's separate-compilation design — modules recompiled
independently against a persistent program database — is exactly the
shape of a compile server.  This package serves it: many concurrent
edit/compile sessions over a newline-JSON protocol (unix socket +
TCP), each with private incremental-analysis state, all deduping
phase-1/phase-2 work through one shared sharded artifact cache, with
prometheus metrics at ``/metrics``.  See ``docs/SERVICE.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    request_frame,
    validate_request,
)
from repro.service.server import CompileService, ServiceThread

__all__ = [
    "PROTOCOL_VERSION",
    "CompileService",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "request_frame",
    "validate_request",
]
