"""Wire protocol of the compile service.

The daemon speaks newline-delimited JSON over a byte stream (unix
socket or TCP).  One frame is one JSON object on one line:

* **request** — ``{"id": <int|str>, "type": <op>, "version": 1,
  ...parameters}``.  ``id`` is chosen by the client and echoed back, so
  a client may pipeline requests and match replies.
* **response** — ``{"id": <echoed>, "ok": true, "result": {...}}`` on
  success, ``{"id": <echoed or null>, "ok": false, "error": {"code":
  <slug>, "message": <human text>}}`` on any failure.

Malformed input never tears the server down: every way a frame can be
wrong (not JSON, not an object, too large, missing or ill-typed
fields, unknown operation, wrong protocol version) maps to a
:class:`ProtocolError` with a stable ``code``, which the server turns
into a structured error response.  Only two conditions close the
connection afterwards: an oversized frame (the stream is desynced
beyond repair) and client EOF.

The operation vocabulary (see ``docs/SERVICE.md`` for the session
lifecycle): ``open_session``, ``edit``, ``compile``, ``profile``,
``stats``, ``close``, plus ``ping`` and ``shutdown``.
"""

from __future__ import annotations

import json
import os

#: Bump on any incompatible change to the frame layout or operation
#: semantics; requests carrying another version are refused with a
#: structured ``version-mismatch`` error naming both versions.
PROTOCOL_VERSION = 1

#: Hard per-frame byte ceiling (sources ride inside frames, so the
#: default is generous).  ``REPRO_SERVICE_MAX_FRAME`` overrides.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


def max_frame_bytes() -> int:
    raw = os.environ.get("REPRO_SERVICE_MAX_FRAME", "").strip()
    return int(raw) if raw else DEFAULT_MAX_FRAME_BYTES


class ServiceError(Exception):
    """A structured operation failure (``code`` is the wire slug).

    Raised server-side by operation handlers (and turned into an error
    response), and client-side by :class:`~repro.service.client.
    ServiceClient` when a reply carries an error object.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ProtocolError(Exception):
    """A structured protocol violation (``code`` is machine-readable).

    ``request_id`` carries the offending request's ``id`` when the
    frame was intact enough to have one, so the error response can
    still be correlated client-side.
    """

    def __init__(self, code: str, message: str, request_id=None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


#: operation -> {field: (allowed types, required)}.  ``id``, ``type``
#: and ``version`` are frame-level and validated separately.  Every
#: operation accepts an optional ``trace`` context field — a
#: client-chosen trace id correlating the requests of one logical
#: session; when the daemon runs with ``REPRO_SERVICE_TRACE`` set,
#: each request's span tree is tagged with it in the daemon's trace
#: stream (untagged requests fall back to their session name).
REQUEST_SCHEMA = {
    "open_session": {
        "sources": ((dict,), False),
        "opt_level": ((int,), False),
        "config": ((str, type(None)), False),
        "allocator": ((str, type(None)), False),
        "max_cycles": ((int,), False),
    },
    "edit": {
        "session": ((str,), True),
        "module": ((str,), True),
        # null text removes the module from the session.
        "text": ((str, type(None)), True),
    },
    "compile": {
        "session": ((str,), True),
    },
    "profile": {
        "session": ((str,), True),
    },
    "stats": {
        "session": ((str, type(None)), False),
    },
    "close": {
        "session": ((str,), True),
    },
    "ping": {},
    "shutdown": {},
}

for _schema in REQUEST_SCHEMA.values():
    _schema["trace"] = ((str, type(None)), False)
del _schema

#: Analyzer configuration letters ``open_session`` accepts (plus null
#: for the level-2 baseline without interprocedural allocation).
CONFIG_LETTERS = frozenset("ABCDEF")


def encode_frame(payload: dict) -> bytes:
    """One response/request object as a wire frame (JSON + newline)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def decode_frame(line: bytes, limit: int | None = None) -> dict:
    """Parse one raw frame; raise :class:`ProtocolError` when bad."""
    if limit is not None and len(line) > limit:
        raise ProtocolError(
            "frame-too-large",
            f"frame of {len(line)} bytes exceeds the {limit}-byte limit",
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError("bad-json", "frame is not valid JSON")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "not-object",
            f"frame must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def validate_request(payload: dict):
    """Check one decoded frame against the schema.

    Returns ``(request_id, operation, params)``; raises
    :class:`ProtocolError` (carrying the request id whenever one was
    readable) on any violation.
    """
    request_id = payload.get("id")
    if not isinstance(request_id, (int, str)):
        raise ProtocolError(
            "missing-id",
            "request must carry an integer or string 'id'",
            request_id=None,
        )
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "version-mismatch",
            f"protocol version {version!r} not supported "
            f"(server speaks {PROTOCOL_VERSION})",
            request_id=request_id,
        )
    operation = payload.get("type")
    if not isinstance(operation, str):
        raise ProtocolError(
            "missing-type",
            "request must carry a string 'type'",
            request_id=request_id,
        )
    schema = REQUEST_SCHEMA.get(operation)
    if schema is None:
        raise ProtocolError(
            "unknown-type",
            f"unknown request type {operation!r} (known: "
            f"{', '.join(sorted(REQUEST_SCHEMA))})",
            request_id=request_id,
        )
    params = {}
    for field, (types, required) in schema.items():
        if field not in payload:
            if required:
                raise ProtocolError(
                    "missing-field",
                    f"{operation!r} requires field {field!r}",
                    request_id=request_id,
                )
            continue
        value = payload[field]
        if not isinstance(value, types):
            names = "/".join(t.__name__ for t in types)
            raise ProtocolError(
                "bad-field",
                f"{operation!r} field {field!r} must be {names}, "
                f"got {type(value).__name__}",
                request_id=request_id,
            )
        params[field] = value
    unknown = (
        set(payload) - set(schema) - {"id", "type", "version"}
    )
    if unknown:
        raise ProtocolError(
            "bad-field",
            f"{operation!r} does not accept field(s) "
            f"{', '.join(sorted(unknown))}",
            request_id=request_id,
        )
    if operation == "open_session":
        sources = params.get("sources", {})
        for name, text in sources.items():
            if not isinstance(name, str) or not isinstance(text, str):
                raise ProtocolError(
                    "bad-field",
                    "'sources' must map module names to source text",
                    request_id=request_id,
                )
        config = params.get("config")
        if config is not None and config not in CONFIG_LETTERS:
            raise ProtocolError(
                "bad-field",
                f"'config' must be one of "
                f"{'/'.join(sorted(CONFIG_LETTERS))} or null, "
                f"got {config!r}",
                request_id=request_id,
            )
        opt_level = params.get("opt_level")
        if opt_level is not None and opt_level not in (0, 1, 2):
            raise ProtocolError(
                "bad-field",
                f"'opt_level' must be 0, 1 or 2, got {opt_level!r}",
                request_id=request_id,
            )
    return request_id, operation, params


def request_frame(request_id, operation: str, **params) -> bytes:
    """Client-side helper: build one request frame."""
    payload = {
        "id": request_id,
        "type": operation,
        "version": PROTOCOL_VERSION,
    }
    payload.update(params)
    return encode_frame(payload)


def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
