"""The compile service daemon.

A long-lived asyncio server multiplexing many concurrent edit/compile
sessions over the newline-JSON protocol of
:mod:`repro.service.protocol`, composed entirely from existing
subsystems:

* each session owns a serial
  :class:`~repro.driver.scheduler.CompilationScheduler` with its own
  :class:`~repro.incremental.engine.IncrementalAnalyzer`, so an
  edit-recompile loop re-analyzes only the dirty region — the paper's
  separate-compilation story as a service;
* every session's scheduler compiles against **one shared**
  :class:`~repro.driver.cache.ArtifactCache`, sharded by key prefix
  with the per-shard LRU byte cap, so concurrent sessions dedupe
  phase-1/phase-2 work against each other without thrashing one
  global LRU;
* compiles run **off the event loop** on a bounded worker pool: the
  loop admits jobs through a semaphore-guarded queue into a
  :class:`~concurrent.futures.ThreadPoolExecutor`, so slow compiles
  never block protocol traffic, and the pool bound caps memory;
* one :class:`~repro.obs.metrics.MetricsRegistry` (mutated only from
  the loop) is exported at an HTTP ``/metrics`` prometheus endpoint
  plus per-session JSON ``stats`` replies.

Concurrency discipline, in one paragraph: the event loop owns all
mutable service state (sessions table, registry, counters).  A compile
job receives an immutable snapshot of its session's sources, runs in a
worker thread under the session's lock (so one session's compiles are
serialized and its scheduler/incremental state is single-threaded),
and only its *result* crosses back to the loop.  The shared cache is
the one object touched from many threads; its writes are atomic
(tempfile + rename) and content-addressed, so racing sessions can only
ever store identical bytes under the same key.

Shutdown drains gracefully: listeners close first, in-flight jobs run
to completion and their responses are delivered, new work is refused
with a structured ``shutting-down`` error, and only then do the
connections and the pool go down.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager
from dataclasses import dataclass, field

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.options import AnalyzerOptions
from repro.driver.cache import ArtifactCache
from repro.driver.pipeline import collect_profile
from repro.driver.scheduler import CompilationScheduler
from repro.linker.link import executable_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer, activate
from repro.service import metrics as service_metrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    max_frame_bytes,
    ok_response,
    validate_request,
)

#: Worker-pool default: enough threads to keep a desktop-class host
#: busy without unbounded memory.  ``REPRO_SERVICE_WORKERS`` overrides.
DEFAULT_WORKERS = 8

#: Shared-cache shard default *for the service* (a standalone
#: ``ArtifactCache`` still defaults to one shard).  Overridden by
#: ``REPRO_CACHE_SHARDS``.
DEFAULT_SERVICE_SHARDS = 8


def _default_workers() -> int:
    raw = os.environ.get("REPRO_SERVICE_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return min(DEFAULT_WORKERS, os.cpu_count() or 1)


def _default_shards() -> int:
    raw = os.environ.get("REPRO_CACHE_SHARDS", "").strip()
    return int(raw) if raw else DEFAULT_SERVICE_SHARDS


def _default_trace_path() -> str | None:
    return os.environ.get("REPRO_SERVICE_TRACE", "").strip() or None


@dataclass
class Session:
    """One edit/compile session's server-side state."""

    name: str
    sources: dict
    opt_level: int
    config: str | None
    allocator: str | None
    max_cycles: int
    scheduler: CompilationScheduler
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    profile: object = None
    compiles: int = 0
    edits: int = 0
    last_fingerprint: str | None = None


class CompileService:
    """The daemon.  Construct, ``await start()``, serve, ``await
    stop()`` — or use :class:`ServiceThread` from synchronous code.

    Args:
        unix_path: Path for the unix-domain listener (``None`` skips).
        host/port: TCP listener endpoint (``host=None`` skips;
            ``port=0`` picks a free port, see :attr:`tcp_address`).
        workers: Bound of the compile worker pool (``None`` reads
            ``REPRO_SERVICE_WORKERS``, default ``min(8, cpus)``).
        cache: A shared :class:`ArtifactCache` to compile against.
        cache_dir: Root for a service-owned cache (sharded per
            ``REPRO_CACHE_SHARDS``, default 8 shards).  When neither
            ``cache`` nor ``cache_dir`` is given the service makes a
            private temporary cache and removes it on ``stop()``.
        metrics_port: Enable the HTTP ``/metrics`` endpoint on this
            port (``None`` disables; ``0`` picks a free port).
        drain_timeout: Seconds ``stop()`` waits for in-flight requests.
        trace_path: Write every request's span tree to this JSONL file
            (one stream per daemon; records are tagged with each
            request's ``trace`` id so concurrent sessions' streams can
            be regrouped deterministically — see
            :func:`repro.obs.tracer.trace_groups`).  ``None`` (the
            default) reads ``REPRO_SERVICE_TRACE``; unset disables
            request tracing entirely.
    """

    def __init__(
        self,
        unix_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        workers: int | None = None,
        cache: ArtifactCache | None = None,
        cache_dir: str | None = None,
        metrics_host: str = "127.0.0.1",
        metrics_port: int | None = None,
        drain_timeout: float = 30.0,
        trace_path: str | None = None,
    ):
        if unix_path is None and host is None:
            raise ValueError("need a unix_path and/or a TCP host")
        self.unix_path = unix_path
        self.host = host
        self.port = port
        self.workers = (
            workers if workers is not None else _default_workers()
        )
        self._cache_tempdir = None
        if cache is not None:
            self.cache = cache
        else:
            if cache_dir is None:
                self._cache_tempdir = tempfile.TemporaryDirectory(
                    prefix="repro-service-cache-"
                )
                cache_dir = self._cache_tempdir.name
            self.cache = ArtifactCache(
                cache_dir, shards=_default_shards()
            )
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self.drain_timeout = drain_timeout
        if trace_path is None:
            trace_path = _default_trace_path()
        self.trace_path = str(trace_path) if trace_path else None
        # Written only from the event loop (_flush_request_trace), so
        # concurrent requests' record blocks never interleave mid-line.
        self._trace_file = (
            open(self.trace_path, "w", encoding="utf-8")
            if self.trace_path
            else None
        )

        self.registry = MetricsRegistry()
        self.sessions: dict[str, Session] = {}
        self.sessions_opened = 0
        self.requests_total = 0
        self.compiles_total = 0
        self.jobs_pending = 0
        self.jobs_active = 0
        self.draining = False

        self._servers: list = []
        self._metrics_server = None
        self._pool: ThreadPoolExecutor | None = None
        self._job_slots: asyncio.Semaphore | None = None
        self._session_counter = 0
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._max_frame = max_frame_bytes()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service",
        )
        self._job_slots = asyncio.Semaphore(self.workers)
        if self.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.unix_path,
                    limit=self._max_frame + 1024,
                )
            )
        if self.host is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.host,
                    port=self.port,
                    limit=self._max_frame + 1024,
                )
            )
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics,
                host=self.metrics_host,
                port=self.metrics_port,
            )

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` request)."""
        tasks = [
            asyncio.create_task(server.serve_forever())
            for server in self._servers
        ]
        if self._metrics_server is not None:
            tasks.append(
                asyncio.create_task(self._metrics_server.serve_forever())
            )
        with contextlib.suppress(asyncio.CancelledError):
            await asyncio.gather(*tasks)

    @property
    def tcp_address(self):
        """``(host, port)`` of the TCP listener (``None`` without one)."""
        for server in self._servers:
            for sock in server.sockets:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[:2]
        return None

    @property
    def metrics_address(self):
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish in-flight requests,
        then tear down listeners, pool, and the private cache."""
        self.draining = True
        for server in self._servers + (
            [self._metrics_server] if self._metrics_server else []
        ):
            server.close()
        # In-flight requests (including queued compiles) run to
        # completion and their responses are delivered before the
        # connections die with the loop.
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.drain_timeout
            )
        for server in self._servers + (
            [self._metrics_server] if self._metrics_server else []
        ):
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers = []
        self._metrics_server = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for session in self.sessions.values():
            session.scheduler.close()
        self.sessions.clear()
        if self.unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.unix_path)
        if self._cache_tempdir is not None:
            with contextlib.suppress(OSError):
                self._cache_tempdir.cleanup()
            self._cache_tempdir = None
        if self._trace_file is not None:
            with contextlib.suppress(OSError):
                self._trace_file.close()
            self._trace_file = None

    # -- connection handling ----------------------------------------------

    async def _send(self, writer, payload: dict) -> None:
        writer.write(encode_frame(payload))
        await writer.drain()

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Frame exceeded the stream limit: the buffer was
                    # discarded and the stream is desynced — answer
                    # with a structured error, then hang up.
                    with contextlib.suppress(Exception):
                        await self._send(
                            writer,
                            error_response(
                                None,
                                "frame-too-large",
                                f"frame exceeds the "
                                f"{self._max_frame}-byte limit",
                            ),
                        )
                    break
                if not line:
                    break  # EOF (covers truncated trailing frames)
                if line.strip() == b"":
                    continue
                response = await self._handle_frame(line)
                try:
                    await self._send(writer, response)
                except (ConnectionError, BrokenPipeError):
                    # Client vanished mid-reply (possibly mid-compile).
                    # The work is done and the session state is
                    # consistent; just drop the connection.
                    break
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_frame(self, line: bytes) -> dict:
        started = time.perf_counter()
        self.requests_total += 1
        self._active_requests += 1
        self._idle.clear()
        operation = "invalid"
        outcome = "error"
        tracer = NULL_TRACER
        trace_id = None
        try:
            try:
                payload = decode_frame(line, limit=self._max_frame)
                request_id, operation, params = validate_request(payload)
            except ProtocolError as err:
                return error_response(
                    err.request_id, err.code, err.message
                )
            # The request span: every record of this request — the
            # queue/lock waits recorded on the loop and the scheduler's
            # phase spans recorded in the worker thread — nests under
            # it in a private, request-scoped tracer whose ordinals and
            # span ids restart per request (that privacy is what makes
            # per-trace streams deterministic under concurrency).
            trace_id = (
                params.pop("trace", None)
                or params.get("session")
                or "-"
            )
            if self._trace_file is not None:
                tracer = Tracer()
            with tracer.span(
                "request",
                op=operation,
                request=request_id,
                trace=trace_id,
                session=params.get("session"),
            ):
                try:
                    result = await self._dispatch(
                        operation, params, tracer
                    )
                    outcome = "ok"
                    return ok_response(request_id, result)
                except ServiceError as err:
                    if tracer.enabled:
                        tracer.event("request-error", code=err.code)
                    return error_response(
                        request_id, err.code, err.message
                    )
                except Exception as err:  # noqa: BLE001 — the server
                    # must survive anything a compile can throw
                    # (front-end errors, audit failures, pickling
                    # trouble); the failure is the client's news, not
                    # the daemon's end.
                    if tracer.enabled:
                        tracer.event(
                            "request-error", code="internal-error"
                        )
                    return error_response(
                        request_id,
                        "internal-error",
                        f"{type(err).__name__}: {err}",
                    )
        finally:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._idle.set()
            if tracer.enabled:
                self._flush_request_trace(tracer, trace_id)
            service_metrics.record_request(
                self.registry,
                operation,
                outcome,
                time.perf_counter() - started,
            )

    def _flush_request_trace(self, tracer, trace_id) -> None:
        """Append one finished request's records to the daemon stream.

        Runs on the event loop only, after the request span has closed,
        so each request's block lands contiguously; within one trace id
        the client's request/response cycle already serializes blocks,
        which keeps every per-trace stream in deterministic order no
        matter how many other traces interleave around it.
        """
        file = self._trace_file
        if file is None:
            return
        lines = []
        for record in tracer.records:
            tagged = dict(record)
            tagged["trace"] = trace_id
            lines.append(json.dumps(tagged, sort_keys=True))
        if lines:
            file.write("\n".join(lines) + "\n")
            file.flush()

    # -- operations -------------------------------------------------------

    async def _dispatch(
        self, operation: str, params: dict, tracer=NULL_TRACER
    ) -> dict:
        handler = getattr(self, f"_op_{operation}")
        return await handler(params, tracer)

    @asynccontextmanager
    async def _locked(self, session: Session, tracer):
        """Acquire the session lock under a ``lock-wait`` span."""
        with tracer.span("lock-wait"):
            await session.lock.acquire()
        try:
            yield
        finally:
            session.lock.release()

    def _session(self, name: str) -> Session:
        session = self.sessions.get(name)
        if session is None:
            raise ServiceError(
                "unknown-session", f"no session named {name!r}"
            )
        return session

    async def _run_job(self, fn, tracer=NULL_TRACER):
        """Admit one compute job to the bounded worker pool.

        Returns ``(result, queue_seconds)`` where ``queue_seconds`` is
        the time spent waiting for a worker slot (also recorded as a
        ``queue-wait`` span).  After the job returns, a
        ``worker-handoff`` event records how long the job sat between
        submission to the pool and its first instruction on a worker
        thread — pool-side latency the semaphore cannot see.
        """
        if self.draining:
            raise ServiceError(
                "shutting-down", "service is draining; no new jobs"
            )
        loop = asyncio.get_running_loop()
        self.jobs_pending += 1
        try:
            queue_started = time.perf_counter()
            with tracer.span("queue-wait"):
                await self._job_slots.acquire()
            queue_seconds = time.perf_counter() - queue_started
            self.jobs_active += 1
            try:
                submitted = time.perf_counter()
                handoff: dict = {}

                def entered():
                    handoff["start"] = time.perf_counter()
                    return fn()

                result = await loop.run_in_executor(
                    self._pool, entered
                )
                if tracer.enabled:
                    tracer.event(
                        "worker-handoff",
                        seconds=(
                            handoff.get("start", submitted) - submitted
                        ),
                    )
                return result, queue_seconds
            finally:
                self.jobs_active -= 1
                self._job_slots.release()
        finally:
            self.jobs_pending -= 1

    async def _op_open_session(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        if self.draining:
            raise ServiceError(
                "shutting-down", "service is draining; no new sessions"
            )
        self._session_counter += 1
        name = f"s{self._session_counter}"
        session = Session(
            name=name,
            sources=dict(params.get("sources") or {}),
            opt_level=params.get("opt_level", 2),
            config=params.get("config", "C"),
            allocator=params.get("allocator"),
            max_cycles=params.get("max_cycles", 200_000_000),
            scheduler=CompilationScheduler(
                jobs=1,
                cache=self.cache,
                incremental=True,
                verify=False,
                allocator=params.get("allocator"),
            ),
        )
        self.sessions[name] = session
        self.sessions_opened += 1
        return {
            "session": name,
            "modules": sorted(session.sources),
            "opt_level": session.opt_level,
            "config": session.config,
            "protocol_version": PROTOCOL_VERSION,
        }

    async def _op_edit(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        session = self._session(params["session"])
        module, text = params["module"], params["text"]
        async with self._locked(session, tracer):
            if text is None:
                if module not in session.sources:
                    raise ServiceError(
                        "unknown-module",
                        f"session {session.name} has no module "
                        f"{module!r} to remove",
                    )
                del session.sources[module]
            else:
                session.sources[module] = text
            session.edits += 1
            return {
                "session": session.name,
                "modules": sorted(session.sources),
            }

    async def _op_compile(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        session = self._session(params["session"])
        lock_started = time.perf_counter()
        async with self._locked(session, tracer):
            lock_seconds = time.perf_counter() - lock_started
            if not session.sources:
                raise ServiceError(
                    "empty-session",
                    f"session {session.name} has no modules",
                )
            # Snapshot on the loop: `edit` can run the moment the lock
            # is released, but this job's view stays consistent.
            sources = dict(session.sources)
            scheduler = session.scheduler
            config = session.config
            opt_level = session.opt_level
            profile = session.profile

            def job():
                # Point the session's scheduler at the request-scoped
                # tracer so its phase1/analyze/phase2/link spans nest
                # under this request's span tree.  Safe because the
                # session lock serializes this session's compiles, and
                # `activate` makes the same tracer ambient for this
                # worker thread only (ContextVar, not a global).
                previous = scheduler.tracer
                scheduler.tracer = tracer
                try:
                    with activate(tracer):
                        before = scheduler.metrics_snapshot()
                        started = time.perf_counter()
                        phase1 = scheduler.run_phase1(
                            sources, opt_level
                        )
                        summaries = [
                            result.summary for result in phase1
                        ]
                        if config is not None:
                            options = AnalyzerOptions.config(
                                config,
                                profile
                                if config in ("B", "F")
                                else None,
                            )
                            database = scheduler.analyze(
                                summaries, options
                            )
                        else:
                            database = ProgramDatabase()
                        executable = scheduler.compile_with_database(
                            phase1, database, opt_level
                        )
                        fingerprint = executable_fingerprint(
                            executable
                        )
                        delta = scheduler.metrics_snapshot().minus(
                            before
                        )
                        return (
                            fingerprint,
                            delta,
                            time.perf_counter() - started,
                        )
                finally:
                    scheduler.tracer = previous

            with tracer.span("compile"):
                (fingerprint, delta, seconds), queue_seconds = (
                    await self._run_job(job, tracer)
                )
            session.compiles += 1
            session.last_fingerprint = fingerprint
            self.compiles_total += 1
            service_metrics.fold_compile_delta(self.registry, delta)
            service_metrics.record_compile_waits(
                self.registry, queue_seconds, lock_seconds
            )
            modules = len(sources)
            phase1_compiled = delta.stage_tasks.get("phase1", 0)
            phase2_compiled = delta.stage_tasks.get("phase2", 0)
            return {
                "session": session.name,
                "fingerprint": fingerprint,
                "modules": modules,
                "phase1_compiled": phase1_compiled,
                "phase1_cached": modules - phase1_compiled,
                "phase2_compiled": phase2_compiled,
                "phase2_cached": modules - phase2_compiled,
                "analyze": dict(delta.analyze),
                "stage_seconds": dict(delta.stage_seconds),
                "seconds": seconds,
                "queue_seconds": queue_seconds,
                "lock_seconds": lock_seconds,
            }

    async def _op_profile(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        session = self._session(params["session"])
        async with self._locked(session, tracer):
            if not session.sources:
                raise ServiceError(
                    "empty-session",
                    f"session {session.name} has no modules",
                )
            sources = dict(session.sources)
            scheduler = session.scheduler
            opt_level = session.opt_level
            max_cycles = session.max_cycles

            def job():
                phase1 = scheduler.run_phase1(sources, opt_level)
                return collect_profile(
                    phase1, opt_level, max_cycles, scheduler=scheduler
                )

            profile, _queue_seconds = await self._run_job(job, tracer)
            session.profile = profile
            return {
                "session": session.name,
                "procedures": len(profile.call_counts),
                "call_counts": {
                    name: profile.call_counts[name]
                    for name in sorted(profile.call_counts)
                },
            }

    async def _op_stats(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        name = params.get("session")
        if name is not None:
            return service_metrics.session_stats(self._session(name))
        return service_metrics.server_stats(self)

    async def _op_close(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        session = self._session(params["session"])
        # let an in-flight compile finish
        async with self._locked(session, tracer):
            self.sessions.pop(session.name, None)
            session.scheduler.close()
        return {"session": session.name, "closed": True}

    async def _op_ping(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        return {"pong": True, "protocol_version": PROTOCOL_VERSION}

    async def _op_shutdown(
        self, params: dict, tracer=NULL_TRACER
    ) -> dict:
        # Reply first, then drain: the requester gets its answer.
        asyncio.get_running_loop().create_task(self.stop())
        return {"draining": True}

    # -- /metrics endpoint -------------------------------------------------

    async def _handle_metrics(self, reader, writer) -> None:
        """A deliberately tiny HTTP/1.1 responder: enough for a
        prometheus scraper, zero dependencies."""
        try:
            request_line = await reader.readline()
            while True:  # drain request headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.split("?")[0] == "/metrics":
                body = service_metrics.render_prometheus(
                    self.registry, self
                ).encode("utf-8")
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/healthz":
                body = b"ok\n"
                status = "200 OK"
                ctype = "text/plain; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()


class ServiceThread:
    """Run a :class:`CompileService` on a dedicated event-loop thread.

    The synchronous world's handle on the daemon: tests, benchmarks,
    and ``compiler_explorer.py --serve`` use it as a context manager::

        with ServiceThread(unix_path=path) as handle:
            client = ServiceClient.connect_unix(path)
            ...

    Exit waits for a graceful drain before joining the thread.
    """

    def __init__(self, **service_kwargs):
        self._kwargs = service_kwargs
        self.service: CompileService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error = None

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service is None:
            raise RuntimeError("service failed to start in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        try:
            self.service = CompileService(**self._kwargs)
            loop.run_until_complete(self.service.start())
        except Exception as err:  # surfaced to __enter__
            self._startup_error = err
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __exit__(self, *exc_info) -> None:
        if self.loop is None:
            return
        if self.service is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(), self.loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    @property
    def tcp_address(self):
        return self.service.tcp_address if self.service else None

    @property
    def metrics_address(self):
        return self.service.metrics_address if self.service else None
