"""Linker: object modules -> executable PRISM image."""

from repro.linker.link import Executable, FunctionRange, LinkError, link

__all__ = ["Executable", "FunctionRange", "LinkError", "link"]
