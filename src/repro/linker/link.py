"""Linker: binds object modules into an executable PRISM image.

Responsibilities (paper section 2: "the object files are then bound
together by the linker"):

* symbol resolution — every referenced global/function must have exactly
  one definition across all modules (statics were qualified by the first
  phase, so identically-named statics in different modules never clash);
* data layout — globals get word addresses in the data segment;
* code layout — a two-instruction startup stub (``BL main; HALT``)
  followed by every function's instruction stream;
* relocation — function-local branch targets are rebased, ``BL`` callees
  and ``LDA`` symbols are resolved (function symbols resolve to code
  indices, data symbols to data addresses; the machine is Harvard-style).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field

from repro.backend.object import ObjectModule
from repro.ir.module import GlobalVar
from repro.target import isa

DATA_BASE = 1024  # first 1024 words are a guard region reading as zero


class LinkError(Exception):
    """Raised for duplicate or unresolved symbols."""


@dataclass
class FunctionRange:
    """Code range of one linked function (for profiling attribution)."""

    name: str
    start: int
    end: int  # exclusive
    source_module: str = ""


@dataclass
class Executable:
    """A linked PRISM program."""

    instructions: list = field(default_factory=list)
    data_words: list = field(default_factory=list)
    data_base: int = DATA_BASE
    entry_pc: int = 0
    function_entries: dict = field(default_factory=dict)  # name -> pc
    global_addresses: dict = field(default_factory=dict)  # name -> address
    function_ranges: list = field(default_factory=list)
    globals_by_name: dict = field(default_factory=dict)  # name -> GlobalVar

    def function_at(self, pc: int) -> str:
        """Name of the function containing ``pc`` (binary search)."""
        low, high = 0, len(self.function_ranges) - 1
        while low <= high:
            mid = (low + high) // 2
            rng = self.function_ranges[mid]
            if pc < rng.start:
                high = mid - 1
            elif pc >= rng.end:
                low = mid + 1
            else:
                return rng.name
        return "<stub>"

    @property
    def code_size(self) -> int:
        return len(self.instructions)


def _instruction_fields(instruction) -> dict:
    """Every slot of an instruction, including linker-resolved ones."""
    fields = {}
    for klass in type(instruction).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(instruction, slot):
                fields[slot] = getattr(instruction, slot)
    return fields


def serialize_executable(executable: Executable) -> bytes:
    """Canonical byte image of a linked executable.

    A flat, aliasing-free rendering of everything the simulator can
    observe (instructions with their resolved operands, data image,
    symbol tables).  Two executables are behaviorally identical iff
    their images are byte-identical, which is what the determinism
    suite asserts across serial/parallel and cold/warm-cache builds.
    """
    instructions = [
        [type(instruction).__name__, sorted(
            (name, value if not isinstance(value, list) else list(value))
            for name, value in _instruction_fields(instruction).items()
        )]
        for instruction in executable.instructions
    ]
    payload = {
        "entry_pc": executable.entry_pc,
        "data_base": executable.data_base,
        "instructions": instructions,
        "data_words": list(executable.data_words),
        "function_entries": dict(executable.function_entries),
        "global_addresses": dict(executable.global_addresses),
        "function_ranges": [
            [rng.name, rng.start, rng.end, rng.source_module]
            for rng in executable.function_ranges
        ],
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def executable_fingerprint(executable: Executable) -> str:
    """sha256 of :func:`serialize_executable` (the identity oracle)."""
    return hashlib.sha256(serialize_executable(executable)).hexdigest()


def link(modules: list, entry: str = "main") -> Executable:
    """Link object modules into an executable."""
    global_defs: dict[str, GlobalVar] = {}
    for module in modules:
        for var in module.globals:
            if var.name in global_defs:
                raise LinkError(
                    f"duplicate definition of global {var.name!r} "
                    f"(modules {global_defs[var.name].defining_module!r} "
                    f"and {module.name!r})"
                )
            global_defs[var.name] = var

    function_defs: dict[str, tuple] = {}
    for module in modules:
        for function in module.functions:
            if function.name in function_defs:
                raise LinkError(
                    f"duplicate definition of function {function.name!r}"
                )
            function_defs[function.name] = (module, function)

    for module in modules:
        for name in module.extern_globals:
            if name not in global_defs:
                raise LinkError(
                    f"module {module.name!r}: undefined global {name!r}"
                )
        for name in module.extern_functions:
            if name not in function_defs:
                raise LinkError(
                    f"module {module.name!r}: undefined function {name!r}"
                )
    if entry not in function_defs:
        raise LinkError(f"undefined entry point {entry!r}")

    executable = Executable()

    # Data layout.
    address = DATA_BASE
    for name in sorted(global_defs):
        var = global_defs[name]
        executable.global_addresses[name] = address
        executable.globals_by_name[name] = var
        words = list(var.init_words)
        words += [0] * (var.size_words - len(words))
        executable.data_words.extend(words[: var.size_words])
        address += var.size_words

    # Code layout: startup stub, then functions.  The stub call may
    # clobber anything (main owes the runtime no register preservation
    # beyond the convention; the exit code travels in RV).
    from repro.target.registers import ALL_ALLOCATABLE, RP

    stub_call = isa.BL(entry, [], sorted(ALL_ALLOCATABLE | {RP}))
    executable.instructions.append(stub_call)
    executable.instructions.append(isa.HALT())
    for name in sorted(function_defs):
        module, function = function_defs[name]
        base = len(executable.instructions)
        executable.function_entries[name] = base
        instructions = copy.deepcopy(function.instructions)
        for instruction in instructions:
            if isinstance(instruction, (isa.B, isa.BC)):
                instruction.target += base
        executable.instructions.extend(instructions)
        executable.function_ranges.append(
            FunctionRange(name, base, len(executable.instructions),
                          function.source_module)
        )

    # Relocation of symbolic references.
    for instruction in executable.instructions:
        if isinstance(instruction, isa.BL):
            instruction.resolved = executable.function_entries[
                instruction.callee
            ]
        elif isinstance(instruction, isa.LDA):
            if instruction.is_function:
                if instruction.symbol not in executable.function_entries:
                    raise LinkError(
                        f"undefined function {instruction.symbol!r}"
                    )
                instruction.resolved = executable.function_entries[
                    instruction.symbol
                ]
            else:
                if instruction.symbol not in executable.global_addresses:
                    raise LinkError(
                        f"undefined global {instruction.symbol!r}"
                    )
                instruction.resolved = executable.global_addresses[
                    instruction.symbol
                ]
    return executable
