"""Incremental program analysis: summary-diff invalidation and
database patching.

The paper's two-pass design already makes *module compilation*
incremental — phase 1 and phase 2 are per-module jobs keyed on content
fingerprints.  This package closes the remaining gap: the program
analyzer itself.  Instead of re-running web identification and cluster
formation for the whole program on every edit, the
:class:`~repro.incremental.engine.IncrementalAnalyzer` diffs the new
summary files against the previous epoch, computes the dirty region
(:mod:`repro.incremental.invalidate`), replays memoized results for
everything provably clean (:mod:`repro.incremental.depgraph` records
what depends on what), and patches the retained
:class:`~repro.analyzer.database.ProgramDatabase` in place.

Correctness contract: the patched database is payload-identical
(``to_json``) to a from-scratch :func:`~repro.analyzer.driver.analyze_program`
on the same summaries.  The test suite enforces this with the always-on
cross-check mode (``REPRO_INCREMENTAL_CHECK=1``).
"""

from repro.incremental.depgraph import DependencyGraph
from repro.incremental.engine import (
    IncrementalAnalyzer,
    IncrementalMismatchError,
    InvalidationReport,
    options_digest,
    profile_digest,
)
from repro.incremental.invalidate import (
    DirtyRegion,
    SummaryDelta,
    compute_dirty_region,
    diff_summaries,
)
from repro.incremental.summarydb import SummaryDB

__all__ = [
    "DependencyGraph",
    "DirtyRegion",
    "IncrementalAnalyzer",
    "IncrementalMismatchError",
    "InvalidationReport",
    "SummaryDB",
    "SummaryDelta",
    "compute_dirty_region",
    "diff_summaries",
    "options_digest",
    "profile_digest",
]
