"""The incremental analyzer engine.

:class:`IncrementalAnalyzer` makes
:func:`~repro.analyzer.driver.analyze_program` re-entrant across
edits.  The strategy follows from the analyzer's own structure: the
pipeline is deterministic, and its two structurally expensive steps —
per-variable web construction and cluster identification — have
precisely characterizable input regions.  So the engine

1. diffs the new summaries against the previous epoch
   (:func:`~repro.incremental.invalidate.diff_summaries`),
2. computes the conservative dirty region
   (:func:`~repro.incremental.invalidate.compute_dirty_region`) using
   the dependency records of the previous run
   (:class:`~repro.incremental.depgraph.DependencyGraph`),
3. re-runs ``analyze_program`` with *memoizing suppliers*: clean
   variables replay their cached webs (id-exact, via per-variable id
   spans), a clean graph replays the cached cluster list, and only the
   dirty region is recomputed.  The cheap globally-coupled phases
   (reference sets, weight normalization, interference, coloring,
   register sets, caller-saves usage) always recompute — they are a
   small fraction of the run and their global coupling makes partial
   recomputation unsound;
4. patches the retained :class:`~repro.analyzer.database.ProgramDatabase`
   in place: procedures whose ``directive_payload`` did not move keep
   their directive objects, the rest are swapped.

Whenever invalidation cannot prove safety — first sight of an options
configuration, a profile swap, blanket promotion (whole-program by
definition), or a change to the eligible-variable set — the engine
falls back to a full analysis and says so in the
:class:`InvalidationReport`.

Correctness is enforced, not assumed: with ``cross_check`` enabled
(``REPRO_INCREMENTAL_CHECK=1``, on throughout the test suite) every
update is shadowed by a from-scratch analysis and any divergence in
the database payload, web census, cluster census, or statistics raises
:class:`IncrementalMismatchError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Optional

from repro.analyzer.clusters import Cluster
from repro.analyzer.database import ProgramDatabase, directive_payload
from repro.analyzer.driver import AnalysisTrace, analyze_program
from repro.analyzer.options import AnalyzerOptions
from repro.analyzer.webs import Web, identify_variable_webs
from repro.callgraph.dataflow import eligible_globals
from repro.callgraph.graph import CallGraph
from repro.incremental.depgraph import DependencyGraph
from repro.incremental.invalidate import compute_dirty_region, diff_summaries
from repro.incremental.summarydb import SummaryDB


class IncrementalMismatchError(Exception):
    """The patched database diverged from a from-scratch analysis."""


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def profile_digest(profile) -> str:
    """Content address of a :class:`~repro.machine.profiler.ProfileData`
    (``"none"`` for heuristic runs)."""
    if profile is None:
        return "none"
    return _digest(
        {
            "call_counts": {
                name: profile.call_counts[name]
                for name in sorted(profile.call_counts)
            },
            "call_edges": {
                f"{caller}\x00{callee}": count
                for (caller, callee), count in sorted(
                    profile.call_edges.items()
                )
            },
        }
    )


def options_digest(options: AnalyzerOptions) -> str:
    """Content address of everything in ``options`` except the profile
    *content* (tracked separately so a profile swap reads as a fallback
    condition, not as a brand-new configuration)."""
    from dataclasses import asdict

    return _digest(
        {
            "global_promotion": options.global_promotion,
            "coloring": options.coloring,
            "num_web_registers": options.num_web_registers,
            "blanket_count": options.blanket_count,
            "spill_code_motion": options.spill_code_motion,
            "has_profile": options.profile is not None,
            "web_options": asdict(options.web_options),
            "cluster_options": asdict(options.cluster_options),
            "exported_procedures": (
                sorted(options.exported_procedures)
                if options.exported_procedures is not None
                else None
            ),
            "externally_visible_globals": sorted(
                options.externally_visible_globals
            ),
            "caller_saves_preallocation": (
                options.caller_saves_preallocation
            ),
        }
    )


@dataclass
class InvalidationReport:
    """What one :meth:`IncrementalAnalyzer.update` did and why."""

    mode: str = "full"  # "full" | "incremental"
    reason: Optional[str] = None  # fallback reason for full runs
    epoch: int = 0
    changed_modules: tuple = ()
    changed_procedures: tuple = ()
    #: procedure -> sorted tuple of change-kind labels
    change_kinds: dict = field(default_factory=dict)
    dirty_variables: tuple = ()
    webs_total: int = 0
    webs_reused: int = 0
    webs_recomputed: int = 0
    clusters_total: int = 0
    clusters_reused: int = 0
    clusters_recomputed: int = 0
    procedures_patched: int = 0
    procedures_retained: int = 0
    cross_checked: bool = False

    @property
    def fraction_reanalyzed(self) -> float:
        """Share of webs+clusters recomputed this update (1.0 when
        there was nothing to reuse)."""
        total = self.webs_total + self.clusters_total
        if total == 0:
            return 1.0 if self.mode == "full" else 0.0
        return (self.webs_recomputed + self.clusters_recomputed) / total

    def to_json_dict(self) -> dict:
        return {
            "mode": self.mode,
            "reason": self.reason,
            "epoch": self.epoch,
            "changed_modules": list(self.changed_modules),
            "changed_procedures": list(self.changed_procedures),
            "change_kinds": {
                name: list(kinds)
                for name, kinds in self.change_kinds.items()
            },
            "dirty_variables": list(self.dirty_variables),
            "webs_total": self.webs_total,
            "webs_reused": self.webs_reused,
            "webs_recomputed": self.webs_recomputed,
            "clusters_total": self.clusters_total,
            "clusters_reused": self.clusters_reused,
            "clusters_recomputed": self.clusters_recomputed,
            "procedures_patched": self.procedures_patched,
            "procedures_retained": self.procedures_retained,
            "fraction_reanalyzed": self.fraction_reanalyzed,
            "cross_checked": self.cross_checked,
        }


@dataclass
class _AnalysisState:
    """Everything retained per options configuration between updates."""

    summaries: dict  # module name -> deep-copied ModuleSummary
    ordered_modules: list  # module names in caller order
    graph: CallGraph
    weights: dict  # name -> normalized weight
    eligible: frozenset
    profile_digest: str
    depgraph: DependencyGraph
    #: variable -> {"ids_consumed": int,
    #:              "webs": [(id offset, nodes, from_split, reason)]}
    web_cache: dict
    clusters_cache: list  # [(root, frozenset(members))]
    database: ProgramDatabase
    epoch: int = 0


class IncrementalAnalyzer:
    """Re-entrant wrapper around ``analyze_program``.

    Args:
        summary_db: fingerprint store (in-memory when omitted).
        cross_check: shadow every update with a from-scratch analysis
            and raise :class:`IncrementalMismatchError` on divergence.
            ``None`` reads ``REPRO_INCREMENTAL_CHECK`` ("1" enables).

    One engine holds one state per options digest, so a Table 4
    configuration sweep stays incremental for every configuration.
    """

    def __init__(
        self,
        summary_db: Optional[SummaryDB] = None,
        cross_check: Optional[bool] = None,
    ):
        self.summary_db = summary_db if summary_db is not None else SummaryDB()
        if cross_check is None:
            cross_check = os.environ.get(
                "REPRO_INCREMENTAL_CHECK", ""
            ) not in ("", "0")
        self.cross_check = cross_check
        self.last_report: Optional[InvalidationReport] = None
        self._states: dict = {}

    # -- public API -------------------------------------------------------

    def analyze(self, summaries, options=None) -> ProgramDatabase:
        """Scheduler-shaped entry point; the report lands on
        :attr:`last_report`."""
        database, _report = self.update(summaries, options)
        return database

    def update(self, summaries, options=None):
        """Re-analyze after an edit.

        Returns ``(database, report)``.  The database is the *retained*
        object patched in place whenever this configuration has been
        analyzed before (so callers may hold on to it across edits).
        """
        summaries = list(summaries)
        options = options or AnalyzerOptions()
        key = options_digest(options)
        pdigest = profile_digest(options.profile)
        self.summary_db.record(summaries)

        state = self._states.get(key)
        eligible = frozenset(
            eligible_globals(summaries)
            - set(options.externally_visible_globals)
        )

        reason = None
        if state is None:
            reason = "cold"
        elif options.global_promotion == "blanket":
            reason = "blanket-promotion"
        elif state.profile_digest != pdigest:
            reason = "profile-swap"
        elif state.eligible != eligible:
            reason = "eligibility-changed"

        if reason is not None:
            report = self._full_update(
                key, summaries, options, pdigest, eligible, reason
            )
        else:
            report = self._incremental_update(
                key, summaries, options, pdigest, eligible
            )
        report.epoch = self.summary_db.epoch
        if self.cross_check:
            self._run_cross_check(key, summaries, options)
            report.cross_checked = True
        self.last_report = report
        return self._states[key].database, report

    # -- full path --------------------------------------------------------

    def _full_update(
        self, key, summaries, options, pdigest, eligible, reason
    ) -> InvalidationReport:
        old_state = self._states.get(key)
        delta_report = self._describe_delta(old_state, summaries)
        trace = AnalysisTrace()
        database = analyze_program(summaries, options, trace=trace)
        report = InvalidationReport(
            mode="full",
            reason=reason,
            webs_total=len(trace.webs),
            webs_recomputed=len(trace.webs),
            clusters_total=len(trace.clusters),
            clusters_recomputed=len(trace.clusters),
            **delta_report,
        )
        self._install_state(
            key, summaries, options, pdigest, eligible, trace,
            database, old_state, report,
        )
        return report

    # -- incremental path -------------------------------------------------

    def _incremental_update(
        self, key, summaries, options, pdigest, eligible
    ) -> InvalidationReport:
        state = self._states[key]
        new_summaries = {s.module_name: s for s in summaries}
        new_graph = self._build_graph(summaries, options)
        delta = diff_summaries(state.summaries, new_summaries)
        dirty = compute_dirty_region(
            delta, state.graph, new_graph, state.weights, state.depgraph
        )

        counters = {"reused": 0, "recomputed": 0}
        dirty_variables = dirty.dirty_variables
        web_cache = state.web_cache

        def web_supplier(variable, graph, sets, static_modules, next_id):
            cached = web_cache.get(variable)
            if cached is not None and variable not in dirty_variables:
                start = next_id[0]
                replayed = [
                    Web(
                        web_id=start + offset,
                        variable=variable,
                        nodes=set(nodes),
                        from_split=from_split,
                        discarded_reason=reason,
                    )
                    for offset, nodes, from_split, reason in cached["webs"]
                ]
                next_id[0] = start + cached["ids_consumed"]
                counters["reused"] += len(replayed)
                return replayed
            fresh = identify_variable_webs(
                graph, sets, variable, options.web_options,
                static_modules, next_id,
            )
            counters["recomputed"] += len(fresh)
            return fresh

        cluster_supplier = None
        if not dirty.clusters_dirty:
            cached_clusters = state.clusters_cache

            def cluster_supplier(graph, dominators):
                return [
                    Cluster(root=root, members=set(members))
                    for root, members in cached_clusters
                ]

        trace = AnalysisTrace()
        database = analyze_program(
            summaries,
            options,
            web_supplier=web_supplier,
            cluster_supplier=cluster_supplier,
            trace=trace,
        )
        clusters_total = len(trace.clusters)
        report = InvalidationReport(
            mode="incremental",
            changed_modules=tuple(sorted(delta.modules_changed)),
            changed_procedures=tuple(sorted(delta.changed_procedures)),
            change_kinds={
                name: tuple(sorted(kinds))
                for name, kinds in sorted(delta.procedure_changes.items())
            },
            dirty_variables=tuple(sorted(dirty_variables)),
            webs_total=len(trace.webs),
            webs_reused=counters["reused"],
            webs_recomputed=counters["recomputed"],
            clusters_total=clusters_total,
            clusters_reused=(
                clusters_total if not dirty.clusters_dirty else 0
            ),
            clusters_recomputed=(
                clusters_total if dirty.clusters_dirty else 0
            ),
        )
        self._install_state(
            key, summaries, options, pdigest, eligible, trace,
            database, state, report,
        )
        return report

    # -- shared plumbing --------------------------------------------------

    @staticmethod
    def _build_graph(summaries, options) -> CallGraph:
        exported = options.exported_procedures
        graph = CallGraph.build(
            summaries, set(exported) if exported is not None else None
        )
        graph.normalize_weights(options.profile)
        return graph

    def _describe_delta(self, old_state, summaries) -> dict:
        """Change ledger for full-run reports (empty on cold starts)."""
        if old_state is None:
            return {}
        delta = diff_summaries(
            old_state.summaries, {s.module_name: s for s in summaries}
        )
        return {
            "changed_modules": tuple(sorted(delta.modules_changed)),
            "changed_procedures": tuple(sorted(delta.changed_procedures)),
            "change_kinds": {
                name: tuple(sorted(kinds))
                for name, kinds in sorted(delta.procedure_changes.items())
            },
        }

    def _install_state(
        self, key, summaries, options, pdigest, eligible, trace,
        database, old_state, report,
    ) -> None:
        """Rebuild the retained state from this run's trace and patch
        the retained database in place (when one exists)."""
        copies = [deepcopy(summary) for summary in summaries]
        graph = self._build_graph(copies, options)
        web_cache: dict = {}
        for variable, (_start, consumed) in trace.web_id_spans.items():
            web_cache[variable] = {"ids_consumed": consumed, "webs": []}
        for variable, web_id, nodes, from_split, reason in (
            trace.web_snapshots
        ):
            start, _consumed = trace.web_id_spans[variable]
            web_cache[variable]["webs"].append(
                (web_id - start, nodes, from_split, reason)
            )

        if old_state is not None:
            retained = old_state.database
            patched, kept = _patch_database(retained, database)
            report.procedures_patched = patched
            report.procedures_retained = kept
            database = retained
        else:
            report.procedures_patched = len(database.procedures)

        self._states[key] = _AnalysisState(
            summaries={s.module_name: s for s in copies},
            ordered_modules=[s.module_name for s in copies],
            graph=graph,
            weights={
                name: node.weight for name, node in graph.nodes.items()
            },
            eligible=eligible,
            profile_digest=pdigest,
            depgraph=DependencyGraph.record(trace, trace.graph or graph),
            web_cache=web_cache,
            clusters_cache=[
                (cluster.root, frozenset(cluster.members))
                for cluster in trace.clusters
            ],
            database=database,
            epoch=self.summary_db.epoch,
        )

    def _run_cross_check(self, key, summaries, options) -> None:
        """Shadow the update with a from-scratch analysis and compare."""
        from repro.obs.tracer import suppressed

        state = self._states[key]
        # The reference analysis is a shadow of work already narrated by
        # the real update — tracing it would double-emit every
        # provenance event.
        with suppressed():
            reference = analyze_program(summaries, options)
        patched = state.database
        if patched.to_json() != reference.to_json():
            raise IncrementalMismatchError(
                "incremental database payload diverged from a "
                "from-scratch analysis:\n"
                + _first_payload_difference(patched, reference)
            )
        if _web_census(patched) != _web_census(reference):
            raise IncrementalMismatchError(
                "incremental web census diverged from a from-scratch "
                "analysis"
            )
        if _cluster_census(patched) != _cluster_census(reference):
            raise IncrementalMismatchError(
                "incremental cluster census diverged from a "
                "from-scratch analysis"
            )
        if patched.statistics != reference.statistics:
            raise IncrementalMismatchError(
                "incremental statistics diverged: "
                f"{patched.statistics} != {reference.statistics}"
            )


def _patch_database(
    retained: ProgramDatabase, fresh: ProgramDatabase
):
    """Patch ``retained`` in place to match ``fresh``; returns the
    ``(patched, kept)`` procedure counts.  Directive objects whose
    payload did not move are kept (callers holding references — and
    phase-2 caches keyed on directive digests — see stable objects)."""
    patched = 0
    kept = 0
    for name in list(retained.procedures):
        if name not in fresh.procedures:
            del retained.procedures[name]
            patched += 1
    for name, directives in fresh.procedures.items():
        current = retained.procedures.get(name)
        if current is not None and (
            directive_payload(current) == directive_payload(directives)
        ):
            kept += 1
            continue
        retained.procedures[name] = directives
        patched += 1
    retained.webs = fresh.webs
    retained.clusters = fresh.clusters
    retained.statistics = fresh.statistics
    return patched, kept


def _web_census(database: ProgramDatabase) -> list:
    return [
        (
            web.web_id,
            web.variable,
            tuple(sorted(web.nodes)),
            tuple(sorted(web.entry_nodes)),
            web.register,
            tuple(sorted(web.interferes_with)),
            web.priority,
            web.discarded_reason,
        )
        for web in database.webs
    ]


def _cluster_census(database: ProgramDatabase) -> list:
    return [
        (cluster.root, tuple(sorted(cluster.members)))
        for cluster in database.clusters
    ]


def _first_payload_difference(
    patched: ProgramDatabase, fresh: ProgramDatabase
) -> str:
    names = sorted(
        set(patched.procedures) | set(fresh.procedures)
    )
    for name in names:
        left = directive_payload(patched.get(name))
        right = directive_payload(fresh.get(name))
        if left != right:
            return (
                f"first divergent procedure: {name}\n"
                f"  incremental: {json.dumps(left, sort_keys=True)}\n"
                f"  from-scratch: {json.dumps(right, sort_keys=True)}"
            )
    return "payloads differ only in procedure membership"
