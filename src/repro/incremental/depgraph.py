"""Output-to-input dependency recording for one analyzer run.

While (or rather, right after) the full analyzer runs, the engine
hands this module the run's :class:`~repro.analyzer.driver.AnalysisTrace`
and the dependency graph records, for every output the analyzer
produced, the region of inputs it was computed from:

* each **web** depends on the summaries of its member/subgraph
  procedures and their immediate neighbors (predecessors pull entry
  nodes into webs, successors carry reference closures through them)
  and on its global's whole referencing set;
* each **cluster** depends on its member procedures and their
  predecessors (incoming edge weights select roots);
* each procedure's **FREE/CALLER/CALLEE/MSPILL** sets depend on its
  cluster and on the chain of cluster roots dominating it (MSPILL
  migrates toward dominating roots, FREE flows back down);
* each **interference edge** depends on the overlap of the two web
  regions that induce it.

The engine uses the web regions and referencing sets to answer "which
variables' webs may be invalid given these dirty nodes?"; the cluster
and regset records exist for the same question at cluster granularity
and power the invalidation report and documentation examples (register
sets themselves are always recomputed — they are cheap and globally
coupled through the bottom-up MSPILL migration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph


def _neighborhood(graph: CallGraph, nodes) -> set:
    """``nodes`` plus every immediate predecessor and successor."""
    region = set(nodes)
    for name in nodes:
        node = graph.nodes.get(name)
        if node is None:
            continue
        region |= set(node.predecessors)
        region |= set(node.successors)
    return region


@dataclass
class WebDependency:
    """One web's recorded input region."""

    variable: str
    web_id: int
    nodes: frozenset
    #: member nodes plus immediate predecessors and successors
    region: frozenset


@dataclass
class ClusterDependency:
    """One cluster's recorded input region."""

    root: str
    members: frozenset
    #: root + members plus their immediate predecessors
    region: frozenset


@dataclass
class RegsetDependency:
    """What one procedure's usage sets were computed from."""

    name: str
    cluster_root: object  # Optional[str]
    #: cluster roots dominating this procedure, nearest first
    dominating_roots: tuple = ()


@dataclass
class DependencyGraph:
    """Everything one analyzer run's outputs depended on."""

    webs: list = field(default_factory=list)  # [WebDependency]
    clusters: list = field(default_factory=list)  # [ClusterDependency]
    regsets: dict = field(default_factory=dict)  # name -> RegsetDependency
    #: variable -> frozenset of procedures referencing it (l_ref)
    referencing: dict = field(default_factory=dict)
    #: (web_id, web_id) pairs whose regions overlap -> frozenset overlap
    interference: dict = field(default_factory=dict)
    #: variable -> union of its webs' regions
    _variable_regions: dict = field(default_factory=dict)

    @classmethod
    def record(cls, trace, graph: CallGraph) -> "DependencyGraph":
        """Build the dependency record from a completed run's trace."""
        depgraph = cls()

        if trace.reference_sets is not None:
            referencing: dict = {}
            for name, variables in trace.reference_sets.l_ref.items():
                for variable in variables:
                    referencing.setdefault(variable, set()).add(name)
            depgraph.referencing = {
                variable: frozenset(names)
                for variable, names in referencing.items()
            }

        for variable, web_id, nodes, _from_split, _reason in (
            trace.web_snapshots
        ):
            region = frozenset(_neighborhood(graph, nodes))
            depgraph.webs.append(
                WebDependency(variable, web_id, frozenset(nodes), region)
            )
            merged = depgraph._variable_regions.setdefault(variable, set())
            merged |= region

        by_id = {dep.web_id: dep for dep in depgraph.webs}
        ordered = sorted(by_id)
        for index, first in enumerate(ordered):
            for second in ordered[index + 1:]:
                overlap = by_id[first].nodes & by_id[second].nodes
                if overlap:
                    depgraph.interference[(first, second)] = overlap

        root_of: dict = {}
        for cluster in trace.clusters:
            all_nodes = set(cluster.all_nodes)
            region = set(all_nodes)
            for name in all_nodes:
                node = graph.nodes.get(name)
                if node is not None:
                    region |= set(node.predecessors)
            depgraph.clusters.append(
                ClusterDependency(
                    cluster.root,
                    frozenset(cluster.members),
                    frozenset(region),
                )
            )
            for name in all_nodes:
                root_of[name] = cluster.root

        roots = {dep.root for dep in depgraph.clusters}
        for name in graph.nodes:
            chain: tuple = ()
            if trace.dominators is not None:
                chain = tuple(
                    dominator
                    for dominator in trace.dominators.dominators_of(name)
                    if dominator in roots and dominator != name
                )
            depgraph.regsets[name] = RegsetDependency(
                name, root_of.get(name), chain
            )
        return depgraph

    # -- queries ----------------------------------------------------------

    def dirty_variables_for(self, dirty_nodes: set) -> set:
        """Variables whose webs may be invalid given ``dirty_nodes``:
        any whose recorded web region or referencing set intersects."""
        dirty = set()
        for variable, region in self._variable_regions.items():
            if region & dirty_nodes:
                dirty.add(variable)
        for variable, names in self.referencing.items():
            if names & dirty_nodes:
                dirty.add(variable)
        return dirty

    def dirty_clusters_for(self, dirty_nodes: set) -> set:
        """Roots of clusters whose recorded region intersects."""
        return {
            dep.root
            for dep in self.clusters
            if dep.region & dirty_nodes
        }

    def regset_closure(self, dirty_roots: set) -> set:
        """Procedures whose usage sets transitively depend on any of
        ``dirty_roots`` (their own cluster or a dominating root)."""
        closure = set()
        for name, dep in self.regsets.items():
            if dep.cluster_root in dirty_roots or any(
                root in dirty_roots for root in dep.dominating_roots
            ):
                closure.add(name)
        return closure
