"""Summary diffing and dirty-region computation.

Two layers:

* :func:`diff_summaries` compares two whole-program summary sets
  field-by-field and classifies every procedure's change into *kinds*
  (``call-edges``, ``call-freqs``, ``address-taken``, ``indirect``,
  ``global-set``, ``global-freqs``, ``estimates``, ``added``,
  ``removed``) — the human-readable ledger the
  :class:`~repro.incremental.engine.InvalidationReport` surfaces.

* :func:`compute_dirty_region` turns the delta — plus the *built* call
  graphs of both epochs, whose edge sets already include the
  conservative indirect-call expansion — into the set of call-graph
  nodes and promotion variables whose analysis results may no longer
  be valid.

The region is deliberately conservative on call-graph **shape**
changes: the anchors (procedures added or removed, endpoints of any
edge that appeared or vanished — which covers address-taken changes,
because those materialize as edges from every indirect caller) dirty
everything reachable from them in either epoch's graph *and* every
node inside their dominator subtrees in either epoch's dominator tree.
Node-weight changes are handled exactly rather than structurally: the
engine compares the normalized weight of every node between epochs, so
a frequency edit whose effects propagate program-wide dirties exactly
the nodes whose weights actually moved.

Why these rules are sufficient for web reuse (the expensive memoized
step): the construction of variable *v*'s webs depends only on (a) the
set of procedures referencing v and the reference-set closures, (b)
the graph shape on and around those procedures, (c) node weights
(screening thresholds), and (d) the static-module binding of v.  Rule
(a) is covered by ``variables_touched`` (any procedure whose refs or
stores of v changed dirties v program-wide), (b) by intersecting v's
recorded web regions and referencing set with the shape-dirty region
D, (c) by intersecting with the weight-changed nodes, and (d) by
``global_changes``.  Clusters additionally consume raw edge
frequencies (root selection weighs edges), so the cluster list is
reused only when the graph is identical edge-for-edge and
weight-for-weight — ``clusters_dirty`` says whether it is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph

#: Per-procedure change-kind labels, in reporting order.
CHANGE_KINDS = (
    "added",
    "removed",
    "call-edges",
    "call-freqs",
    "address-taken",
    "indirect",
    "global-set",
    "global-freqs",
    "estimates",
)


@dataclass
class SummaryDelta:
    """Field-level difference between two whole-program summary sets."""

    modules_changed: set = field(default_factory=set)
    #: procedure -> set of kind strings (see :data:`CHANGE_KINDS`)
    procedure_changes: dict = field(default_factory=dict)
    #: globals whose declaration record changed, appeared, or vanished
    global_changes: set = field(default_factory=set)
    #: globals whose reference/store pattern changed in some procedure
    variables_touched: set = field(default_factory=set)
    aliased_changed: bool = False

    @property
    def changed_procedures(self) -> set:
        return set(self.procedure_changes)

    @property
    def empty(self) -> bool:
        return (
            not self.procedure_changes
            and not self.global_changes
            and not self.aliased_changed
        )


def _procedure_change_kinds(old, new) -> set:
    """Classify what moved between two same-name procedure summaries."""
    kinds = set()
    if set(old.calls) != set(new.calls):
        kinds.add("call-edges")
    elif old.calls != new.calls:
        kinds.add("call-freqs")
    if sorted(old.address_taken_procs) != sorted(new.address_taken_procs):
        kinds.add("address-taken")
    if (
        old.makes_indirect_calls != new.makes_indirect_calls
        or old.indirect_call_freq != new.indirect_call_freq
    ):
        kinds.add("indirect")
    old_vars = set(old.global_refs) | set(old.global_stores)
    new_vars = set(new.global_refs) | set(new.global_stores)
    if old_vars != new_vars:
        kinds.add("global-set")
    elif (
        old.global_refs != new.global_refs
        or old.global_stores != new.global_stores
    ):
        kinds.add("global-freqs")
    if (
        old.callee_saves_needed != new.callee_saves_needed
        or old.caller_saves_needed != new.caller_saves_needed
        or old.max_call_args != new.max_call_args
        or old.num_params != new.num_params
    ):
        kinds.add("estimates")
    return kinds


def _touched_variables(old, new) -> set:
    """Globals whose reference or store pattern differs between two
    procedure records (either record may be None: added/removed)."""
    touched = set()
    for attribute in ("global_refs", "global_stores"):
        old_map = getattr(old, attribute, None) or {}
        new_map = getattr(new, attribute, None) or {}
        for name in set(old_map) | set(new_map):
            if old_map.get(name) != new_map.get(name):
                touched.add(name)
    return touched


def diff_summaries(old_summaries: dict, new_summaries: dict) -> SummaryDelta:
    """Diff two module-name-keyed summary sets field by field."""
    delta = SummaryDelta()

    old_procs = {
        p.name: p for s in old_summaries.values() for p in s.procedures
    }
    new_procs = {
        p.name: p for s in new_summaries.values() for p in s.procedures
    }
    for name in old_procs.keys() - new_procs.keys():
        delta.procedure_changes[name] = {"removed"}
        delta.variables_touched |= _touched_variables(old_procs[name], None)
    for name in new_procs.keys() - old_procs.keys():
        delta.procedure_changes[name] = {"added"}
        delta.variables_touched |= _touched_variables(None, new_procs[name])
    for name in old_procs.keys() & new_procs.keys():
        kinds = _procedure_change_kinds(old_procs[name], new_procs[name])
        if kinds:
            delta.procedure_changes[name] = kinds
            delta.variables_touched |= _touched_variables(
                old_procs[name], new_procs[name]
            )

    old_globals = {
        g.name: g for s in old_summaries.values() for g in s.globals
    }
    new_globals = {
        g.name: g for s in new_summaries.values() for g in s.globals
    }
    for name in old_globals.keys() | new_globals.keys():
        old_g = old_globals.get(name)
        new_g = new_globals.get(name)
        if (old_g is None) != (new_g is None) or (
            old_g is not None
            and old_g.canonical_payload() != new_g.canonical_payload()
        ):
            delta.global_changes.add(name)

    def aliased(summaries: dict) -> dict:
        return {
            name: sorted(s.aliased_globals)
            for name, s in summaries.items()
        }

    delta.aliased_changed = aliased(old_summaries) != aliased(new_summaries)

    for name in set(old_summaries) | set(new_summaries):
        old_s = old_summaries.get(name)
        new_s = new_summaries.get(name)
        if (
            old_s is None
            or new_s is None
            or old_s.fingerprint() != new_s.fingerprint()
        ):
            delta.modules_changed.add(name)
    return delta


@dataclass
class DirtyRegion:
    """What an edit may have invalidated."""

    #: shape-change anchors: added/removed procedures and the endpoints
    #: of edges that appeared or vanished
    anchors: set = field(default_factory=set)
    #: nodes whose analysis context may have changed (anchors, their
    #: reachable sets and dominator subtrees in both epochs, plus every
    #: node whose normalized weight moved)
    dirty_nodes: set = field(default_factory=set)
    #: nodes whose normalized weight moved (subset of ``dirty_nodes``)
    weight_changed: set = field(default_factory=set)
    #: promotion variables whose webs must be rebuilt
    dirty_variables: set = field(default_factory=set)
    #: False iff the graph is identical edge-for-edge (frequencies
    #: included) and weight-for-weight, so the cluster list is reusable
    clusters_dirty: bool = False


def _reachable_from(graph: CallGraph, sources: set) -> set:
    reached = set()
    worklist = [name for name in sources if name in graph.nodes]
    while worklist:
        name = worklist.pop()
        if name in reached:
            continue
        reached.add(name)
        worklist.extend(
            s for s in graph.nodes[name].successors if s not in reached
        )
    return reached


def _dominator_subtrees(graph: CallGraph, anchors: set) -> set:
    """All nodes some anchor dominates (anchors included)."""
    present = {name for name in anchors if name in graph.nodes}
    if not present:
        return set()
    dominators = graph.dominator_tree()
    subtree = set()
    for name in dominators.reachable_nodes:
        if present.intersection(dominators.dominators_of(name)):
            subtree.add(name)
    return subtree


def compute_dirty_region(
    delta: SummaryDelta,
    old_graph: CallGraph,
    new_graph: CallGraph,
    old_weights: dict,
    depgraph,
) -> DirtyRegion:
    """Conservative dirty region of one edit.

    ``old_weights`` maps node name to the previous epoch's normalized
    weight; ``depgraph`` is the previous epoch's recorded
    :class:`~repro.incremental.depgraph.DependencyGraph`.
    """
    region = DirtyRegion()
    old_nodes = set(old_graph.nodes)
    new_nodes = set(new_graph.nodes)

    region.anchors |= old_nodes ^ new_nodes
    edge_freqs_changed = False
    for name in old_nodes & new_nodes:
        old_succ = old_graph.nodes[name].successors
        new_succ = new_graph.nodes[name].successors
        if set(old_succ) != set(new_succ):
            region.anchors.add(name)
            region.anchors |= set(old_succ).symmetric_difference(new_succ)
        elif old_succ != new_succ:
            edge_freqs_changed = True

    for name in old_nodes & new_nodes:
        if old_weights.get(name) != new_graph.nodes[name].weight:
            region.weight_changed.add(name)
    region.weight_changed |= old_nodes ^ new_nodes

    dirty = set(region.anchors)
    dirty |= _reachable_from(old_graph, region.anchors)
    dirty |= _reachable_from(new_graph, region.anchors)
    dirty |= _dominator_subtrees(old_graph, region.anchors)
    dirty |= _dominator_subtrees(new_graph, region.anchors)
    dirty |= region.weight_changed
    region.dirty_nodes = dirty

    region.dirty_variables |= delta.variables_touched
    region.dirty_variables |= delta.global_changes
    if depgraph is not None:
        region.dirty_variables |= depgraph.dirty_variables_for(dirty)

    region.clusters_dirty = bool(
        region.anchors or region.weight_changed or edge_freqs_changed
    )
    return region
