"""Versioned summary store for the incremental analyzer.

Tracks, per module, the canonical :meth:`ModuleSummary.fingerprint`
plus every procedure's :meth:`ProcedureSummary.fingerprint`, under a
whole-program *epoch* that advances whenever any recorded content
moves.  The store answers the only question invalidation needs from
persistence — "which modules' analyzer-visible content changed since
the epoch I last analyzed?" — without keeping the summaries themselves
(the engine holds those in memory; this store is what survives a
process restart).

The on-disk form is a single JSON file written atomically (tmp file +
``os.replace``), versioned by :data:`SUMMARYDB_SCHEMA` and by the
summary layout's own :data:`~repro.frontend.summary.SUMMARY_SCHEMA`:
a layout bump invalidates the whole store rather than trusting stale
fingerprints.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from repro.frontend.summary import SUMMARY_SCHEMA, ModuleSummary

#: Bump when the store layout (not the summary layout) changes.
SUMMARYDB_SCHEMA = 1


class SummaryDB:
    """Fingerprint store with a whole-program epoch.

    Args:
        path: JSON file backing the store, or ``None`` for a purely
            in-memory store (the default used by tests and one-shot
            builds).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else None
        self.epoch = 0
        #: module name -> {"fingerprint": str, "procedures": {name: fp}}
        self.modules: dict = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    # -- persistence ------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        if (
            raw.get("schema") != SUMMARYDB_SCHEMA
            or raw.get("summary_schema") != SUMMARY_SCHEMA
        ):
            # Layout moved under the store: every recorded fingerprint
            # is meaningless, so start a fresh history.
            self.epoch = 0
            self.modules = {}
            return
        self.epoch = int(raw.get("epoch", 0))
        self.modules = dict(raw.get("modules", {}))

    def save(self) -> None:
        """Atomically persist the store (no-op for in-memory stores)."""
        if self.path is None:
            return
        payload = {
            "schema": SUMMARYDB_SCHEMA,
            "summary_schema": SUMMARY_SCHEMA,
            "epoch": self.epoch,
            "modules": self.modules,
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp_path, self.path)

    # -- recording --------------------------------------------------------

    @staticmethod
    def _entry(summary: ModuleSummary) -> dict:
        return {
            "fingerprint": summary.fingerprint(),
            "procedures": {
                p.name: p.fingerprint() for p in summary.procedures
            },
        }

    def changed_modules(self, summaries: Iterable[ModuleSummary]) -> set:
        """Modules whose recorded fingerprint differs (or is absent)."""
        changed = set()
        for summary in summaries:
            recorded = self.modules.get(summary.module_name)
            if (
                recorded is None
                or recorded["fingerprint"] != summary.fingerprint()
            ):
                changed.add(summary.module_name)
        return changed

    def changed_procedures(self, summary: ModuleSummary) -> set:
        """Procedures of ``summary`` whose recorded fingerprint moved."""
        recorded = self.modules.get(summary.module_name)
        if recorded is None:
            return {p.name for p in summary.procedures}
        old = recorded["procedures"]
        changed = {
            p.name
            for p in summary.procedures
            if old.get(p.name) != p.fingerprint()
        }
        changed |= old.keys() - {p.name for p in summary.procedures}
        return changed

    def record(
        self,
        summaries: Iterable[ModuleSummary],
        prune_missing: bool = True,
    ) -> bool:
        """Record the program's current summaries; advance the epoch and
        persist iff anything moved.  Returns True when it did."""
        summaries = list(summaries)
        new_entries = {s.module_name: self._entry(s) for s in summaries}
        if prune_missing:
            changed = new_entries != self.modules
            if changed:
                self.modules = new_entries
        else:
            changed = any(
                self.modules.get(name) != entry
                for name, entry in new_entries.items()
            )
            if changed:
                self.modules.update(new_entries)
        if changed:
            self.epoch += 1
            self.save()
        return changed
