"""IR containers: basic blocks and functions."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.instructions import FrameSlot, Instruction, Jump, Terminator
from repro.ir.values import Temp


class BasicBlock:
    """A straight-line sequence of instructions with one terminator.

    ``loop_depth`` records the syntactic loop nesting at which the block
    was created; the frequency heuristics (paper section 6) weight
    references and calls by ``10 ** loop_depth``.
    """

    def __init__(self, label: str, loop_depth: int = 0):
        self.label = label
        self.instructions: list[Instruction] = []
        self.terminator: Optional[Terminator] = None
        self.loop_depth = loop_depth

    def append(self, instruction: Instruction) -> None:
        if self.terminator is not None:
            raise ValueError(f"appending to terminated block {self.label}")
        self.instructions.append(instruction)

    def successors(self) -> list[str]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def __repr__(self) -> str:
        return f"<block {self.label}: {len(self.instructions)} instrs>"


class IRFunction:
    """One procedure in IR form.

    Attributes:
        name: Qualified (link-level) name.
        params: Parameter temps, in order.
        blocks: Label -> block, in creation order (entry first).
        frame_slots: Stack-frame objects (arrays, address-taken scalars).
        return_type: ``"int"`` or ``"void"``.
        source_module: Name of the defining compilation unit.
    """

    def __init__(self, name: str, return_type: str = "int", source_module: str = ""):
        self.name = name
        self.return_type = return_type
        self.source_module = source_module
        self.params: list[Temp] = []
        self.blocks: dict[str, BasicBlock] = {}
        self.frame_slots: list[FrameSlot] = []
        # Temps pinned to physical registers (interprocedurally promoted
        # globals).  Pinned temps are implicitly defined at entry (the
        # caller's register contents) and live at every return.
        self.pinned_temps: dict[Temp, int] = {}
        self.entry_label = "entry"
        self._next_temp = 0
        self._next_label = 0

    # -- construction helpers -------------------------------------------

    def new_temp(self, hint: str = "") -> Temp:
        self._next_temp += 1
        return Temp(self._next_temp, hint)

    def new_block(self, hint: str = "", loop_depth: int = 0) -> BasicBlock:
        self._next_label += 1
        label = f"{hint or 'bb'}{self._next_label}"
        block = BasicBlock(label, loop_depth)
        self.blocks[label] = block
        return block

    def add_entry_block(self) -> BasicBlock:
        block = BasicBlock(self.entry_label, 0)
        self.blocks[self.entry_label] = block
        return block

    def add_frame_slot(self, slot: FrameSlot) -> FrameSlot:
        self.frame_slots.append(slot)
        return slot

    # -- structure queries ------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_label]

    def block_order(self) -> list[BasicBlock]:
        """Blocks in insertion order, entry first."""
        return list(self.blocks.values())

    def iter_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions

    def predecessors(self) -> dict[str, list[str]]:
        """Label -> predecessor labels."""
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for block in self.blocks.values():
            for successor in block.successors():
                preds[successor].append(block.label)
        return preds

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from entry; returns how many."""
        reachable: set[str] = set()
        worklist = [self.entry_label]
        while worklist:
            label = worklist.pop()
            if label in reachable:
                continue
            reachable.add(label)
            worklist.extend(self.blocks[label].successors())
        dead = [label for label in self.blocks if label not in reachable]
        for label in dead:
            del self.blocks[label]
        return len(dead)

    def merge_straightline_blocks(self) -> int:
        """Merge blocks with a single Jump successor whose target has a
        single predecessor.  Returns the number of merges performed."""
        merged = 0
        changed = True
        while changed:
            changed = False
            preds = self.predecessors()
            for block in list(self.blocks.values()):
                terminator = block.terminator
                if not isinstance(terminator, Jump):
                    continue
                target_label = terminator.target
                if target_label == block.label:
                    continue
                if target_label == self.entry_label:
                    continue
                if len(preds[target_label]) != 1:
                    continue
                target = self.blocks[target_label]
                block.instructions.extend(target.instructions)
                block.terminator = target.terminator
                del self.blocks[target_label]
                merged += 1
                changed = True
                break
        return merged

    def __repr__(self) -> str:
        return f"<function {self.name}: {len(self.blocks)} blocks>"
