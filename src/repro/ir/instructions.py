"""Three-address IR instruction set.

Every instruction exposes a uniform interface used by the analyses and
optimization passes:

* ``uses()`` — the operands the instruction reads (temps and constants).
* ``defs()`` — the temps the instruction writes.
* ``replace_uses(mapping)`` — substitute source operands (for copy
  propagation and constant propagation).

Memory references carry a ``singleton`` flag matching the paper's metric:
an access of a *simple* (scalar) variable, as opposed to an element of an
array or a pointer dereference.  The machine simulator aggregates dynamic
singleton reference counts from this flag (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.values import Const, Operand, Temp


def _subst(operand: Operand, mapping: dict[Temp, Operand]) -> Operand:
    if isinstance(operand, Temp) and operand in mapping:
        return mapping[operand]
    return operand


class Instruction:
    """Base class for non-terminator instructions."""

    def uses(self) -> list[Operand]:
        return []

    def defs(self) -> list[Temp]:
        return []

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        """Substitute used operands according to ``mapping`` (in place)."""

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction cannot be removed even when unused."""
        return False


@dataclass
class Move(Instruction):
    """``dst = src``."""

    dst: Temp
    src: Operand

    def uses(self) -> list[Operand]:
        return [self.src]

    def defs(self) -> list[Temp]:
        return [self.dst]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(Instruction):
    """``dst = lhs op rhs`` with Tiny-C 32-bit semantics."""

    dst: Temp
    op: str
    lhs: Operand
    rhs: Operand

    def uses(self) -> list[Operand]:
        return [self.lhs, self.rhs]

    def defs(self) -> list[Temp]:
        return [self.dst]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)

    @property
    def has_side_effects(self) -> bool:
        # Division and remainder can trap on a zero divisor.
        return self.op in ("/", "%") and not (
            isinstance(self.rhs, Const) and self.rhs.value != 0
        )

    def __repr__(self) -> str:
        return f"{self.dst} = {self.lhs} {self.op} {self.rhs}"


@dataclass
class UnOp(Instruction):
    """``dst = op operand`` for ``-``, ``~``, ``!``."""

    dst: Temp
    op: str
    operand: Operand

    def uses(self) -> list[Operand]:
        return [self.operand]

    def defs(self) -> list[Temp]:
        return [self.dst]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.operand = _subst(self.operand, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op}{self.operand}"


@dataclass
class LoadGlobal(Instruction):
    """``dst = global`` — read a scalar global variable (singleton access)."""

    dst: Temp
    symbol: str  # qualified global name

    def defs(self) -> list[Temp]:
        return [self.dst]

    def __repr__(self) -> str:
        return f"{self.dst} = load_global @{self.symbol}"


@dataclass
class StoreGlobal(Instruction):
    """``global = src`` — write a scalar global variable (singleton access)."""

    symbol: str
    src: Operand

    def uses(self) -> list[Operand]:
        return [self.src]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"store_global @{self.symbol} = {self.src}"


@dataclass
class LoadAddr(Instruction):
    """``dst = &symbol`` — address of a global variable or function.

    ``is_function`` distinguishes function addresses (indirect-call
    targets) from data addresses.
    """

    dst: Temp
    symbol: str
    is_function: bool = False

    def defs(self) -> list[Temp]:
        return [self.dst]

    def __repr__(self) -> str:
        prefix = "&fn" if self.is_function else "&"
        return f"{self.dst} = {prefix}@{self.symbol}"


@dataclass
class FrameAddr(Instruction):
    """``dst = &frame_slot`` — address of a stack-frame object.

    Frame slots hold local arrays and address-taken scalars.
    """

    dst: Temp
    slot: "FrameSlot"

    def defs(self) -> list[Temp]:
        return [self.dst]

    def __repr__(self) -> str:
        return f"{self.dst} = &frame[{self.slot.name}]"


@dataclass
class Load(Instruction):
    """``dst = mem[addr + offset]``.

    ``singleton`` is True only when the front end can prove this is an
    access of a simple scalar variable (e.g. an address-taken scalar local
    accessed by name).
    """

    dst: Temp
    addr: Operand
    offset: int = 0
    singleton: bool = False

    def uses(self) -> list[Operand]:
        return [self.addr]

    def defs(self) -> list[Temp]:
        return [self.dst]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.addr = _subst(self.addr, mapping)

    @property
    def has_side_effects(self) -> bool:
        # Loads can fault on wild addresses; keep them ordered.
        return True

    def __repr__(self) -> str:
        return f"{self.dst} = mem[{self.addr}+{self.offset}]"


@dataclass
class Store(Instruction):
    """``mem[addr + offset] = src``."""

    addr: Operand
    src: Operand
    offset: int = 0
    singleton: bool = False

    def uses(self) -> list[Operand]:
        return [self.addr, self.src]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.addr = _subst(self.addr, mapping)
        self.src = _subst(self.src, mapping)

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"mem[{self.addr}+{self.offset}] = {self.src}"


@dataclass
class Call(Instruction):
    """A direct call. ``dst`` is ``None`` for void calls or unused results.

    ``callee`` is the qualified name; ``is_builtin`` marks runtime
    procedures (``print``, ``putc``) that are not part of the user call
    graph.
    """

    dst: Optional[Temp]
    callee: str
    args: list[Operand] = field(default_factory=list)
    is_builtin: bool = False

    def uses(self) -> list[Operand]:
        return list(self.args)

    def defs(self) -> list[Temp]:
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.args = [_subst(arg, mapping) for arg in self.args]

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        args = ", ".join(map(str, self.args))
        target = f"{'builtin ' if self.is_builtin else ''}@{self.callee}"
        if self.dst is not None:
            return f"{self.dst} = call {target}({args})"
        return f"call {target}({args})"


@dataclass
class CallIndirect(Instruction):
    """A call through a function-pointer value."""

    dst: Optional[Temp]
    target: Operand
    args: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return [self.target, *self.args]

    def defs(self) -> list[Temp]:
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.target = _subst(self.target, mapping)
        self.args = [_subst(arg, mapping) for arg in self.args]

    @property
    def has_side_effects(self) -> bool:
        return True

    def __repr__(self) -> str:
        args = ", ".join(map(str, self.args))
        if self.dst is not None:
            return f"{self.dst} = call_indirect ({self.target})({args})"
        return f"call_indirect ({self.target})({args})"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class Terminator:
    """Base class for block terminators."""

    def uses(self) -> list[Operand]:
        return []

    def defs(self) -> list[Temp]:
        return []

    def successors(self) -> list[str]:
        return []

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        pass

    def replace_successor(self, old: str, new: str) -> None:
        pass


@dataclass
class Jump(Terminator):
    target: str

    def successors(self) -> list[str]:
        return [self.target]

    def replace_successor(self, old: str, new: str) -> None:
        if self.target == old:
            self.target = new

    def __repr__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CJump(Terminator):
    """Branch to ``true_target`` when ``cond != 0``, else ``false_target``."""

    cond: Operand
    true_target: str
    false_target: str

    def uses(self) -> list[Operand]:
        return [self.cond]

    def successors(self) -> list[str]:
        return [self.true_target, self.false_target]

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        self.cond = _subst(self.cond, mapping)

    def replace_successor(self, old: str, new: str) -> None:
        if self.true_target == old:
            self.true_target = new
        if self.false_target == old:
            self.false_target = new

    def __repr__(self) -> str:
        return f"cjump {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class Return(Terminator):
    value: Optional[Operand] = None

    def uses(self) -> list[Operand]:
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping: dict[Temp, Operand]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def __repr__(self) -> str:
        if self.value is not None:
            return f"return {self.value}"
        return "return"


@dataclass
class FrameSlot:
    """A stack-frame object: a local array or an address-taken scalar."""

    name: str
    size_words: int = 1
    array_init: Optional[list[int]] = None
    is_scalar: bool = False

    def __repr__(self) -> str:
        return f"slot({self.name}, {self.size_words}w)"
