"""32-bit two's-complement arithmetic shared by the optimizer and simulator.

Tiny-C integers are 32-bit signed words with C semantics (truncating
division, arithmetic right shift, shift counts masked to 5 bits, wraparound
on overflow).  Every component that evaluates arithmetic — constant
folding, the IR interpreter, and the PRISM machine simulator — goes through
these helpers so they can never disagree.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
INT_MIN = -(1 << (WORD_BITS - 1))
INT_MAX = (1 << (WORD_BITS - 1)) - 1


class DivisionByZeroError(ArithmeticError):
    """Raised when a simulated program divides by zero."""


def wrap32(value: int) -> int:
    """Wrap an arbitrary Python int to a signed 32-bit value."""
    value &= WORD_MASK
    if value > INT_MAX:
        value -= 1 << WORD_BITS
    return value


def to_unsigned(value: int) -> int:
    """View a signed 32-bit value as unsigned."""
    return value & WORD_MASK


def c_div(a: int, b: int) -> int:
    """C89/C99 truncating division."""
    if b == 0:
        raise DivisionByZeroError("division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap32(quotient)


def c_rem(a: int, b: int) -> int:
    """C remainder: ``a - (a / b) * b`` with truncating division."""
    if b == 0:
        raise DivisionByZeroError("remainder by zero")
    return wrap32(a - c_div(a, b) * b)


def eval_binop(op: str, a: int, b: int) -> int:
    """Evaluate a Tiny-C binary operator on signed 32-bit operands."""
    if op == "+":
        return wrap32(a + b)
    if op == "-":
        return wrap32(a - b)
    if op == "*":
        return wrap32(a * b)
    if op == "/":
        return c_div(a, b)
    if op == "%":
        return c_rem(a, b)
    if op == "&":
        return wrap32(a & b)
    if op == "|":
        return wrap32(a | b)
    if op == "^":
        return wrap32(a ^ b)
    if op == "<<":
        return wrap32(a << (b & 31))
    if op == ">>":
        return wrap32(a >> (b & 31))
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    raise ValueError(f"unknown binary operator {op!r}")


def eval_unop(op: str, a: int) -> int:
    """Evaluate a Tiny-C unary operator on a signed 32-bit operand."""
    if op == "-":
        return wrap32(-a)
    if op == "~":
        return wrap32(~a)
    if op == "!":
        return int(a == 0)
    raise ValueError(f"unknown unary operator {op!r}")


# Comparison operators and their negations, used when inverting branches.
COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}

NEGATED_COMPARISON = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

SWAPPED_COMPARISON = {
    "==": "==",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}

COMMUTATIVE_OPS = {"+", "*", "&", "|", "^", "==", "!="}
