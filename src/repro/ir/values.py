"""IR operand types: virtual registers (temps) and integer constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


class Temp:
    """A virtual register.

    Temps have identity semantics: two temps are the same value only if
    they are the same object.  ``uid`` is unique within a function and the
    optional ``hint`` preserves a source-level name for readable dumps.
    """

    __slots__ = ("uid", "hint")

    def __init__(self, uid: int, hint: str = ""):
        self.uid = uid
        self.hint = hint

    def __repr__(self) -> str:
        if self.hint:
            return f"%{self.uid}.{self.hint}"
        return f"%{self.uid}"

    def __str__(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class Const:
    """An immediate integer operand (already wrapped to 32 bits)."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"

    def __str__(self) -> str:
        return repr(self)


Operand = Union[Temp, Const]


def is_const(operand: Operand, value: int | None = None) -> bool:
    """True if ``operand`` is a constant (optionally equal to ``value``)."""
    if not isinstance(operand, Const):
        return False
    return value is None or operand.value == value
