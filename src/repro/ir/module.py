"""IR module container and global-variable descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.function import IRFunction


@dataclass
class GlobalVar:
    """Link-level description of a global variable definition.

    Attributes:
        name: Qualified name (statics carry a ``module.`` prefix).
        size_words: Storage size in machine words.
        is_array: True for arrays (never promotable to registers).
        init_words: Initial contents; shorter than ``size_words`` means
            zero-fill the remainder.
        address_taken: The module observed ``&var`` (aliased; ineligible
            for interprocedural promotion per section 4.1.2).
        is_static: Module-private linkage.
        defining_module: Compilation unit that owns the definition.
        is_pointer: Declared with pointer type (holds addresses; eligible
            for promotion as a scalar word if never aliased).
    """

    name: str
    size_words: int = 1
    is_array: bool = False
    init_words: list[int] = field(default_factory=list)
    address_taken: bool = False
    is_static: bool = False
    defining_module: str = ""
    is_pointer: bool = False

    @property
    def is_scalar_word(self) -> bool:
        return not self.is_array and self.size_words == 1


@dataclass
class IRModule:
    """IR for one compilation unit.

    ``extern_globals`` / ``extern_functions`` record names this module
    references but does not define; the linker resolves them.
    """

    name: str
    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    extern_globals: set[str] = field(default_factory=set)
    extern_functions: set[str] = field(default_factory=set)

    def add_function(self, function: IRFunction) -> IRFunction:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def get_function(self, name: str) -> Optional[IRFunction]:
        return self.functions.get(name)
