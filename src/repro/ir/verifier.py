"""IR well-formedness checks.

The verifier runs after lowering and between optimization passes in tests.
It enforces the structural invariants the backend relies on:

* every block is terminated and every branch target exists;
* every temp is defined before use on every path (checked via a forward
  dataflow over definitely-assigned temps);
* frame slots referenced by ``FrameAddr`` belong to the function.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.instructions import FrameAddr
from repro.ir.module import IRModule
from repro.ir.values import Temp


class IRVerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_function(function: IRFunction) -> None:
    """Check one function; raises :class:`IRVerificationError` on failure."""
    labels = set(function.blocks)
    if function.entry_label not in labels:
        raise IRVerificationError(f"{function.name}: missing entry block")
    slots = set(id(slot) for slot in function.frame_slots)
    for block in function.blocks.values():
        if block.terminator is None:
            raise IRVerificationError(
                f"{function.name}/{block.label}: unterminated block"
            )
        for target in block.successors():
            if target not in labels:
                raise IRVerificationError(
                    f"{function.name}/{block.label}: branch to unknown "
                    f"block {target!r}"
                )
        for instruction in block.instructions:
            if isinstance(instruction, FrameAddr):
                if id(instruction.slot) not in slots:
                    raise IRVerificationError(
                        f"{function.name}/{block.label}: FrameAddr to a "
                        f"slot not owned by the function"
                    )
    _verify_definite_assignment(function)


def _verify_definite_assignment(function: IRFunction) -> None:
    """Forward must-analysis: every used temp is defined on all paths."""
    defined_in: dict[str, set[Temp]] = {}
    preds = function.predecessors()
    order = _reverse_postorder(function)
    params = set(function.params) | set(function.pinned_temps)
    changed = True
    while changed:
        changed = False
        for label in order:
            block = function.blocks[label]
            if label == function.entry_label:
                incoming = set(params)
            else:
                pred_sets = [
                    defined_in[p] for p in preds[label] if p in defined_in
                ]
                if not pred_sets:
                    # No processed predecessor yet (or unreachable).
                    incoming = set(params)
                else:
                    incoming = set.intersection(*pred_sets)
            current = set(incoming)
            for instruction in block.instructions:
                for used in instruction.uses():
                    if isinstance(used, Temp) and used not in current:
                        raise IRVerificationError(
                            f"{function.name}/{label}: use of possibly-"
                            f"undefined temp {used} in {instruction!r}"
                        )
                current.update(instruction.defs())
            if block.terminator is not None:
                for used in block.terminator.uses():
                    if isinstance(used, Temp) and used not in current:
                        raise IRVerificationError(
                            f"{function.name}/{label}: use of possibly-"
                            f"undefined temp {used} in terminator"
                        )
            if defined_in.get(label) != current:
                defined_in[label] = current
                changed = True


def _reverse_postorder(function: IRFunction) -> list[str]:
    visited: set[str] = set()
    order: list[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(function.blocks[label].successors()))]
        visited.add(label)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append(
                        (successor, iter(function.blocks[successor].successors()))
                    )
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry_label)
    order.reverse()
    return order


def verify_module(module: IRModule) -> None:
    """Verify every function in the module."""
    for function in module.functions.values():
        verify_function(function)
