"""AST -> IR lowering.

Lowering decisions that matter downstream:

* Scalar locals and parameters that are never address-taken live in temps
  (virtual registers).  Address-taken scalars and local arrays live in
  frame slots and are accessed through ``FrameAddr`` + ``Load``/``Store``.
* Scalar globals are accessed with ``LoadGlobal``/``StoreGlobal`` (tagged
  as *singleton* memory references); array elements and pointer
  dereferences use explicit address arithmetic and are not singleton.
* ``&&``/``||``/``!``/comparisons in branching positions lower directly to
  control flow; in value positions they materialize 0/1.
* Every local scalar is defined (zero-initialized when the program does
  not initialize it) so program behaviour is deterministic and identical
  across all optimization configurations — the master differential-testing
  oracle relies on this.
* The machine is word-addressed: ``&a[i]`` is ``&a + i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.lang import ast
from repro.lang.errors import SemanticError
from repro.lang.sema import (
    BuiltinSymbol,
    FunctionSymbol,
    GlobalSymbol,
    LocalSymbol,
    ModuleInfo,
)
from repro.ir import arith
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import (
    BinOp,
    Call,
    CallIndirect,
    CJump,
    FrameAddr,
    FrameSlot,
    Jump,
    Load,
    LoadAddr,
    LoadGlobal,
    Move,
    Return,
    Store,
    StoreGlobal,
    UnOp,
)
from repro.ir.module import GlobalVar, IRModule
from repro.ir.values import Const, Operand, Temp


@dataclass
class _TempLValue:
    temp: Temp


@dataclass
class _GlobalLValue:
    symbol_name: str


@dataclass
class _MemLValue:
    addr: Operand
    offset: int = 0
    singleton: bool = False


_LValue = Union[_TempLValue, _GlobalLValue, _MemLValue]


class FunctionLowerer:
    """Lowers one function definition to an :class:`IRFunction`."""

    def __init__(self, module_info: ModuleInfo, ir_module: IRModule,
                 symbol: FunctionSymbol, definition: ast.FunctionDef):
        self._info = module_info
        self._ir_module = ir_module
        self._symbol = symbol
        self._definition = definition
        self.function = IRFunction(
            symbol.qualified_name, symbol.return_type, module_info.name
        )
        self._current: BasicBlock = self.function.add_entry_block()
        self._temps: dict[int, Temp] = {}  # LocalSymbol.uid -> Temp
        self._slots: dict[int, FrameSlot] = {}  # LocalSymbol.uid -> FrameSlot
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []
        self._loop_depth = 0

    # -- plumbing ---------------------------------------------------------

    def _emit(self, instruction) -> None:
        self._current.append(instruction)

    def _new_block(self, hint: str = "") -> BasicBlock:
        return self.function.new_block(hint, self._loop_depth)

    def _switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def _terminate(self, terminator) -> None:
        if not self._current.is_terminated:
            self._current.terminator = terminator

    def _jump_to(self, block: BasicBlock) -> None:
        self._terminate(Jump(block.label))
        self._switch_to(block)

    def _new_temp(self, hint: str = "") -> Temp:
        return self.function.new_temp(hint)

    # -- entry ------------------------------------------------------------

    def lower(self) -> IRFunction:
        info = next(
            fi for fi in self._info.function_infos
            if fi.definition is self._definition
        )
        for local in info.params:
            param_temp = self._new_temp(local.name)
            self.function.params.append(param_temp)
            if local.address_taken:
                slot = self.function.add_frame_slot(
                    FrameSlot(local.name, 1, None, is_scalar=True)
                )
                self._slots[local.uid] = slot
                addr = self._new_temp(f"{local.name}.addr")
                self._emit(FrameAddr(addr, slot))
                self._emit(Store(addr, param_temp, 0, singleton=True))
            else:
                self._temps[local.uid] = param_temp
        assert self._definition.body is not None
        self._lower_block(self._definition.body)
        self._finish_function()
        self.function.remove_unreachable_blocks()
        return self.function

    def _finish_function(self) -> None:
        for block in self.function.blocks.values():
            if not block.is_terminated:
                if self.function.return_type == "void":
                    block.terminator = Return(None)
                else:
                    block.terminator = Return(Const(0))

    # -- statements ---------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self._current.is_terminated:
            # Unreachable code after return/break/continue: skip it.
            return
        if isinstance(stmt, ast.ExprStmt):
            self._lower_expr_for_effect(stmt.expr)
        elif isinstance(stmt, ast.LocalDecl):
            self._lower_local_decl(stmt)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self._lower_expr(stmt.value)
            self._terminate(Return(value))
        elif isinstance(stmt, ast.BreakStmt):
            self._terminate(Jump(self._break_stack[-1]))
        elif isinstance(stmt, ast.ContinueStmt):
            self._terminate(Jump(self._continue_stack[-1]))
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover
            raise SemanticError("cannot lower statement", stmt.location)

    def _lower_local_decl(self, decl: ast.LocalDecl) -> None:
        local = decl.symbol
        assert isinstance(local, LocalSymbol)
        if local.is_array or local.address_taken:
            slot = self.function.add_frame_slot(
                FrameSlot(local.name, local.size_words, None,
                          is_scalar=not local.is_array)
            )
            self._slots[local.uid] = slot
            if local.is_array and decl.array_init is not None:
                addr = self._new_temp(f"{local.name}.addr")
                self._emit(FrameAddr(addr, slot))
                values = list(decl.array_init)
                values += [0] * (local.size_words - len(values))
                for index, value in enumerate(values):
                    self._emit(
                        Store(addr, Const(arith.wrap32(value)), index)
                    )
            elif not local.is_array:
                init = self._lower_expr(decl.init) if decl.init else Const(0)
                addr = self._new_temp(f"{local.name}.addr")
                self._emit(FrameAddr(addr, slot))
                self._emit(Store(addr, init, 0, singleton=True))
        else:
            temp = self._new_temp(local.name)
            self._temps[local.uid] = temp
            init = self._lower_expr(decl.init) if decl.init else Const(0)
            self._emit(Move(temp, init))

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        then_block = self._new_block("then")
        join_block = self._new_block("endif")
        else_block = self._new_block("else") if stmt.else_body else join_block
        self._lower_condition(stmt.cond, then_block.label, else_block.label)
        self._switch_to(then_block)
        self._lower_stmt(stmt.then_body)
        self._terminate(Jump(join_block.label))
        if stmt.else_body is not None:
            self._switch_to(else_block)
            self._lower_stmt(stmt.else_body)
            self._terminate(Jump(join_block.label))
        self._switch_to(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        self._loop_depth += 1
        head = self._new_block("while.head")
        body = self._new_block("while.body")
        self._loop_depth -= 1
        exit_block = self._new_block("while.end")
        self._terminate(Jump(head.label))
        self._switch_to(head)
        self._loop_depth += 1
        self._lower_condition(stmt.cond, body.label, exit_block.label)
        self._switch_to(body)
        self._break_stack.append(exit_block.label)
        self._continue_stack.append(head.label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._terminate(Jump(head.label))
        self._loop_depth -= 1
        self._switch_to(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        self._loop_depth += 1
        body = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        self._loop_depth -= 1
        exit_block = self._new_block("do.end")
        self._terminate(Jump(body.label))
        self._switch_to(body)
        self._loop_depth += 1
        self._break_stack.append(exit_block.label)
        self._continue_stack.append(cond_block.label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._terminate(Jump(cond_block.label))
        self._switch_to(cond_block)
        self._lower_condition(stmt.cond, body.label, exit_block.label)
        self._loop_depth -= 1
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_expr_for_effect(stmt.init)
        self._loop_depth += 1
        head = self._new_block("for.head")
        body = self._new_block("for.body")
        step_block = self._new_block("for.step")
        self._loop_depth -= 1
        exit_block = self._new_block("for.end")
        self._terminate(Jump(head.label))
        self._switch_to(head)
        self._loop_depth += 1
        if stmt.cond is not None:
            self._lower_condition(stmt.cond, body.label, exit_block.label)
        else:
            self._terminate(Jump(body.label))
        self._switch_to(body)
        self._break_stack.append(exit_block.label)
        self._continue_stack.append(step_block.label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._terminate(Jump(step_block.label))
        self._switch_to(step_block)
        if stmt.step is not None:
            self._lower_expr_for_effect(stmt.step)
        self._terminate(Jump(head.label))
        self._loop_depth -= 1
        self._switch_to(exit_block)

    # -- conditions -----------------------------------------------------

    def _lower_condition(self, expr: ast.Expr, true_label: str,
                         false_label: str) -> None:
        """Lower ``expr`` as a branch, short-circuiting where possible."""
        if isinstance(expr, ast.BinaryExpr) and expr.op == "&&":
            middle = self._new_block("and.rhs")
            self._lower_condition(expr.lhs, middle.label, false_label)
            self._switch_to(middle)
            self._lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op == "||":
            middle = self._new_block("or.rhs")
            self._lower_condition(expr.lhs, true_label, middle.label)
            self._switch_to(middle)
            self._lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            self._lower_condition(expr.operand, false_label, true_label)
            return
        value = self._lower_expr(expr)
        if isinstance(value, Const):
            target = true_label if value.value != 0 else false_label
            self._terminate(Jump(target))
            return
        self._terminate(CJump(value, true_label, false_label))

    # -- expressions ------------------------------------------------------

    def _lower_expr_for_effect(self, expr: ast.Expr) -> None:
        """Lower an expression whose value is discarded."""
        if isinstance(expr, ast.CallExpr):
            self._lower_call(expr, want_value=False)
            return
        if isinstance(expr, ast.AssignExpr):
            self._lower_assign(expr)
            return
        if isinstance(expr, ast.IncDecExpr):
            self._lower_incdec(expr, want_value=False)
            return
        if isinstance(expr, (ast.IntLiteral, ast.NameExpr)):
            return  # pure, no effect
        self._lower_expr(expr)

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            return Const(arith.wrap32(expr.value))
        if isinstance(expr, ast.NameExpr):
            return self._lower_name_value(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.AssignExpr):
            return self._lower_assign(expr)
        if isinstance(expr, ast.IncDecExpr):
            result = self._lower_incdec(expr, want_value=True)
            assert result is not None
            return result
        if isinstance(expr, ast.CallExpr):
            result = self._lower_call(expr, want_value=True)
            assert result is not None
            return result
        if isinstance(expr, ast.IndexExpr):
            addr, offset = self._lower_element_addr(expr)
            dst = self._new_temp()
            self._emit(Load(dst, addr, offset))
            return dst
        if isinstance(expr, ast.CondExpr):
            return self._lower_ternary(expr)
        raise SemanticError("cannot lower expression", expr.location)

    def _lower_name_value(self, expr: ast.NameExpr) -> Operand:
        symbol = expr.symbol
        if isinstance(symbol, LocalSymbol):
            if symbol.uid in self._temps:
                return self._temps[symbol.uid]
            slot = self._slots[symbol.uid]
            addr = self._new_temp(f"{symbol.name}.addr")
            self._emit(FrameAddr(addr, slot))
            if symbol.is_array:
                return addr  # array decays to its address
            dst = self._new_temp(symbol.name)
            self._emit(Load(dst, addr, 0, singleton=True))
            return dst
        if isinstance(symbol, GlobalSymbol):
            self._note_extern_global(symbol)
            if symbol.is_array:
                dst = self._new_temp()
                self._emit(LoadAddr(dst, symbol.qualified_name))
                return dst
            dst = self._new_temp(symbol.name)
            self._emit(LoadGlobal(dst, symbol.qualified_name))
            return dst
        if isinstance(symbol, FunctionSymbol):
            self._note_extern_function(symbol)
            dst = self._new_temp(symbol.name)
            self._emit(LoadAddr(dst, symbol.qualified_name, is_function=True))
            return dst
        raise SemanticError(
            f"{expr.name!r} cannot be used as a value here", expr.location
        )

    def _lower_unary(self, expr: ast.UnaryExpr) -> Operand:
        if expr.op == "&":
            addr, offset = self._lower_address_of(expr.operand)
            if offset == 0:
                return addr
            dst = self._new_temp()
            self._emit(BinOp(dst, "+", addr, Const(offset)))
            return dst
        if expr.op == "*":
            pointer = self._lower_expr(expr.operand)
            dst = self._new_temp()
            self._emit(Load(dst, pointer, 0))
            return dst
        operand = self._lower_expr(expr.operand)
        if isinstance(operand, Const):
            return Const(arith.eval_unop(expr.op, operand.value))
        dst = self._new_temp()
        self._emit(UnOp(dst, expr.op, operand))
        return dst

    def _lower_binary(self, expr: ast.BinaryExpr) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit_value(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            try:
                return Const(arith.eval_binop(expr.op, lhs.value, rhs.value))
            except arith.DivisionByZeroError:
                pass  # leave the trap in the generated code
        dst = self._new_temp()
        self._emit(BinOp(dst, expr.op, lhs, rhs))
        return dst

    def _lower_short_circuit_value(self, expr: ast.BinaryExpr) -> Operand:
        result = self._new_temp("bool")
        true_block = self._new_block("sc.true")
        false_block = self._new_block("sc.false")
        join = self._new_block("sc.join")
        self._lower_condition(expr, true_block.label, false_block.label)
        self._switch_to(true_block)
        self._emit(Move(result, Const(1)))
        self._terminate(Jump(join.label))
        self._switch_to(false_block)
        self._emit(Move(result, Const(0)))
        self._terminate(Jump(join.label))
        self._switch_to(join)
        return result

    def _lower_ternary(self, expr: ast.CondExpr) -> Operand:
        result = self._new_temp("sel")
        then_block = self._new_block("sel.then")
        else_block = self._new_block("sel.else")
        join = self._new_block("sel.join")
        self._lower_condition(expr.cond, then_block.label, else_block.label)
        self._switch_to(then_block)
        then_value = self._lower_expr(expr.then)
        self._emit(Move(result, then_value))
        self._terminate(Jump(join.label))
        self._switch_to(else_block)
        else_value = self._lower_expr(expr.otherwise)
        self._emit(Move(result, else_value))
        self._terminate(Jump(join.label))
        self._switch_to(join)
        return result

    # -- lvalues, assignment ----------------------------------------------

    def _lower_lvalue(self, expr: ast.Expr) -> _LValue:
        if isinstance(expr, ast.NameExpr):
            symbol = expr.symbol
            if isinstance(symbol, LocalSymbol):
                if symbol.uid in self._temps:
                    return _TempLValue(self._temps[symbol.uid])
                slot = self._slots[symbol.uid]
                addr = self._new_temp(f"{symbol.name}.addr")
                self._emit(FrameAddr(addr, slot))
                return _MemLValue(addr, 0, singleton=True)
            if isinstance(symbol, GlobalSymbol):
                self._note_extern_global(symbol)
                return _GlobalLValue(symbol.qualified_name)
            raise SemanticError("not assignable", expr.location)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            pointer = self._lower_expr(expr.operand)
            return _MemLValue(pointer, 0)
        if isinstance(expr, ast.IndexExpr):
            addr, offset = self._lower_element_addr(expr)
            return _MemLValue(addr, offset)
        raise SemanticError("not assignable", expr.location)

    def _read_lvalue(self, lvalue: _LValue) -> Operand:
        if isinstance(lvalue, _TempLValue):
            return lvalue.temp
        if isinstance(lvalue, _GlobalLValue):
            dst = self._new_temp()
            self._emit(LoadGlobal(dst, lvalue.symbol_name))
            return dst
        dst = self._new_temp()
        self._emit(Load(dst, lvalue.addr, lvalue.offset, lvalue.singleton))
        return dst

    def _write_lvalue(self, lvalue: _LValue, value: Operand) -> None:
        if isinstance(lvalue, _TempLValue):
            self._emit(Move(lvalue.temp, value))
        elif isinstance(lvalue, _GlobalLValue):
            self._emit(StoreGlobal(lvalue.symbol_name, value))
        else:
            self._emit(
                Store(lvalue.addr, value, lvalue.offset, lvalue.singleton)
            )

    def _lower_assign(self, expr: ast.AssignExpr) -> Operand:
        lvalue = self._lower_lvalue(expr.target)
        if expr.op is None:
            value = self._lower_expr(expr.value)
            self._write_lvalue(lvalue, value)
            return value
        old = self._read_lvalue(lvalue)
        rhs = self._lower_expr(expr.value)
        if isinstance(old, Const) and isinstance(rhs, Const):
            try:
                new_value: Operand = Const(
                    arith.eval_binop(expr.op, old.value, rhs.value)
                )
            except arith.DivisionByZeroError:
                new_value = self._emit_binop(expr.op, old, rhs)
        else:
            new_value = self._emit_binop(expr.op, old, rhs)
        self._write_lvalue(lvalue, new_value)
        return new_value

    def _emit_binop(self, op: str, lhs: Operand, rhs: Operand) -> Temp:
        dst = self._new_temp()
        self._emit(BinOp(dst, op, lhs, rhs))
        return dst

    def _lower_incdec(self, expr: ast.IncDecExpr,
                      want_value: bool) -> Optional[Operand]:
        lvalue = self._lower_lvalue(expr.target)
        old = self._read_lvalue(lvalue)
        new_value = self._emit_binop("+", old, Const(expr.delta))
        self._write_lvalue(lvalue, new_value)
        if not want_value:
            return None
        return new_value if expr.is_prefix else old

    # -- addresses ----------------------------------------------------------

    def _lower_address_of(self, operand: ast.Expr) -> tuple[Operand, int]:
        """Lower ``&operand``; returns (address operand, constant offset)."""
        if isinstance(operand, ast.NameExpr):
            symbol = operand.symbol
            if isinstance(symbol, LocalSymbol):
                slot = self._slots[symbol.uid]
                addr = self._new_temp(f"{symbol.name}.addr")
                self._emit(FrameAddr(addr, slot))
                return addr, 0
            if isinstance(symbol, GlobalSymbol):
                self._note_extern_global(symbol)
                addr = self._new_temp()
                self._emit(LoadAddr(addr, symbol.qualified_name))
                return addr, 0
            if isinstance(symbol, FunctionSymbol):
                self._note_extern_function(symbol)
                addr = self._new_temp(symbol.name)
                self._emit(LoadAddr(addr, symbol.qualified_name,
                                    is_function=True))
                return addr, 0
        if isinstance(operand, ast.IndexExpr):
            return self._lower_element_addr(operand)
        if isinstance(operand, ast.UnaryExpr) and operand.op == "*":
            return self._lower_expr(operand.operand), 0
        raise SemanticError("cannot take address", operand.location)

    def _lower_element_addr(self, expr: ast.IndexExpr) -> tuple[Operand, int]:
        """Lower ``base[index]`` to (address, constant offset)."""
        base = self._lower_expr(expr.base)
        index = self._lower_expr(expr.index)
        if isinstance(index, Const):
            return base, index.value
        if isinstance(base, Const):
            return index, base.value
        addr = self._new_temp()
        self._emit(BinOp(addr, "+", base, index))
        return addr, 0

    # -- calls ----------------------------------------------------------

    def _lower_call(self, expr: ast.CallExpr,
                    want_value: bool) -> Optional[Operand]:
        args = [self._lower_expr(arg) for arg in expr.args]
        if not expr.is_indirect:
            callee = expr.callee
            assert isinstance(callee, ast.NameExpr)
            symbol = callee.symbol
            if isinstance(symbol, BuiltinSymbol):
                self._emit(Call(None, symbol.name, args, is_builtin=True))
                return Const(0) if want_value else None
            assert isinstance(symbol, FunctionSymbol)
            self._note_extern_function(symbol)
            dst = None
            if want_value and symbol.return_type != "void":
                dst = self._new_temp()
            self._emit(Call(dst, symbol.qualified_name, args))
            return dst if want_value else None
        callee = expr.callee
        # In C, dereferencing a function pointer is the identity:
        # (*f)(x) and f(x) call the same function.
        while isinstance(callee, ast.UnaryExpr) and callee.op == "*":
            callee = callee.operand
        target = self._lower_expr(callee)
        dst = self._new_temp() if want_value else None
        self._emit(CallIndirect(dst, target, args))
        return dst if want_value else None

    # -- extern bookkeeping -----------------------------------------------

    def _note_extern_global(self, symbol: GlobalSymbol) -> None:
        if symbol.is_extern_ref:
            self._ir_module.extern_globals.add(symbol.qualified_name)

    def _note_extern_function(self, symbol: FunctionSymbol) -> None:
        if not symbol.is_defined:
            self._ir_module.extern_functions.add(symbol.qualified_name)


def lower_module(module_info: ModuleInfo) -> IRModule:
    """Lower a semantically-analyzed module to IR."""
    ir_module = IRModule(module_info.name)
    for symbol in module_info.globals.values():
        if symbol.is_extern_ref:
            continue
        if symbol.is_array:
            init_words = list(symbol.array_init or [])
        else:
            init_words = [symbol.init or 0]
        ir_module.add_global(
            GlobalVar(
                name=symbol.qualified_name,
                size_words=symbol.size_words,
                is_array=symbol.is_array,
                init_words=[arith.wrap32(word) for word in init_words],
                address_taken=symbol.address_taken,
                is_static=symbol.is_static,
                defining_module=module_info.name,
                is_pointer=symbol.pointer_level > 0,
            )
        )
    for function_info in module_info.function_infos:
        lowerer = FunctionLowerer(
            module_info, ir_module, function_info.symbol,
            function_info.definition,
        )
        ir_module.add_function(lowerer.lower())
    return ir_module


def lower_source(source: str, module_name: str = "<input>") -> IRModule:
    """Parse, analyze, and lower Tiny-C source text to IR."""
    from repro.lang.sema import analyze_source

    return lower_module(analyze_source(source, module_name))
