"""Human-readable IR dumps for debugging and golden tests."""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.module import IRModule


def format_function(function: IRFunction) -> str:
    """Render one function as text."""
    lines = []
    params = ", ".join(map(str, function.params))
    lines.append(f"func {function.name}({params}) -> {function.return_type}:")
    for slot in function.frame_slots:
        lines.append(f"  frame {slot.name}: {slot.size_words} words")
    for block in function.block_order():
        lines.append(f"  {block.label}:  ; depth={block.loop_depth}")
        for instruction in block.instructions:
            lines.append(f"    {instruction!r}")
        if block.terminator is not None:
            lines.append(f"    {block.terminator!r}")
        else:
            lines.append("    <unterminated>")
    return "\n".join(lines)


def format_module(module: IRModule) -> str:
    """Render a whole module as text."""
    lines = [f"module {module.name}"]
    for var in module.globals.values():
        kind = "array" if var.is_array else "scalar"
        flags = []
        if var.is_static:
            flags.append("static")
        if var.address_taken:
            flags.append("aliased")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  global @{var.name}: {kind} {var.size_words} words{suffix}"
        )
    for name in sorted(module.extern_globals):
        lines.append(f"  extern global @{name}")
    for name in sorted(module.extern_functions):
        lines.append(f"  extern func @{name}")
    for function in module.functions.values():
        lines.append("")
        lines.append(format_function(function))
    return "\n".join(lines)
