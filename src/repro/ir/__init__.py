"""Typed three-address intermediate representation.

Public surface:

* :mod:`repro.ir.values` — :class:`Temp`, :class:`Const` operands.
* :mod:`repro.ir.instructions` — the instruction set and terminators.
* :mod:`repro.ir.function` / :mod:`repro.ir.module` — containers.
* :mod:`repro.ir.builder` — AST -> IR lowering.
* :mod:`repro.ir.printer` — textual dumps.
* :mod:`repro.ir.verifier` — structural invariant checks.
* :mod:`repro.ir.arith` — the single source of truth for Tiny-C's 32-bit
  arithmetic semantics.
"""

from repro.ir.builder import lower_module, lower_source
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.module import GlobalVar, IRModule
from repro.ir.printer import format_function, format_module
from repro.ir.values import Const, Operand, Temp
from repro.ir.verifier import IRVerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "Const",
    "GlobalVar",
    "IRFunction",
    "IRModule",
    "IRVerificationError",
    "Operand",
    "Temp",
    "format_function",
    "format_module",
    "lower_module",
    "lower_source",
    "verify_function",
    "verify_module",
]
