"""Testing utilities: the random Tiny-C program generator."""

from repro.testing.generator import ProgramGenerator, generate_program

__all__ = ["ProgramGenerator", "generate_program"]
