"""Seeded random Tiny-C program generator.

Produces deterministic, terminating, output-producing multi-module
programs for differential testing: the same program compiled at every
optimization level and analyzer configuration must print exactly the same
output.  This is the repository's master correctness oracle.

Safety-by-construction rules:

* every variable is initialized before use;
* loops come from bounded templates (``for`` with a constant trip count
  whose induction variable the body never writes, and counted ``while``
  loops that strictly decrease);
* division and remainder denominators are guarded (``x % K + 1``);
* recursion decreases a parameter toward a base case;
* array indices are masked to the array size (a power of two).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_ARRAY_SIZE = 16  # power of two so indices can be masked


@dataclass
class _GenContext:
    """Names visible at a generation site."""

    scalars: list  # readable+writable int variable names
    arrays: list  # array names (global)
    loop_vars: list = field(default_factory=list)  # read-only here
    depth: int = 0


class ProgramGenerator:
    """Generates one random multi-module Tiny-C program per seed."""

    def __init__(self, seed: int, num_modules: int = 2,
                 functions_per_module: int = 3, num_globals: int = 6):
        self._rng = random.Random(seed)
        self.num_modules = max(1, num_modules)
        self.functions_per_module = max(1, functions_per_module)
        self.num_globals = max(1, num_globals)

    # -- helpers ----------------------------------------------------------

    def _pick(self, items):
        return self._rng.choice(items)

    def _randint(self, low, high):
        return self._rng.randint(low, high)

    def _chance(self, probability: float) -> bool:
        return self._rng.random() < probability

    # -- expressions ------------------------------------------------------

    def _expr(self, ctx: _GenContext, depth: int = 0) -> str:
        choices = ["const", "var", "var", "binop", "binop"]
        if depth < 2:
            choices += ["binop", "unary", "compare"]
        if ctx.arrays and depth < 2:
            choices.append("index")
        kind = self._pick(choices)
        if kind == "const":
            return str(self._randint(-50, 100))
        if kind == "var":
            names = ctx.scalars + ctx.loop_vars
            if not names:
                return str(self._randint(0, 9))
            return self._pick(names)
        if kind == "unary":
            op = self._pick(["-", "~", "!"])
            return f"{op}({self._expr(ctx, depth + 1)})"
        if kind == "compare":
            op = self._pick(["==", "!=", "<", "<=", ">", ">="])
            return (
                f"({self._expr(ctx, depth + 1)} {op} "
                f"{self._expr(ctx, depth + 1)})"
            )
        if kind == "index":
            array = self._pick(ctx.arrays)
            return f"{array}[({self._expr(ctx, depth + 1)}) & {_ARRAY_SIZE - 1}]"
        op = self._pick(["+", "-", "*", "&", "|", "^", "<<", ">>",
                         "/", "%"])
        lhs = self._expr(ctx, depth + 1)
        rhs = self._expr(ctx, depth + 1)
        if op in ("/", "%"):
            return f"({lhs}) {op} ((({rhs}) & 7) + 1)"
        if op in ("<<", ">>"):
            return f"({lhs}) {op} (({rhs}) & 7)"
        return f"({lhs}) {op} ({rhs})"

    def _condition(self, ctx: _GenContext) -> str:
        if self._chance(0.3):
            joiner = self._pick(["&&", "||"])
            return (
                f"({self._condition_simple(ctx)}) {joiner} "
                f"({self._condition_simple(ctx)})"
            )
        return self._condition_simple(ctx)

    def _condition_simple(self, ctx: _GenContext) -> str:
        op = self._pick(["==", "!=", "<", "<=", ">", ">="])
        return f"{self._expr(ctx, 1)} {op} {self._expr(ctx, 1)}"

    # -- statements --------------------------------------------------------

    def _statements(self, ctx: _GenContext, count: int, indent: str) -> list:
        lines = []
        for _ in range(count):
            lines.extend(self._statement(ctx, indent))
        return lines

    def _statement(self, ctx: _GenContext, indent: str) -> list:
        kinds = ["assign", "assign", "compound"]
        if ctx.arrays:
            kinds.append("array_store")
        if ctx.depth < 2:
            kinds += ["if", "for", "while"]
        kind = self._pick(kinds)
        if kind == "assign" and ctx.scalars:
            target = self._pick(ctx.scalars)
            return [f"{indent}{target} = {self._expr(ctx)};"]
        if kind == "compound" and ctx.scalars:
            target = self._pick(ctx.scalars)
            op = self._pick(["+=", "-=", "*="])
            return [f"{indent}{target} {op} {self._expr(ctx, 1)};"]
        if kind == "array_store":
            array = self._pick(ctx.arrays)
            index = f"({self._expr(ctx, 1)}) & {_ARRAY_SIZE - 1}"
            return [f"{indent}{array}[{index}] = {self._expr(ctx, 1)};"]
        if kind == "if":
            inner = _GenContext(
                ctx.scalars, ctx.arrays, ctx.loop_vars, ctx.depth + 1
            )
            lines = [f"{indent}if ({self._condition(ctx)}) {{"]
            lines += self._statements(inner, self._randint(1, 2), indent + "  ")
            if self._chance(0.5):
                lines.append(f"{indent}}} else {{")
                lines += self._statements(
                    inner, self._randint(1, 2), indent + "  "
                )
            lines.append(f"{indent}}}")
            return lines
        if kind == "for":
            var = f"i{ctx.depth}_{self._randint(0, 999)}"
            trip = self._randint(2, 8)
            inner = _GenContext(
                ctx.scalars, ctx.arrays, ctx.loop_vars + [var], ctx.depth + 1
            )
            lines = [
                f"{indent}{{ int {var};",
                f"{indent}for ({var} = 0; {var} < {trip}; {var}++) {{",
            ]
            lines += self._statements(inner, self._randint(1, 3), indent + "  ")
            lines.append(f"{indent}}} }}")
            return lines
        if kind == "while":
            var = f"w{ctx.depth}_{self._randint(0, 999)}"
            start = self._randint(2, 10)
            step = self._randint(1, 3)
            inner = _GenContext(
                ctx.scalars, ctx.arrays, ctx.loop_vars + [var], ctx.depth + 1
            )
            lines = [
                f"{indent}{{ int {var} = {start};",
                f"{indent}while ({var} > 0) {{",
            ]
            lines += self._statements(inner, self._randint(1, 2), indent + "  ")
            lines.append(f"{indent}  {var} = {var} - {step};")
            lines.append(f"{indent}}} }}")
            return lines
        return [f"{indent};"]

    # -- program structure ---------------------------------------------------

    def generate(self) -> dict:
        """Generate the program; returns ``{module_name: source}``."""
        global_names = [f"g{i}" for i in range(self.num_globals)]
        array_names = ["garr0", "garr1"]
        # Every function everywhere may call functions defined later in
        # program order only (guarantees termination and no recursion,
        # except the controlled recursive function below).
        function_names = []
        for module_index in range(self.num_modules):
            for func_index in range(self.functions_per_module):
                function_names.append(f"f{module_index}_{func_index}")

        owner_of = {
            name: i % self.num_modules
            for i, name in enumerate(global_names)
        }
        static_globals = {
            name for name in global_names if self._chance(0.25)
        }

        modules = {}
        for module_index in range(self.num_modules):
            lines = []
            own_globals = [
                name for name in global_names
                if owner_of[name] == module_index
            ]
            foreign_globals = [
                name for name in global_names
                if owner_of[name] != module_index
                and name not in static_globals
            ]
            for name in own_globals:
                keyword = "static " if name in static_globals else ""
                lines.append(
                    f"{keyword}int {name} = {self._randint(-9, 9)};"
                )
            if module_index == 0:
                for array in array_names:
                    lines.append(f"int {array}[{_ARRAY_SIZE}];")
            else:
                for array in array_names:
                    lines.append(f"extern int {array}[];")
            for name in foreign_globals:
                lines.append(f"extern int {name};")
            lines.append("")

            own_functions = [
                name for name in function_names
                if name.startswith(f"f{module_index}_")
            ]
            callable_later = {}
            for name in own_functions:
                index = function_names.index(name)
                callable_later[name] = function_names[index + 1:]
            for other in function_names:
                if other not in own_functions:
                    lines.append(f"extern int {other}(int);")
            lines.append("")

            visible_globals = [
                g for g in global_names
                if g not in static_globals or g in own_globals
            ]
            for name in own_functions:
                lines.extend(
                    self._function(name, visible_globals, array_names,
                                   callable_later[name])
                )
                lines.append("")
            modules[f"mod{module_index}"] = "\n".join(lines)

        modules["mainmod"] = self._main_module(
            [g for g in global_names if g not in static_globals],
            array_names,
            function_names,
        )
        return modules

    def _function(self, name: str, globals_visible: list, arrays: list,
                  callees: list) -> list:
        ctx = _GenContext(
            scalars=list(globals_visible) + ["a", "t0", "t1"],
            arrays=list(arrays),
        )
        lines = [f"int {name}(int a) {{", "  int t0 = a + 1;",
                 f"  int t1 = {self._randint(0, 9)};"]
        lines += self._statements(ctx, self._randint(2, 5), "  ")
        for callee in self._rng.sample(
            callees, k=min(len(callees), self._randint(0, 2))
        ):
            lines.append(f"  t1 += {callee}({self._expr(ctx, 1)});")
        lines.append(f"  return t0 + t1 + {self._pick(ctx.scalars)};")
        lines.append("}")
        return lines

    def _main_module(self, global_names: list, arrays: list,
                     function_names: list) -> str:
        lines = []
        for name in function_names:
            lines.append(f"extern int {name}(int);")
        for name in global_names:
            lines.append(f"extern int {name};")
        for array in arrays:
            lines.append(f"extern int {array}[];")
        lines.append("")
        # A controlled recursive function.
        lines += [
            "int rec(int n) {",
            "  if (n <= 0) return 1;",
            f"  return n + rec(n - {self._randint(1, 2)});",
            "}",
            "",
        ]
        lines.append("int main() {")
        lines.append("  int acc = 0;")
        lines.append("  int k;")
        trip = self._randint(2, 5)
        lines.append(f"  for (k = 0; k < {trip}; k++) {{")
        for name in self._rng.sample(
            function_names, k=min(len(function_names), 4)
        ):
            lines.append(f"    acc += {name}(k + {self._randint(0, 5)});")
        lines.append(f"    acc += rec(3 + (k & 3));")
        lines.append("  }")
        for name in global_names:
            lines.append(f"  print({name});")
        for array in arrays:
            lines.append(f"  print({array}[3]);")
        lines.append("  print(acc);")
        lines.append("  return acc & 255;")
        lines.append("}")
        return "\n".join(lines)


def generate_program(seed: int, **kwargs) -> dict:
    """Convenience wrapper: sources for one random program."""
    return ProgramGenerator(seed, **kwargs).generate()
