"""Post-link allocation auditor (the static counterpart of the paper's
Figure 6/7 rules).

The program analyzer only *promises*; the compiler second phase and the
frame finalizer are what actually place save/restore code, web entry
loads, and exit stores.  Until now the sole oracle for that placement
was end-to-end differential execution, which can silently compensate
for wrong spill code (a save/restore pair that should not exist costs
cycles but preserves values).  The auditor closes that gap: it walks
every linked function's machine code against the program database and
flags any departure from the directive discipline.

Checks (see ``docs/VERIFIER.md`` for the paper-rule mapping):

**Database level**

* ``directive-sets`` — the four usage sets are pairwise disjoint,
  FREE/CALLEE/MSPILL are callee-saves registers, CALLER extends the
  convention only with callee-saves registers, and web-reserved
  registers appear in none of the sets;
* ``mspill-at-non-root`` — MSPILL is non-empty only at cluster roots;
* ``free-not-covered`` — a member's FREE registers (and its
  convention-exceeding CALLER registers) are covered by the MSPILL sets
  along its chain of dominating cluster roots.

**Code level, per linked function**

* ``unbalanced-save-restore`` — prologue saves and epilogue restores
  must agree exactly (same registers, same frame slots);
* ``saved-outside-directives`` — only CALLEE, root MSPILL, and
  entry-node web registers may be saved;
* ``missing-mspill-save`` — a cluster root must save its whole MSPILL
  set (it executes the spill code for the entire cluster);
* ``unsaved-callee-write`` — a callee-saves register may be written
  only if saved/restored here, in FREE, or granted as extra CALLER by a
  dominating root's MSPILL;
* ``web-save-suppression`` — a web register is saved/restored at web
  entry nodes and *only* there;
* ``web-register-write`` — inside the web, the reserved register is
  written only by loads of the promoted global itself (entry loads and
  split-web reloads) and by promoted-reference moves (register copies
  and constant loads — the forms ``StoreGlobal`` of a promoted global
  can compile to);
* ``missing-web-entry-load`` — at a web entry node the register's value
  must not depend on the caller: no path from the start of the body may
  read it before writing it (the load the optimizer is allowed to
  delete is exactly the one whose value is never read);
* ``missing-web-exit-store`` — when the web modifies the global, entry
  nodes must store it back to the global's memory address (the store's
  source register may legally be a propagated copy, so the check keys
  on the *address* stored to, not the register stored from);
* ``clobbered-live-across-call`` — no register in a call's declared
  clobber set (except RV, the result) may be live after the call;
* ``reserved-register-write`` — SP is written only by the prologue and
  epilogue adjustments, RP only by calls and the RP save/restore pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.database import ProgramDatabase
from repro.linker.link import Executable
from repro.target import isa
from repro.target.registers import (
    CALLEE_SAVES,
    CALLER_SAVES,
    NUM_REGISTERS,
    RP,
    RV,
    SP,
    ZERO,
    register_name,
)


class AuditError(Exception):
    """Raised by the driver when an audited compilation has violations."""

    def __init__(self, report: "AuditReport"):
        self.report = report
        super().__init__(report.format())


@dataclass
class Violation:
    """One departure from the directive discipline."""

    function: str
    check: str
    detail: str
    pc: int | None = None

    def format(self) -> str:
        where = f" @pc={self.pc}" if self.pc is not None else ""
        return f"[{self.check}] {self.function}{where}: {self.detail}"


@dataclass
class AuditReport:
    """Everything one audit pass found."""

    violations: list = field(default_factory=list)
    functions_checked: int = 0
    calls_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_check(self) -> dict:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.check] = counts.get(violation.check, 0) + 1
        return counts

    def summary(self) -> dict:
        """JSON-able digest for ``CompilationResult.metrics``."""
        return {
            "functions_checked": self.functions_checked,
            "calls_checked": self.calls_checked,
            "violation_count": len(self.violations),
            "violations_by_check": self.by_check(),
            "violations": [v.format() for v in self.violations[:50]],
        }

    def format(self) -> str:
        if self.ok:
            return (
                f"audit clean: {self.functions_checked} functions, "
                f"{self.calls_checked} calls"
            )
        lines = [
            f"audit found {len(self.violations)} violation(s) across "
            f"{self.functions_checked} functions:"
        ]
        lines += [f"  {v.format()}" for v in self.violations]
        return "\n".join(lines)


def audit_executable(
    executable: Executable, database: ProgramDatabase
) -> AuditReport:
    """Audit every linked function against the program database."""
    report = AuditReport()
    _check_database(database, report)
    coverage = _mspill_coverage(database)
    for rng in executable.function_ranges:
        directives = database.get(rng.name)
        _audit_function(executable, rng, directives, coverage, report)
        report.functions_checked += 1
    return report


# ---------------------------------------------------------------------------
# Database-level checks
# ---------------------------------------------------------------------------


def _regs(registers) -> str:
    return "{" + ", ".join(register_name(r) for r in sorted(registers)) + "}"


def _mspill_coverage(database: ProgramDatabase) -> dict:
    """procedure -> union of MSPILL over its chain of cluster roots.

    Spill code migrates upward (section 4.2.4): a register freed in a
    nested cluster may be spilled by *any* dominating root, so coverage
    follows the root chain, not just the immediate cluster.
    """
    root_of: dict[str, str] = {}
    for cluster in database.clusters:
        for member in cluster.members:
            root_of[member] = cluster.root
    coverage: dict[str, set] = {}
    for name in database.procedures:
        covered: set = set()
        current = name
        seen: set = set()
        while current in root_of and current not in seen:
            seen.add(current)
            current = root_of[current]
            covered |= set(database.get(current).mspill)
        coverage[name] = covered
    return coverage


def _check_database(database: ProgramDatabase, report: AuditReport) -> None:
    coverage = _mspill_coverage(database)
    for name, d in sorted(database.procedures.items()):
        sets = {
            "free": set(d.free),
            "caller": set(d.caller),
            "callee": set(d.callee),
            "mspill": set(d.mspill),
        }
        names = list(sets)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                overlap = sets[a] & sets[b]
                if overlap:
                    report.violations.append(Violation(
                        name, "directive-sets",
                        f"{a} and {b} overlap on {_regs(overlap)}",
                    ))
        for label in ("free", "callee", "mspill"):
            stray = sets[label] - CALLEE_SAVES
            if stray:
                report.violations.append(Violation(
                    name, "directive-sets",
                    f"{label} contains non-callee-saves "
                    f"registers {_regs(stray)}",
                ))
        stray = sets["caller"] - CALLER_SAVES - CALLEE_SAVES
        if stray:
            report.violations.append(Violation(
                name, "directive-sets",
                f"caller contains unallocatable registers {_regs(stray)}",
            ))
        web_regs = set(d.reserved_web_registers)
        for label, regs in sets.items():
            overlap = regs & web_regs
            if overlap:
                report.violations.append(Violation(
                    name, "directive-sets",
                    f"web-reserved registers {_regs(overlap)} appear "
                    f"in {label}",
                ))
        if sets["mspill"] and not d.is_cluster_root:
            report.violations.append(Violation(
                name, "mspill-at-non-root",
                f"MSPILL {_regs(sets['mspill'])} at a non-root",
            ))
        covered = coverage.get(name, set())
        uncovered = sets["free"] - covered
        if uncovered:
            report.violations.append(Violation(
                name, "free-not-covered",
                f"FREE registers {_regs(uncovered)} not in any "
                f"dominating root's MSPILL",
            ))
        uncovered = (sets["caller"] - CALLER_SAVES) - covered
        if uncovered:
            report.violations.append(Violation(
                name, "free-not-covered",
                f"extra CALLER registers {_regs(uncovered)} not in any "
                f"dominating root's MSPILL",
            ))


# ---------------------------------------------------------------------------
# Code-level checks
# ---------------------------------------------------------------------------


def _audit_function(
    executable: Executable,
    rng,
    directives,
    coverage: dict,
    report: AuditReport,
) -> None:
    code = executable.instructions
    start, end = rng.start, rng.end
    name = rng.name

    frame = _parse_frame(code, start, end)
    if frame is None:
        report.violations.append(Violation(
            name, "unbalanced-save-restore",
            "function does not end in RET", pc=end - 1,
        ))
        return
    saves, restores = frame.saves, frame.restores

    if saves != restores:
        missing = {
            r: o for r, o in saves.items() if restores.get(r) != o
        }
        report.violations.append(Violation(
            name, "unbalanced-save-restore",
            f"saves without matching epilogue restore: "
            f"{_fmt_slots(missing)}",
            pc=start,
        ))

    web_regs = {p.register: p for p in directives.promoted}
    allowed_saves = (
        set(directives.callee)
        | set(directives.mspill)
        | {p.register for p in directives.promoted if p.is_entry}
    )
    for register in saves:
        if register not in allowed_saves:
            check = (
                "web-save-suppression"
                if register in web_regs
                else "saved-outside-directives"
            )
            report.violations.append(Violation(
                name, check,
                f"{register_name(register)} saved but not in CALLEE, "
                f"MSPILL, or entry-node web registers",
                pc=start,
            ))

    if directives.is_cluster_root:
        missing = set(directives.mspill) - set(saves)
        if missing:
            report.violations.append(Violation(
                name, "missing-mspill-save",
                f"cluster root does not save MSPILL "
                f"registers {_regs(missing)}",
                pc=start,
            ))

    for promoted in directives.promoted:
        if promoted.is_entry and promoted.register not in saves:
            report.violations.append(Violation(
                name, "web-save-suppression",
                f"entry node does not save web register "
                f"{register_name(promoted.register)} for "
                f"{promoted.name}",
                pc=start,
            ))

    # Registers a write may legitimately target without a matching
    # save/restore pair: FREE (a dominating root spilled them) and the
    # extra CALLER registers granted out of a root's MSPILL.
    covered = coverage.get(name, set())
    no_save_needed = (
        set(directives.free)
        | (set(directives.caller) & CALLEE_SAVES)
        | covered
    )

    stored_addresses: set = set()

    for pc in range(frame.body_start, frame.body_end):
        instruction = code[pc]
        if (
            isinstance(instruction, isa.STW)
            and instruction.base != SP
            and instruction.offset == 0
        ):
            address = _trace_base_address(
                code, start, pc, instruction.base
            )
            if address is not None:
                stored_addresses.add(address)
        if instruction.is_call:
            continue  # clobbers are the callee's writes, audited there
        for register in instruction.defs():
            if not isinstance(register, int):
                continue  # pragma: no cover - post-link code is physical
            if register == ZERO:
                continue
            if register == SP:
                report.violations.append(Violation(
                    name, "reserved-register-write",
                    f"SP written outside the prologue/epilogue "
                    f"adjustment by {instruction!r}",
                    pc=pc,
                ))
            elif register == RP:
                report.violations.append(Violation(
                    name, "reserved-register-write",
                    f"RP written outside calls and the RP "
                    f"save/restore pair by {instruction!r}",
                    pc=pc,
                ))
            elif register in web_regs:
                promoted = web_regs[register]
                if not _is_web_write_allowed(
                    code, start, pc, instruction, promoted, executable
                ):
                    report.violations.append(Violation(
                        name, "web-register-write",
                        f"web register {register_name(register)} "
                        f"(holding {promoted.name}) written "
                        f"by {instruction!r}",
                        pc=pc,
                    ))
            elif register in CALLEE_SAVES:
                if register not in saves and register not in no_save_needed:
                    report.violations.append(Violation(
                        name, "unsaved-callee-write",
                        f"callee-saves register "
                        f"{register_name(register)} written by "
                        f"{instruction!r} without save/restore, "
                        f"FREE membership, or root MSPILL coverage",
                        pc=pc,
                    ))

    live_in, succs = _compute_liveness(code, start, end)
    body_live_in = live_in[frame.body_start - start]
    for promoted in directives.promoted:
        if not promoted.is_entry:
            continue
        if body_live_in & (1 << promoted.register):
            report.violations.append(Violation(
                name, "missing-web-entry-load",
                f"web register {register_name(promoted.register)} "
                f"({promoted.name}) is read before the entry node "
                f"initializes it",
                pc=frame.body_start,
            ))
        address = executable.global_addresses.get(promoted.name)
        if (
            promoted.needs_store
            and address is not None
            and address not in stored_addresses
        ):
            report.violations.append(Violation(
                name, "missing-web-exit-store",
                f"entry node never stores {promoted.name} back to "
                f"its memory address",
                pc=start,
            ))

    _check_calls(code, rng, live_in, succs, report)


def _fmt_slots(slots: dict) -> str:
    return (
        "{"
        + ", ".join(
            f"{register_name(r)}@{offset}"
            for r, offset in sorted(slots.items())
        )
        + "}"
    )


@dataclass
class _Frame:
    """Structural parse of one function's prologue and epilogue."""

    saves: dict  # register -> frame offset (prologue STWs)
    restores: dict  # register -> frame offset (epilogue LDWs)
    body_start: int  # first pc after the prologue
    body_end: int  # first pc of the epilogue
    rp_offset: int | None  # RP save slot, when the function makes calls


def _parse_frame(code: list, start: int, end: int):
    """Parse the ``finalize_frame`` prologue/epilogue structure.

    The finalizer emits ``[SP -= frame] [STW RP] STW reg*`` at entry and
    the mirrored ``LDW reg* [LDW RP] [SP += frame]`` before the single
    RET; saves are in ascending register order at ascending offsets
    above the RP slot, which is what disambiguates them from body
    stores (outgoing-argument and spill slots all live below it).
    """
    if not isinstance(code[end - 1], isa.RET):
        return None

    pc = start
    rp_offset = None
    if (
        pc < end
        and isinstance(code[pc], isa.ALUI)
        and code[pc].op == "-"
        and code[pc].rd == SP
        and code[pc].ra == SP
    ):
        pc += 1
    if (
        pc < end
        and isinstance(code[pc], isa.STW)
        and code[pc].rs == RP
        and code[pc].base == SP
    ):
        rp_offset = code[pc].offset
        pc += 1
    saves: dict = {}
    floor = rp_offset if rp_offset is not None else -1
    last_register = -1
    while pc < end:
        instruction = code[pc]
        if not (
            isinstance(instruction, isa.STW)
            and instruction.base == SP
            and isinstance(instruction.rs, int)
            and instruction.rs in CALLEE_SAVES
            and isinstance(instruction.offset, int)
            and instruction.offset > floor
            and instruction.rs > last_register
        ):
            break
        saves[instruction.rs] = instruction.offset
        floor = instruction.offset
        last_register = instruction.rs
        pc += 1
    body_start = pc

    pc = end - 2  # last instruction before RET
    if (
        pc >= body_start
        and isinstance(code[pc], isa.ALUI)
        and code[pc].op == "+"
        and code[pc].rd == SP
        and code[pc].ra == SP
    ):
        pc -= 1
    if (
        pc >= body_start
        and isinstance(code[pc], isa.LDW)
        and code[pc].rd == RP
        and code[pc].base == SP
    ):
        pc -= 1
    # A legal restore mirrors a prologue save exactly (same register,
    # same slot) — that is what keeps a leaf function's trailing spill
    # reload (an LDW from SP with no RP slot to bound its offset) out of
    # the epilogue.  A tampered restore therefore fails the match, stops
    # the scan, and leaves its save unmatched — exactly the unbalanced
    # case the caller reports.
    restores: dict = {}
    last_register = NUM_REGISTERS
    while pc >= body_start:
        instruction = code[pc]
        if not (
            isinstance(instruction, isa.LDW)
            and instruction.base == SP
            and isinstance(instruction.rd, int)
            and instruction.rd in CALLEE_SAVES
            and saves.get(instruction.rd) == instruction.offset
            and instruction.rd < last_register
        ):
            break
        restores[instruction.rd] = instruction.offset
        last_register = instruction.rd
        pc -= 1
    return _Frame(saves, restores, body_start, pc + 1, rp_offset)


def _trace_base_address(code: list, start: int, pc: int, base):
    """The address held by ``base`` at ``pc``, when it was produced by an
    address-materializing instruction (``LDA``/``LDI``) in the linear
    window since ``start``; ``None`` otherwise.

    Instruction selection materializes a global's address into a fresh
    register in the same block as the access (the per-block symbol
    cache never outlives a block), so the linear backward scan to the
    nearest definition is exact for compiler-produced code.
    """
    if not isinstance(base, int):
        return None  # pragma: no cover - post-link code is physical
    for back in range(pc - 1, start - 1, -1):
        previous = code[back]
        if base in previous.defs():
            if isinstance(previous, isa.LDA) and not previous.is_function:
                return previous.resolved
            if isinstance(previous, isa.LDI):
                return previous.imm
            return None
    return None


def _is_web_write_allowed(
    code: list,
    start: int,
    pc: int,
    instruction,
    promoted,
    executable: Executable,
) -> bool:
    """A write to a web-reserved register must be a promoted-reference
    move (``MOV`` from a register, ``LDI`` of a constant — the forms a
    store to the promoted global selects into) or a load of the
    promoted global itself (entry load or split-web reload: ``LDA &g``
    into a base register, then ``LDW reg, 0(base)``)."""
    if isinstance(instruction, (isa.MOV, isa.LDI)):
        return True
    if not isinstance(instruction, isa.LDW):
        return False
    if instruction.base == SP or instruction.offset != 0:
        return False
    address = executable.global_addresses.get(promoted.name)
    traced = _trace_base_address(code, start, pc, instruction.base)
    return traced is not None and traced == address


# ---------------------------------------------------------------------------
# Liveness: no declared-clobbered register survives its call
# ---------------------------------------------------------------------------


def _instruction_masks(instruction) -> tuple[int, int, list]:
    """(uses, defs) bitmasks over physical registers + successors-kind."""
    uses = 0
    defs = 0
    for register in instruction.uses():
        if isinstance(register, int):
            uses |= 1 << register
    for register in instruction.defs():
        if isinstance(register, int):
            defs |= 1 << register
    if instruction.is_call:
        defs |= 1 << RP
    if isinstance(instruction, isa.RET):
        uses |= 1 << RP
    return uses, defs


def _compute_liveness(code: list, start: int, end: int) -> tuple:
    """Backward bitmask liveness over one function's instructions.

    Returns ``(live_in, succs)``, both indexed relative to ``start``.
    """
    size = end - start
    uses = [0] * size
    defs = [0] * size
    succs: list = [()] * size
    for index in range(size):
        instruction = code[start + index]
        uses[index], defs[index] = _instruction_masks(instruction)
        if isinstance(instruction, isa.B):
            succs[index] = (instruction.target - start,)
        elif isinstance(instruction, isa.BC):
            succs[index] = (instruction.target - start, index + 1)
        elif isinstance(instruction, isa.RET):
            succs[index] = ()
        else:
            succs[index] = (index + 1,) if index + 1 < size else ()

    live_in = [0] * size
    changed = True
    while changed:
        changed = False
        for index in range(size - 1, -1, -1):
            live_out = 0
            for successor in succs[index]:
                if 0 <= successor < size:
                    live_out |= live_in[successor]
            new_in = uses[index] | (live_out & ~defs[index])
            if new_in != live_in[index]:
                live_in[index] = new_in
                changed = True
    return live_in, succs


def _check_calls(
    code: list, rng, live_in: list, succs: list, report: AuditReport
) -> None:
    """Per-function liveness: at every call, nothing in the declared
    clobber set except RV may be live afterwards — a live clobbered
    register means downstream code consumes a value the callee was
    licensed to destroy (paper section 4.2.3's CALLER semantics)."""
    start, end = rng.start, rng.end
    size = end - start
    rv_bit = 1 << RV
    for index in range(size):
        instruction = code[start + index]
        if not instruction.is_call:
            continue
        report.calls_checked += 1
        live_after = 0
        for successor in succs[index]:
            if 0 <= successor < size:
                live_after |= live_in[successor]
        clobber_mask = 0
        for register in instruction.clobbers:
            clobber_mask |= 1 << register
        clobber_mask |= 1 << RP
        offending = live_after & clobber_mask & ~rv_bit
        if offending:
            registers = [
                register_name(r)
                for r in range(NUM_REGISTERS)
                if offending & (1 << r)
            ]
            callee = getattr(instruction, "callee", "<indirect>")
            report.violations.append(Violation(
                rng.name, "clobbered-live-across-call",
                f"registers {registers} live across call to {callee} "
                f"but inside its declared clobber set",
                pc=start + index,
            ))
