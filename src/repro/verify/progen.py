"""Seeded fuzz-program generation aimed at the allocator's pressure
points.

The base :class:`~repro.testing.generator.ProgramGenerator` optimizes
for breadth of language constructs; differential fuzzing of the
*allocation* machinery wants something sharper — programs that actually
make the analyzer's directives bite:

* **register pressure** — functions holding many simultaneously-live
  values across a call, forcing callee-saves demand, spill-code motion
  into cluster roots, and non-trivial FREE/MSPILL sets;
* **hot global traffic** — tight loops over a handful of globals, so
  the web machinery (configs C-F) finds promotions worth making, with
  both read-only and read-write webs;
* **multi-argument calls** — exercising the caller-saves argument
  registers around calls;
* **varied shape** — module/function/global counts themselves derive
  from the seed, so a seed sweep covers single-module programs through
  wide multi-module call graphs.

Each seed yields one deterministic, terminating program; the same seed
always yields the same sources (the fuzz suite's cache keys and the
differential oracle both rely on this).
"""

from __future__ import annotations

import random
import re

from repro.testing.generator import ProgramGenerator, _GenContext

#: Top-level function definition header (generated code always puts the
#: opening brace on the header line at column zero).
_FUNC_DEF_RE = re.compile(r"^int (\w+)\(([^)]*)\) \{$", re.MULTILINE)
#: Top-level scalar global definitions and extern declarations.
_GLOBAL_DEF_RE = re.compile(
    r"^(?:static )?int (\w+)(?: = -?\d+)?;$", re.MULTILINE
)
_GLOBAL_EXTERN_RE = re.compile(r"^extern int (\w+);$", re.MULTILINE)


class FuzzProgramGenerator(ProgramGenerator):
    """Allocator-hostile variant of the testing generator."""

    def __init__(self, seed: int):
        self.seed = seed
        # Shape knobs draw from a stream decoupled from the body RNG so
        # both stay reproducible per seed.
        shape = random.Random(f"progen-shape-{seed}")
        super().__init__(
            seed,
            num_modules=shape.randint(2, 4),
            functions_per_module=shape.randint(2, 4),
            num_globals=shape.randint(4, 10),
        )

    def _function(self, name: str, globals_visible: list, arrays: list,
                  callees: list) -> list:
        if self._chance(0.45):
            return self._pressure_function(
                name, globals_visible, arrays, callees
            )
        return super()._function(name, globals_visible, arrays, callees)

    def _pressure_function(self, name: str, globals_visible: list,
                           arrays: list, callees: list) -> list:
        """Many values live across a call: the shape that forces
        callee-saves usage, spilling, and (under clustering) MSPILL
        motion to the enclosing root."""
        width = self._randint(6, 12)
        locals_ = [f"n{i}" for i in range(width)]
        lines = [f"int {name}(int a) {{"]
        for i, local in enumerate(locals_):
            seedling = (
                self._pick(globals_visible) if globals_visible
                and self._chance(0.5) else str(self._randint(1, 9))
            )
            lines.append(f"  int {local} = a * {i + 1} + {seedling};")
        # Global traffic inside a loop: web fodder for configs C-F.
        if globals_visible:
            hot = self._pick(globals_visible)
            trip = self._randint(2, 6)
            lines += [
                "  { int p;",
                f"  for (p = 0; p < {trip}; p++) {{",
                f"    {hot} = {hot} + {locals_[0]} - p;",
                "  } }",
            ]
        # A call in the middle keeps every local live across it.
        ctx = _GenContext(scalars=list(locals_), arrays=list(arrays))
        for callee in self._rng.sample(
            callees, k=min(len(callees), self._randint(1, 2))
        ):
            lines.append(f"  a += {callee}({self._expr(ctx, 1)});")
        total = " + ".join(locals_)
        lines.append(f"  return a + {total};")
        lines.append("}")
        return lines

    def _main_module(self, global_names: list, arrays: list,
                     function_names: list) -> str:
        base = super()._main_module(global_names, arrays, function_names)
        if not self._chance(0.6):
            return base
        # A multi-argument helper stressing the argument registers, and
        # a call to it from main (spliced in before main's epilogue).
        helper = [
            "int mix3(int x, int y, int z) {",
            "  int s = x * 2 + y * 3 + z * 5;",
            "  return s - (x & y & z);",
            "}",
            "",
        ]
        lines = base.split("\n")
        anchor = lines.index("  int acc = 0;")
        lines.insert(
            anchor + 1,
            f"  acc += mix3({self._randint(1, 9)}, acc + 2, "
            f"{self._randint(1, 9)});",
        )
        return "\n".join(helper) + "\n" + "\n".join(lines)

    # -- synthetic scale programs ------------------------------------------

    def synthesize_large(self, modules: int, procedures: int) -> list:
        """Synthesize summary files for a huge program directly.

        Returns a list of :class:`~repro.frontend.summary.ModuleSummary`
        — the analyzer's input — for a program of exactly ``modules``
        compilation units and ``procedures`` procedures.  Parsing 50k
        procedures of Tiny-C through phase 1 would take longer than the
        analysis being measured, so the scale harness synthesizes what
        phase 1 *would have produced*: a wide, shallow call-graph forest
        (``main`` calling every module root, binary call trees inside
        each module, occasional cross-module and self-recursive edges),
        module-local globals plus a few program-wide hot ones, and
        seeded register-need estimates.  Deterministic per
        ``(seed, modules, procedures)``.
        """
        from repro.frontend.summary import (
            GlobalSummary,
            ModuleSummary,
            ProcedureSummary,
        )

        if modules < 1:
            raise ValueError("modules must be >= 1")
        if procedures < modules:
            raise ValueError("procedures must be >= modules")
        rng = random.Random(
            f"progen-large-{self.seed}-{modules}-{procedures}"
        )

        per_module = [procedures // modules] * modules
        for m in range(procedures % modules):
            per_module[m] += 1

        shared = [f"shared_g{k}" for k in range(4)]
        summaries: list = []
        module_names = [f"mod{m:04d}" for m in range(modules)]
        proc_names: dict[int, list] = {}
        for m, module in enumerate(module_names):
            proc_names[m] = [
                "main" if m == 0 and i == 0 else f"m{m}_p{i}"
                for i in range(per_module[m])
            ]

        address_taken = sorted(
            rng.sample(
                [n for names in proc_names.values() for n in names
                 if n != "main"],
                k=min(2, max(0, procedures - 1)),
            )
        )

        for m, module in enumerate(module_names):
            # Globals scale with module size: real C programs of this
            # vintage carry roughly one file-scope scalar per procedure
            # (state flags, counters, cursors — the "hundreds of
            # globals" character of the paper's larger benchmarks).
            local_globals = [
                f"m{m}_g{j}"
                for j in range(max(2, per_module[m]))
            ]
            globals_ = [
                GlobalSummary(name=g, module=module) for g in local_globals
            ]
            if m == 0:
                globals_ += [
                    GlobalSummary(name=g, module=module) for g in shared
                ]
            procs = []
            names = proc_names[m]
            for i, name in enumerate(names):
                refs: dict = {}
                stores: dict = {}
                for g in rng.sample(
                    local_globals,
                    k=rng.randint(1, min(6, len(local_globals))),
                ):
                    refs[g] = rng.randint(1, 200)
                    if rng.random() < 0.5:
                        stores[g] = rng.randint(1, refs[g])
                if rng.random() < 0.05:
                    refs[rng.choice(shared)] = rng.randint(1, 50)
                calls: dict = {}
                for child in (2 * i + 1, 2 * i + 2):
                    if child < len(names):
                        calls[names[child]] = rng.randint(1, 100)
                if name == "main":
                    for other in range(1, modules):
                        calls[proc_names[other][0]] = rng.randint(1, 20)
                elif i == 0 and m + 1 < modules and rng.random() < 0.15:
                    target = rng.randrange(m + 1, modules)
                    calls[proc_names[target][0]] = rng.randint(1, 10)
                if rng.random() < 0.02:
                    calls[name] = rng.randint(1, 5)  # self-recursion
                procs.append(ProcedureSummary(
                    name=name,
                    module=module,
                    global_refs=refs,
                    global_stores=stores,
                    calls=calls,
                    address_taken_procs=(
                        address_taken if name == "main" else []
                    ),
                    makes_indirect_calls=(
                        name != "main" and rng.random() < 0.0005
                    ),
                    indirect_call_freq=rng.randint(1, 10),
                    callee_saves_needed=rng.randint(0, 8),
                    caller_saves_needed=rng.randint(0, 6),
                    max_call_args=rng.randint(0, 5),
                    num_params=rng.randint(0, 4),
                ))
            summaries.append(ModuleSummary(
                module_name=module,
                globals=globals_,
                procedures=procs,
            ))
        return summaries

    # -- seeded mutation ---------------------------------------------------

    def mutate(self, sources: dict, step: int) -> dict:
        """One seeded edit of ``sources``: same (seed, step, sources)
        always yields the same mutated program.

        Draws one of the edit kinds the incremental analyzer must
        survive — edit a function body, add or remove a call edge, take
        a procedure's address (which also adds an indirect call site),
        or reference a previously-untouched global.  Mutants are valid,
        analyzable, linkable programs, but call-edge additions may
        create runtime recursion: mutants are meant to be *analyzed and
        built*, not executed.
        """
        rng = random.Random(f"progen-mutate-{self.seed}-{step}")
        operations = [
            self._mutate_body,
            self._mutate_add_call,
            self._mutate_remove_call,
            self._mutate_take_address,
            self._mutate_toggle_global,
        ]
        rng.shuffle(operations)
        for operation in operations:
            mutated = operation(dict(sources), rng, step)
            if mutated is not None:
                return mutated
        return dict(sources)

    # The helpers below return None when the edit kind has no candidate
    # site in this program, letting ``mutate`` fall through to another.

    @staticmethod
    def _definitions(sources: dict) -> list:
        """(module, name, params) for every function definition."""
        return [
            (module, match.group(1), match.group(2))
            for module, text in sorted(sources.items())
            for match in _FUNC_DEF_RE.finditer(text)
        ]

    @staticmethod
    def _visible_scalars(text: str) -> list:
        """Scalar globals a module's functions can reference."""
        return sorted(
            set(_GLOBAL_DEF_RE.findall(text))
            | set(_GLOBAL_EXTERN_RE.findall(text))
        )

    @staticmethod
    def _insert_into_body(text: str, function: str, statement: str) -> str:
        """Insert ``statement`` as the first line of ``function``."""
        pattern = re.compile(
            rf"^(int {re.escape(function)}\([^)]*\) \{{)$", re.MULTILINE
        )
        return pattern.sub(rf"\1\n{statement}", text, count=1)

    @staticmethod
    def _ensure_extern_function(text: str, name: str) -> str:
        if re.search(rf"^(?:extern )?int {re.escape(name)}\(", text,
                     re.MULTILINE):
            return text
        return f"extern int {name}(int);\n" + text

    def _mutate_body(self, sources, rng, step):
        """Edit a body: new loop traffic on an already-visible global
        (moves reference frequencies without touching the call graph)."""
        candidates = [
            (module, name)
            for module, name, _params in self._definitions(sources)
            if self._visible_scalars(sources[module])
        ]
        if not candidates:
            return None
        module, function = rng.choice(candidates)
        variable = rng.choice(self._visible_scalars(sources[module]))
        trip = rng.randint(2, 7)
        counter = f"mb{step}"
        statement = (
            f"  {{ int {counter}; for ({counter} = 0; {counter} < {trip}; "
            f"{counter}++) {{ {variable} = {variable} + {counter}; }} }}"
        )
        sources[module] = self._insert_into_body(
            sources[module], function, statement
        )
        return sources

    def _mutate_add_call(self, sources, rng, step):
        """Add a call edge from one single-int-arg function to another
        (guarded so existing runtime behavior is preserved)."""
        definitions = self._definitions(sources)
        callers = [
            (module, name, params.split()[1])
            for module, name, params in definitions
            if re.fullmatch(r"int \w+", params) and name != "main"
        ]
        callees = [
            name
            for _module, name, params in definitions
            if re.fullmatch(r"int \w+", params) and name != "main"
        ]
        if not callers or not callees:
            return None
        module, caller, param = rng.choice(callers)
        callee = rng.choice([c for c in callees if c != caller] or callees)
        statement = (
            f"  if ({param} > 999983) {{ {param} += {callee}({param}); }}"
        )
        text = self._ensure_extern_function(sources[module], callee)
        sources[module] = self._insert_into_body(text, caller, statement)
        return sources

    def _mutate_remove_call(self, sources, rng, step):
        """Remove one direct call site, keeping its argument expression
        (``x += f(e);`` becomes ``x += 0 + (e);``)."""
        defined = {name for _m, name, _p in self._definitions(sources)}
        sites = []
        for module, text in sorted(sources.items()):
            for match in re.finditer(r"\+= (\w+)\(", text):
                line_end = text.find("\n", match.start())
                line = text[match.start():line_end]
                if match.group(1) in defined and "," not in line:
                    sites.append((module, match.start(), match.group(1)))
        if not sites:
            return None
        module, position, callee = rng.choice(sites)
        text = sources[module]
        sources[module] = (
            text[:position]
            + text[position:].replace(f"+= {callee}(", "+= 0 + (", 1)
        )
        return sources

    def _mutate_take_address(self, sources, rng, step):
        """Take a procedure's address and call through the pointer —
        the shape change with the widest blast radius (every
        address-taken procedure becomes a conservative indirect-call
        target)."""
        definitions = self._definitions(sources)
        callers = [
            (module, name, params.split()[1])
            for module, name, params in definitions
            if re.fullmatch(r"int \w+", params) and name != "main"
        ]
        targets = [
            name
            for _module, name, params in definitions
            if re.fullmatch(r"int \w+", params) and name != "main"
        ]
        if not callers or not targets:
            return None
        module, caller, param = rng.choice(callers)
        target = rng.choice([t for t in targets if t != caller] or targets)
        pointer = f"pa{step}"
        statement = (
            f"  {{ int *{pointer} = &{target}; "
            f"{param} += {pointer}({param} & 7); }}"
        )
        text = self._ensure_extern_function(sources[module], target)
        sources[module] = self._insert_into_body(text, caller, statement)
        return sources

    def _mutate_toggle_global(self, sources, rng, step):
        """Reference a global the chosen function did not touch."""
        candidates = []
        for module, name, _params in self._definitions(sources):
            body = self._function_body(sources[module], name)
            for variable in self._visible_scalars(sources[module]):
                if not re.search(rf"\b{re.escape(variable)}\b", body):
                    candidates.append((module, name, variable))
        if not candidates:
            return None
        module, function, variable = rng.choice(candidates)
        sources[module] = self._insert_into_body(
            sources[module], function, f"  {variable} = {variable} + 1;"
        )
        return sources

    @staticmethod
    def _function_body(text: str, function: str) -> str:
        match = re.search(
            rf"^int {re.escape(function)}\([^)]*\) \{{$", text,
            re.MULTILINE,
        )
        if match is None:
            return ""
        end = text.find("\n}", match.end())
        return text[match.end(): end if end != -1 else len(text)]


def generate_fuzz_program(seed: int) -> dict:
    """Sources for one seeded fuzz program (``{module: text}``)."""
    return FuzzProgramGenerator(seed).generate()
