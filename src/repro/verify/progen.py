"""Seeded fuzz-program generation aimed at the allocator's pressure
points.

The base :class:`~repro.testing.generator.ProgramGenerator` optimizes
for breadth of language constructs; differential fuzzing of the
*allocation* machinery wants something sharper — programs that actually
make the analyzer's directives bite:

* **register pressure** — functions holding many simultaneously-live
  values across a call, forcing callee-saves demand, spill-code motion
  into cluster roots, and non-trivial FREE/MSPILL sets;
* **hot global traffic** — tight loops over a handful of globals, so
  the web machinery (configs C-F) finds promotions worth making, with
  both read-only and read-write webs;
* **multi-argument calls** — exercising the caller-saves argument
  registers around calls;
* **varied shape** — module/function/global counts themselves derive
  from the seed, so a seed sweep covers single-module programs through
  wide multi-module call graphs.

Each seed yields one deterministic, terminating program; the same seed
always yields the same sources (the fuzz suite's cache keys and the
differential oracle both rely on this).
"""

from __future__ import annotations

import random

from repro.testing.generator import ProgramGenerator, _GenContext


class FuzzProgramGenerator(ProgramGenerator):
    """Allocator-hostile variant of the testing generator."""

    def __init__(self, seed: int):
        # Shape knobs draw from a stream decoupled from the body RNG so
        # both stay reproducible per seed.
        shape = random.Random(f"progen-shape-{seed}")
        super().__init__(
            seed,
            num_modules=shape.randint(2, 4),
            functions_per_module=shape.randint(2, 4),
            num_globals=shape.randint(4, 10),
        )

    def _function(self, name: str, globals_visible: list, arrays: list,
                  callees: list) -> list:
        if self._chance(0.45):
            return self._pressure_function(
                name, globals_visible, arrays, callees
            )
        return super()._function(name, globals_visible, arrays, callees)

    def _pressure_function(self, name: str, globals_visible: list,
                           arrays: list, callees: list) -> list:
        """Many values live across a call: the shape that forces
        callee-saves usage, spilling, and (under clustering) MSPILL
        motion to the enclosing root."""
        width = self._randint(6, 12)
        locals_ = [f"n{i}" for i in range(width)]
        lines = [f"int {name}(int a) {{"]
        for i, local in enumerate(locals_):
            seedling = (
                self._pick(globals_visible) if globals_visible
                and self._chance(0.5) else str(self._randint(1, 9))
            )
            lines.append(f"  int {local} = a * {i + 1} + {seedling};")
        # Global traffic inside a loop: web fodder for configs C-F.
        if globals_visible:
            hot = self._pick(globals_visible)
            trip = self._randint(2, 6)
            lines += [
                "  { int p;",
                f"  for (p = 0; p < {trip}; p++) {{",
                f"    {hot} = {hot} + {locals_[0]} - p;",
                "  } }",
            ]
        # A call in the middle keeps every local live across it.
        ctx = _GenContext(scalars=list(locals_), arrays=list(arrays))
        for callee in self._rng.sample(
            callees, k=min(len(callees), self._randint(1, 2))
        ):
            lines.append(f"  a += {callee}({self._expr(ctx, 1)});")
        total = " + ".join(locals_)
        lines.append(f"  return a + {total};")
        lines.append("}")
        return lines

    def _main_module(self, global_names: list, arrays: list,
                     function_names: list) -> str:
        base = super()._main_module(global_names, arrays, function_names)
        if not self._chance(0.6):
            return base
        # A multi-argument helper stressing the argument registers, and
        # a call to it from main (spliced in before main's epilogue).
        helper = [
            "int mix3(int x, int y, int z) {",
            "  int s = x * 2 + y * 3 + z * 5;",
            "  return s - (x & y & z);",
            "}",
            "",
        ]
        lines = base.split("\n")
        anchor = lines.index("  int acc = 0;")
        lines.insert(
            anchor + 1,
            f"  acc += mix3({self._randint(1, 9)}, acc + 2, "
            f"{self._randint(1, 9)});",
        )
        return "\n".join(helper) + "\n" + "\n".join(lines)


def generate_fuzz_program(seed: int) -> dict:
    """Sources for one seeded fuzz program (``{module: text}``)."""
    return FuzzProgramGenerator(seed).generate()
