"""Post-link verification: allocation auditor + differential fuzzing.

``auditor`` statically checks linked executables against the program
database (paper Figure 6/7 discipline); ``progen`` generates seeded
random TinyC programs to drive the auditor and the differential oracle
across analyzer configurations.  See ``docs/VERIFIER.md``.
"""

from repro.verify.auditor import (
    AuditError,
    AuditReport,
    Violation,
    audit_executable,
)
from repro.verify.progen import generate_fuzz_program

__all__ = [
    "AuditError",
    "AuditReport",
    "Violation",
    "audit_executable",
    "generate_fuzz_program",
]
