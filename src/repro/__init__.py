"""Interprocedural register allocation across procedure and module
boundaries — a full reproduction of Santhanam & Odnert (PLDI 1990).

The package contains a complete two-pass compilation system for the
Tiny-C language targeting the simulated PRISM RISC machine:

* :mod:`repro.lang` — front end (lexer, parser, semantic analysis);
* :mod:`repro.ir` / :mod:`repro.opt` — IR and the level-2 optimizer;
* :mod:`repro.frontend` — compiler first phase (summary files);
* :mod:`repro.callgraph` / :mod:`repro.analyzer` — the program analyzer:
  global variable promotion over call-graph webs and spill code motion
  over clusters, producing the program database;
* :mod:`repro.backend` — compiler second phase (code generation,
  directive-driven register allocation);
* :mod:`repro.linker` / :mod:`repro.machine` — linker and cycle-accurate
  simulator with the paper's metrics;
* :mod:`repro.workloads` — the benchmark programs;
* :mod:`repro.driver` — one-call pipelines.

Quickstart::

    from repro import AnalyzerOptions, compile_and_run

    sources = {"main": "int g; int main() { g = 41; print(g + 1); return 0; }"}
    baseline = compile_and_run(sources)                      # level 2 only
    ipa = compile_and_run(sources, analyzer_options=AnalyzerOptions.config("C"))
    print(baseline.cycles, ipa.cycles)
"""

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.driver import analyze_program
from repro.analyzer.options import PAPER_CONFIGS, AnalyzerOptions
from repro.backend.allocators import (
    ALLOCATORS,
    get_allocator,
    resolve_allocator,
)
from repro.driver.pipeline import (
    CompilationResult,
    collect_profile,
    compile_and_run,
    compile_program,
    compile_with_database,
    run_phase1,
)
from repro.driver.scheduler import CompilationScheduler, MetricsSnapshot
from repro.incremental import (
    IncrementalAnalyzer,
    InvalidationReport,
    SummaryDB,
)
from repro.machine.profiler import ProfileData
from repro.machine.simulator import (
    ConventionViolation,
    CostModel,
    ExecutionStats,
    MachineError,
    Simulator,
    run_executable,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    explain_global,
    explain_procedure,
    unified_registry,
)

__version__ = "1.0.0"

__all__ = [
    "ALLOCATORS",
    "AnalyzerOptions",
    "ConventionViolation",
    "get_allocator",
    "resolve_allocator",
    "Simulator",
    "CompilationResult",
    "CompilationScheduler",
    "CostModel",
    "MetricsSnapshot",
    "ExecutionStats",
    "IncrementalAnalyzer",
    "InvalidationReport",
    "MachineError",
    "MetricsRegistry",
    "PAPER_CONFIGS",
    "ProfileData",
    "ProgramDatabase",
    "SummaryDB",
    "Tracer",
    "analyze_program",
    "collect_profile",
    "compile_and_run",
    "compile_program",
    "compile_with_database",
    "explain_global",
    "explain_procedure",
    "run_executable",
    "run_phase1",
    "unified_registry",
    "__version__",
]
