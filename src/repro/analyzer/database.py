"""The program database (paper section 4.3).

The program analyzer's output: for every procedure, a set of register
allocation *directives* that the compiler second phase consults.  Because
directives are precomputed and stored per procedure, the second phase can
compile modules independently and in any order — the property that makes
the scheme work across module boundaries.

Each entry contains:

* the four register usage sets **FREE / CALLER / CALLEE / MSPILL**
  (section 4.2.3), and
* the list of globals promoted in the procedure, each with its reserved
  register and web-entry flags (section 4.1.3).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.target.registers import CALLEE_SAVES, CALLER_SAVES


@dataclass(frozen=True)
class PromotedGlobal:
    """One global variable promoted to a register in a procedure.

    Attributes:
        name: Qualified global name.
        register: The callee-saves register dedicated to it in this web.
        is_entry: True if this procedure is a web entry node (must load
            the global at entry and store it back at exit).
        needs_store: False when no procedure in the web modifies the
            global, in which case entry nodes skip the exit store.
        wrap_callees: For *split* webs (section 7.6.1): direct callees
            around which the register must be stored to memory before
            the call (when ``needs_store``) and reloaded afterwards,
            because the variable is reachable from them outside the web.
    """

    name: str
    register: int
    is_entry: bool = False
    needs_store: bool = True
    wrap_callees: tuple = ()


@dataclass
class ProcedureDirectives:
    """Register allocation directives for one procedure.

    ``caller_prefix`` / ``subtree_caller_used`` implement the section
    7.6.2 caller-saves preallocation extension: when ``caller_prefix``
    is not ``None``, the procedure's allocator restricts its standard
    caller-saves usage to that prefix (plus RV and the argument
    registers it demonstrably touches), and callers may treat
    ``subtree_caller_used`` as the complete set of standard caller-saves
    registers a call to this procedure can clobber.
    """

    name: str
    free: frozenset = frozenset()
    caller: frozenset = frozenset(CALLER_SAVES)
    callee: frozenset = frozenset(CALLEE_SAVES)
    mspill: frozenset = frozenset()
    promoted: tuple = ()
    is_cluster_root: bool = False
    caller_prefix: object = None  # Optional[tuple]
    subtree_caller_used: frozenset = frozenset(CALLER_SAVES)

    @property
    def reserved_web_registers(self) -> frozenset:
        """Registers dedicated to promoted globals in this procedure."""
        return frozenset(entry.register for entry in self.promoted)

    def validate(self) -> None:
        """Check the linkage-convention invariants of the usage sets."""
        free, caller, callee, mspill = (
            self.free, self.caller, self.callee, self.mspill
        )
        # Fast path for the common (valid) case: the four sets are
        # pairwise disjoint iff their union has no collisions; the slow
        # path below is only entered to attribute a violation.
        union = free | caller | callee | mspill
        if (
            len(union)
            == len(free) + len(caller) + len(callee) + len(mspill)
        ) and not (mspill and not self.is_cluster_root):
            for entry in self.promoted:
                if entry.register in union:
                    break
            else:
                return
        sets = {
            "free": self.free,
            "caller": self.caller,
            "callee": self.callee,
            "mspill": self.mspill,
        }
        names = list(sets)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                overlap = sets[a] & sets[b]
                if overlap:
                    raise ValueError(
                        f"{self.name}: {a} and {b} sets overlap: {overlap}"
                    )
        web_regs = self.reserved_web_registers
        for set_name, regs in sets.items():
            overlap = regs & web_regs
            if overlap:
                raise ValueError(
                    f"{self.name}: web-reserved registers appear in "
                    f"{set_name}: {overlap}"
                )
        if self.mspill and not self.is_cluster_root:
            raise ValueError(
                f"{self.name}: MSPILL is non-empty but the procedure is "
                f"not a cluster root"
            )


def default_directives(name: str) -> ProcedureDirectives:
    """The standard linkage convention (no interprocedural allocation)."""
    return ProcedureDirectives(name=name)


def directive_payload(directives: ProcedureDirectives) -> dict:
    """Canonical JSON-able form of one procedure's directives.

    The single source of truth for directive serialization: both the
    database's JSON round-trip and the per-module digests the
    incremental driver keys its phase-2 cache on are built from it.
    """
    return {
        "free": sorted(directives.free),
        "caller": sorted(directives.caller),
        "callee": sorted(directives.callee),
        "mspill": sorted(directives.mspill),
        "is_cluster_root": directives.is_cluster_root,
        "caller_prefix": (
            list(directives.caller_prefix)
            if directives.caller_prefix is not None
            else None
        ),
        "subtree_caller_used": sorted(directives.subtree_caller_used),
        "promoted": [
            {
                "name": p.name,
                "register": p.register,
                "is_entry": p.is_entry,
                "needs_store": p.needs_store,
                "wrap_callees": sorted(p.wrap_callees),
            }
            for p in directives.promoted
        ],
    }


@dataclass
class WebRecord:
    """Analyzer census entry for one web (used by stats and Table 2)."""

    web_id: int
    variable: str
    nodes: frozenset
    entry_nodes: frozenset
    register: Optional[int] = None
    interferes_with: frozenset = frozenset()
    priority: float = 0.0
    discarded_reason: Optional[str] = None

    @property
    def colored(self) -> bool:
        return self.register is not None


@dataclass
class ClusterRecord:
    """Analyzer census entry for one cluster."""

    root: str
    members: frozenset  # non-root member names


@dataclass
class AnalyzerStatistics:
    """Whole-program census mirroring the paper's section 6.2 numbers."""

    eligible_globals: int = 0
    ineligible_globals: int = 0
    total_webs: int = 0
    webs_considered: int = 0
    webs_colored: int = 0
    webs_discarded_sparse: int = 0
    webs_discarded_single_low: int = 0
    webs_discarded_static_cross_module: int = 0
    clusters: int = 0
    cluster_nodes: int = 0

    @property
    def average_cluster_size(self) -> float:
        if self.clusters == 0:
            return 0.0
        # +1 counts the root itself as a member of its cluster.
        return self.cluster_nodes / self.clusters


class ProgramDatabase:
    """Maps procedure names to directives; answers with the standard
    convention for procedures the analyzer never saw (e.g. library code)."""

    def __init__(self):
        self.procedures: dict[str, ProcedureDirectives] = {}
        self.webs: list[WebRecord] = []
        self.clusters: list[ClusterRecord] = []
        self.statistics = AnalyzerStatistics()

    def put(self, directives: ProcedureDirectives) -> None:
        directives.validate()
        self.procedures[directives.name] = directives

    def get(self, name: str) -> ProcedureDirectives:
        if name in self.procedures:
            return self.procedures[name]
        return default_directives(name)

    def convention_volatile_registers(self) -> frozenset:
        """Registers the simulator's convention checker must not track:
        registers dedicated to promoted globals (callees rewrite them by
        design) and FREE-set registers (callees use them without
        save/restore — a dominating cluster root spilled them, which the
        per-call snapshot cannot see)."""
        volatile: set = set()
        for directives in self.procedures.values():
            volatile |= set(directives.reserved_web_registers)
            volatile |= set(directives.free)
            # CALLER additions beyond the standard convention come from
            # a cluster root's MSPILL set and behave like FREE here.
            from repro.target.registers import CALLER_SAVES

            volatile |= set(directives.caller) - set(CALLER_SAVES)
        return frozenset(volatile)

    def __contains__(self, name: str) -> bool:
        return name in self.procedures

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """Serialize the database (directives only) to JSON."""
        payload = {
            name: directive_payload(d)
            for name, d in self.procedures.items()
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def directive_digest(self, names) -> str:
        """Digest of the directives phase 2 would see for ``names``.

        ``names`` is the set of procedures one module's compilation can
        query (its own definitions plus its direct callees; see
        :func:`repro.backend.phase2.module_directive_names`).  Because
        :meth:`get` answers the standard convention for unknown names,
        a procedure with explicitly-default directives digests the same
        as an absent one — exactly the equivalence phase 2 observes.
        """
        payload = {
            name: directive_payload(self.get(name))
            for name in sorted(set(names))
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ProgramDatabase":
        """Deserialize a database written by :meth:`to_json`."""
        database = cls()
        for name, raw in json.loads(text).items():
            database.put(
                ProcedureDirectives(
                    name=name,
                    free=frozenset(raw["free"]),
                    caller=frozenset(raw["caller"]),
                    callee=frozenset(raw["callee"]),
                    mspill=frozenset(raw["mspill"]),
                    is_cluster_root=raw["is_cluster_root"],
                    caller_prefix=(
                        tuple(raw["caller_prefix"])
                        if raw.get("caller_prefix") is not None
                        else None
                    ),
                    subtree_caller_used=frozenset(
                        raw.get("subtree_caller_used", CALLER_SAVES)
                    ),
                    promoted=tuple(
                        PromotedGlobal(
                            name=p["name"],
                            register=p["register"],
                            is_entry=p["is_entry"],
                            needs_store=p["needs_store"],
                            wrap_callees=tuple(
                                p.get("wrap_callees", ())
                            ),
                        )
                        for p in raw["promoted"]
                    ),
                )
            )
        return database
