"""Web interference graph (paper section 4.1.3).

Two webs *interfere* when they share a call graph node — they would need
the same procedure to dedicate two registers to two different globals at
once if colored alike.  Webs for the same variable never interfere (web
construction makes them disjoint and merges overlaps).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analyzer.webs import Web


class WebInterferenceGraph:
    """Adjacency over live (non-discarded) webs."""

    def __init__(self, webs: list):
        self.webs = [web for web in webs if web.is_live]
        self._neighbors: dict[int, set] = defaultdict(set)
        by_node: dict[str, list] = defaultdict(list)
        for web in self.webs:
            for name in web.nodes:
                by_node[name].append(web)
        for sharing in by_node.values():
            for i, web in enumerate(sharing):
                for other in sharing[i + 1:]:
                    if web.web_id == other.web_id:
                        continue
                    self._neighbors[web.web_id].add(other.web_id)
                    self._neighbors[other.web_id].add(web.web_id)

    def neighbors(self, web: Web) -> set:
        """IDs of webs interfering with ``web``."""
        return set(self._neighbors.get(web.web_id, set()))

    def degree(self, web: Web) -> int:
        return len(self._neighbors.get(web.web_id, set()))

    def interferes(self, a: Web, b: Web) -> bool:
        return b.web_id in self._neighbors.get(a.web_id, set())
