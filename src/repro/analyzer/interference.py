"""Web interference graph (paper section 4.1.3).

Two webs *interfere* when they share a call graph node — they would need
the same procedure to dedicate two registers to two different globals at
once if colored alike.  Webs for the same variable never interfere (web
construction makes them disjoint and merges overlaps).

Under the default ``packed`` dataflow mode the adjacency is built on web
bitmasks — one integer per call-graph node with the bit of every web
containing it — so a node shared by ``k`` webs costs ``k`` mask unions
instead of ``k^2/2`` pairwise set inserts.  Both kernels produce the
same neighbor sets.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.packed import iter_bits, resolve_dataflow
from repro.analyzer.webs import Web


class WebInterferenceGraph:
    """Adjacency over live (non-discarded) webs."""

    def __init__(self, webs: list, mode: str | None = None):
        self.webs = [web for web in webs if web.is_live]
        if resolve_dataflow(mode) == "packed":
            self._neighbors = self._build_packed()
        else:
            self._neighbors = self._build_reference()

    def _build_reference(self) -> dict:
        neighbors: dict[int, set] = defaultdict(set)
        by_node: dict[str, list] = defaultdict(list)
        for web in self.webs:
            for name in web.nodes:
                by_node[name].append(web)
        for sharing in by_node.values():
            for i, web in enumerate(sharing):
                for other in sharing[i + 1:]:
                    if web.web_id == other.web_id:
                        continue
                    neighbors[web.web_id].add(other.web_id)
                    neighbors[other.web_id].add(web.web_id)
        return neighbors

    def _build_packed(self) -> dict:
        # Shared-node index first (web *positions* per node), then an
        # adaptive kernel choice: when nodes are shared by few webs the
        # pairwise sweep is cheaper than big-int arithmetic, but a hub
        # node shared by k webs costs k^2/2 pairwise inserts vs. k mask
        # unions, so dense sharing switches to one bit per live web.
        # Both branches produce the same neighbor sets.
        webs = self.webs
        by_node: dict[str, list] = defaultdict(list)
        for position, web in enumerate(webs):
            for name in web.nodes:
                by_node[name].append(position)
        shared = [s for s in by_node.values() if len(s) > 1]
        pair_cost = sum(len(s) * len(s) for s in shared)
        mask_cost = sum(len(s) for s in shared) * ((len(webs) >> 6) + 1)
        if pair_cost <= mask_cost:
            # Accumulate web *ids* directly: converting position sets to
            # id sets afterwards would re-walk every (large) neighbor
            # set, while the per-node groups are small.
            ids = [web.web_id for web in webs]
            result: dict[int, set] = {}
            for sharing in shared:
                group = {ids[p] for p in sharing}
                for web_id in group:
                    existing = result.get(web_id)
                    if existing is None:
                        result[web_id] = set(group)
                    else:
                        existing.update(group)
            for web_id, members in result.items():
                members.discard(web_id)
            return result
        neighbor_masks = [0] * len(webs)
        for sharing in shared:
            mask = 0
            for p in sharing:
                mask |= 1 << p
            for p in sharing:
                neighbor_masks[p] |= mask
        neighbors: dict[int, set] = {}
        for position, web in enumerate(webs):
            mask = neighbor_masks[position] & ~(1 << position)
            if mask:
                neighbors[web.web_id] = {
                    webs[i].web_id for i in iter_bits(mask)
                }
        return neighbors

    def neighbors(self, web: Web) -> set:
        """IDs of webs interfering with ``web``."""
        return set(self._neighbors.get(web.web_id, set()))

    def neighbor_ids(self, web: Web):
        """The stored neighbor-id set of ``web`` — MUST NOT be mutated.

        Hot loops (coloring) read this instead of :meth:`neighbors` to
        skip the defensive copy.
        """
        return self._neighbors.get(web.web_id, ())

    def neighbors_frozen(self, web: Web) -> frozenset:
        """Like :meth:`neighbors`, as a shared immutable set."""
        cache = getattr(self, "_frozen", None)
        if cache is None:
            cache = self._frozen = {}
        value = cache.get(web.web_id)
        if value is None:
            value = frozenset(self._neighbors.get(web.web_id, ()))
            cache[web.web_id] = value
        return value

    def degree(self, web: Web) -> int:
        return len(self._neighbors.get(web.web_id, set()))

    def interferes(self, a: Web, b: Web) -> bool:
        return b.web_id in self._neighbors.get(a.web_id, set())
