"""The program analyzer (paper section 4).

``analyze_program`` is the tool's entry point: it reads every module's
summary file, builds the call graph, runs global variable promotion (web
identification + interference + coloring, or blanket promotion) and spill
code motion (clusters + register usage sets), and emits the program
database of per-procedure directives for the compiler second phase.

The analyzer never touches code — exactly as in the paper, all decisions
flow through the database.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analyzer.clusters import identify_clusters
from repro.analyzer.coloring import (
    color_webs_greedy,
    color_webs_priority,
    compute_web_priority,
    select_blanket_globals,
)
from repro.analyzer.database import (
    ClusterRecord,
    ProcedureDirectives,
    ProgramDatabase,
    PromotedGlobal,
    WebRecord,
)
from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.options import AnalyzerOptions
from repro.analyzer.regsets import compute_register_sets
from repro.analyzer.webs import identify_webs
from repro.callgraph.dataflow import (
    classify_globals,
    compute_reference_sets,
    eligible_globals,
)
from repro.callgraph.graph import CallGraph
from repro.frontend.summary import ModuleSummary
from repro.obs.tracer import current_tracer


@dataclass
class AnalysisTrace:
    """Optional capture of one analyzer run's intermediate structures.

    The incremental analyzer (:mod:`repro.incremental`) records
    dependency information and memoization entries from these; nothing
    here feeds back into the run itself.
    """

    graph: object = None
    eligible: frozenset = frozenset()
    reference_sets: object = None  # ReferenceSets (web promotion only)
    webs: list = field(default_factory=list)
    clusters: list = field(default_factory=list)
    dominators: object = None
    register_sets: dict = field(default_factory=dict)
    web_reserved: dict = field(default_factory=dict)
    #: variable -> (first web id consumed, ids consumed) during web
    #: construction — what an id-exact replay needs.
    web_id_spans: dict = field(default_factory=dict)
    #: Construction-time web structure, captured *before* coloring
    #: mutates registers/priorities/discard reasons:
    #: (variable, web_id, nodes, from_split, discarded_reason) tuples.
    web_snapshots: list = field(default_factory=list)


#: Computes (or replays) the screened webs of one variable; signature
#: ``(variable, graph, sets, static_modules, next_id) -> list[Web]``.
WebSupplier = Callable[..., list]

#: Computes (or replays) the cluster list; signature
#: ``(graph, dominators) -> list[Cluster]``.
ClusterSupplier = Callable[..., list]


def analyze_program(
    summaries: Iterable[ModuleSummary],
    options: Optional[AnalyzerOptions] = None,
    *,
    web_supplier: Optional[WebSupplier] = None,
    cluster_supplier: Optional[ClusterSupplier] = None,
    trace: Optional[AnalysisTrace] = None,
) -> ProgramDatabase:
    """Run the full analyzer and return the program database.

    ``web_supplier`` / ``cluster_supplier`` substitute the per-variable
    web construction and cluster identification steps (the incremental
    analyzer passes memoizing suppliers); ``trace``, when given,
    captures the run's intermediate structures.  All default to off and
    leave behavior bit-identical.
    """
    summaries = list(summaries)
    options = options or AnalyzerOptions()
    database = ProgramDatabase()

    exported = options.exported_procedures
    graph = CallGraph.build(
        summaries, set(exported) if exported is not None else None
    )
    graph.normalize_weights(options.profile)

    eligible = eligible_globals(summaries)
    eligible -= set(options.externally_visible_globals)
    total_globals = sum(len(s.globals) for s in summaries)
    database.statistics.eligible_globals = len(eligible)
    database.statistics.ineligible_globals = total_globals - len(eligible)

    tracer = current_tracer()
    if tracer.enabled:
        classified = classify_globals(summaries)
        for name in sorted(classified):
            reasons = list(classified[name])
            if name in options.externally_visible_globals:
                reasons.append("externally-visible")
            if reasons:
                tracer.event(
                    "global-ineligible", name=name, reasons=sorted(reasons)
                )

    promoted_per_proc: dict[str, list] = defaultdict(list)
    web_reserved: dict[str, set] = defaultdict(set)

    if options.global_promotion == "webs":
        _run_web_promotion(
            graph, summaries, eligible, options, database,
            promoted_per_proc, web_reserved,
            web_supplier=web_supplier, trace=trace,
        )
    elif options.global_promotion == "blanket":
        if exported is not None:
            raise ValueError(
                "blanket promotion requires the whole program: with "
                "unknown outside callers there is no program entry at "
                "which to load the dedicated registers"
            )
        _run_blanket_promotion(
            graph, summaries, eligible, options, database,
            promoted_per_proc, web_reserved,
        )
    elif options.global_promotion == "none":
        if tracer.enabled:
            for variable in sorted(eligible):
                tracer.event(
                    "global-decision",
                    name=variable,
                    decision="rejected",
                    mode="none",
                    reasons=["promotion-disabled"],
                    registers=[],
                    webs=[],
                )
    else:
        raise ValueError(
            f"unknown promotion mode {options.global_promotion!r}"
        )

    roots: set = set()
    clusters: list = []
    dominators = None
    if options.spill_code_motion:
        with tracer.span("clusters"):
            dominators = graph.dominator_tree()
            if cluster_supplier is not None:
                clusters = cluster_supplier(graph, dominators)
            else:
                clusters = identify_clusters(
                    graph, dominators, options.profile,
                    options.cluster_options,
                )
            if tracer.enabled:
                # Emitted here (not inside identify_clusters) so a
                # supplier-replayed cluster list narrates identically.
                for cluster in clusters:
                    tracer.event(
                        "cluster-formed",
                        root=cluster.root,
                        members=sorted(cluster.members),
                    )
        roots = {cluster.root for cluster in clusters}
        with tracer.span("register-sets"):
            register_sets = compute_register_sets(
                graph, clusters, dominators, web_reserved
            )
        database.clusters = [
            ClusterRecord(cluster.root, frozenset(cluster.members))
            for cluster in clusters
        ]
        database.statistics.clusters = len(clusters)
        database.statistics.cluster_nodes = sum(
            len(cluster.members) for cluster in clusters
        )
    else:
        with tracer.span("register-sets"):
            register_sets = compute_register_sets(
                graph, [], None, web_reserved
            )

    from repro.callgraph.graph import EXTERNAL_CALLER

    caller_prefixes: dict = {}
    subtree_caller: dict = {}
    if options.caller_saves_preallocation:
        from repro.analyzer.callersaves import compute_subtree_caller_usage

        caller_prefixes, subtree_caller = compute_subtree_caller_usage(
            graph
        )

    from repro.target.registers import CALLER_SAVES

    for name in sorted(graph.nodes):
        if name == EXTERNAL_CALLER:
            continue
        sets = register_sets[name]
        directives = ProcedureDirectives(
            name=name,
            free=frozenset(sets.free),
            caller=frozenset(sets.caller),
            callee=frozenset(sets.callee),
            mspill=frozenset(sets.mspill),
            promoted=tuple(
                sorted(promoted_per_proc.get(name, []),
                       key=lambda p: p.name)
            ),
            is_cluster_root=name in roots,
            caller_prefix=caller_prefixes.get(name),
            subtree_caller_used=subtree_caller.get(
                name, frozenset(CALLER_SAVES)
            ),
        )
        database.put(directives)
        if tracer.enabled:
            from repro.analyzer.database import directive_payload

            tracer.event(
                "directive", procedure=name,
                **directive_payload(directives),
            )
    if trace is not None:
        trace.graph = graph
        trace.eligible = frozenset(eligible)
        trace.clusters = clusters
        trace.dominators = dominators
        trace.register_sets = register_sets
        trace.web_reserved = {
            name: frozenset(regs) for name, regs in web_reserved.items()
        }
    return database


def _static_modules(summaries) -> dict:
    return {
        g.name: g.module
        for summary in summaries
        for g in summary.globals
        if g.is_static
    }


def _web_needs_store(web, graph: CallGraph) -> bool:
    stamp = getattr(web, "_packed_nodes", None)
    if (
        stamp is not None
        and stamp[2] == len(web.nodes)
        and getattr(graph, "_packed_graph", None) is stamp[0]
    ):
        masks = _storing_masks(graph, stamp[0])
        return bool(masks.get(web.variable, 0) & stamp[1])
    stores = _storing_nodes(graph).get(web.variable)
    return stores is not None and not stores.isdisjoint(web.nodes)


def _storing_masks(graph: CallGraph, packed) -> dict:
    """variable -> bitmask of storing nodes (packed-mode counterpart of
    :func:`_storing_nodes`, likewise memoized on the graph)."""
    cached = getattr(graph, "_storing_masks", None)
    if cached is None:
        index_of = packed.index.index_of
        cached = {}
        for name, node in graph.nodes.items():
            bit = 1 << index_of[name]
            for variable, count in node.summary.global_stores.items():
                if count > 0:
                    cached[variable] = cached.get(variable, 0) | bit
        graph._storing_masks = cached
    return cached


def _storing_nodes(graph: CallGraph) -> dict:
    """variable -> nodes that store it, memoized on the graph (one sweep
    instead of a per-web re-scan of every member's store counts)."""
    cached = getattr(graph, "_storing_nodes", None)
    if cached is None:
        cached = {}
        for name, node in graph.nodes.items():
            for variable, count in node.summary.global_stores.items():
                if count > 0:
                    cached.setdefault(variable, set()).add(name)
        graph._storing_nodes = cached
    return cached


def _run_web_promotion(
    graph, summaries, eligible, options, database,
    promoted_per_proc, web_reserved,
    web_supplier=None, trace=None,
) -> None:
    from repro.analyzer.webs import identify_variable_webs

    tracer = current_tracer()
    sets = compute_reference_sets(graph, eligible)
    static_modules = _static_modules(summaries)
    next_id = [1]
    webs: list = []
    web_id_spans: dict = {}
    with tracer.span("web-formation"):
        for variable in sorted(eligible):
            start = next_id[0]
            if web_supplier is not None:
                variable_webs = web_supplier(
                    variable, graph, sets, static_modules, next_id
                )
            else:
                variable_webs = identify_variable_webs(
                    graph, sets, variable, options.web_options,
                    static_modules, next_id,
                )
            web_id_spans[variable] = (start, next_id[0] - start)
            webs.extend(variable_webs)
        if tracer.enabled:
            # Emitted after construction (not inside the web builder) so
            # a supplier-replayed run narrates identically to a fresh one.
            for web in webs:
                if web.discarded_reason is None:
                    tracer.event(
                        "web-formed",
                        web_id=web.web_id,
                        variable=web.variable,
                        nodes=web.nodes,
                        entry_nodes=web.entry_nodes(graph),
                        from_split=web.from_split,
                    )
                else:
                    tracer.event(
                        "web-screened",
                        web_id=web.web_id,
                        variable=web.variable,
                        nodes=web.nodes,
                        reason=web.discarded_reason,
                    )
    if trace is not None:
        trace.reference_sets = sets
        trace.webs = webs
        trace.web_id_spans = web_id_spans
        # Copies taken *now*: coloring later mutates these same Web
        # objects (register, priority, discard reason), and replay must
        # reproduce the construction-time state.
        trace.web_snapshots = [
            (web.variable, web.web_id, frozenset(web.nodes),
             web.from_split, web.discarded_reason)
            for web in webs
        ]
    reason_counts: dict = defaultdict(int)
    for w in webs:
        reason_counts[w.discarded_reason] += 1
    database.statistics.total_webs = len(webs)
    database.statistics.webs_discarded_sparse = reason_counts["sparse"]
    database.statistics.webs_discarded_single_low = reason_counts[
        "single-node-low-frequency"
    ]
    database.statistics.webs_discarded_static_cross_module = reason_counts[
        "static-cross-module-entry"
    ]
    database.statistics.webs_considered = reason_counts[None]

    with tracer.span("coloring", mode=options.coloring):
        interference = WebInterferenceGraph(webs)
        if options.coloring == "greedy":
            color_webs_greedy(webs, interference, graph)
        elif options.coloring == "priority":
            color_webs_priority(
                webs, interference, graph, options.num_web_registers
            )
        else:
            raise ValueError(f"unknown coloring mode {options.coloring!r}")
    database.statistics.webs_colored = sum(
        1 for w in webs if w.register is not None
    )

    if tracer.enabled:
        webs_by_variable: dict = defaultdict(list)
        for web in webs:
            webs_by_variable[web.variable].append(web)
        for variable in sorted(eligible):
            variable_webs = webs_by_variable.get(variable, [])
            registers = sorted(
                {w.register for w in variable_webs
                 if w.register is not None}
            )
            if registers:
                decision, reasons = "promoted", []
            elif not variable_webs:
                decision, reasons = "rejected", ["unreferenced"]
            else:
                decision = "rejected"
                reasons = sorted(
                    {w.discarded_reason or "lost-coloring"
                     for w in variable_webs}
                )
            tracer.event(
                "global-decision",
                name=variable,
                decision=decision,
                mode="webs",
                reasons=reasons,
                registers=registers,
                webs=sorted(w.web_id for w in variable_webs),
            )

    for web in webs:
        database.webs.append(
            WebRecord(
                web_id=web.web_id,
                variable=web.variable,
                nodes=frozenset(web.nodes),
                entry_nodes=frozenset(web.entry_nodes(graph)),
                register=web.register,
                interferes_with=interference.neighbors_frozen(web)
                if web.is_live
                else frozenset(),
                priority=web.priority,
                discarded_reason=web.discarded_reason,
            )
        )
        if web.register is None:
            continue
        needs_store = _web_needs_store(web, graph)
        entries = web.entry_nodes(graph)
        if web.from_split:
            from repro.analyzer.webs import wrap_targets_for

            for name in web.nodes:
                promoted_per_proc[name].append(
                    PromotedGlobal(
                        name=web.variable,
                        register=web.register,
                        is_entry=name in entries,
                        needs_store=needs_store,
                        wrap_callees=tuple(
                            sorted(wrap_targets_for(graph, sets, web, name))
                        ),
                    )
                )
                web_reserved[name].add(web.register)
        else:
            # PromotedGlobal is frozen, so the (at most) two distinct
            # records of a non-split web are shared across its members.
            entry_record = PromotedGlobal(
                name=web.variable, register=web.register,
                is_entry=True, needs_store=needs_store,
            )
            inner_record = PromotedGlobal(
                name=web.variable, register=web.register,
                is_entry=False, needs_store=needs_store,
            )
            register = web.register
            for name in web.nodes:
                promoted_per_proc[name].append(
                    entry_record if name in entries else inner_record
                )
                web_reserved[name].add(register)


def _run_blanket_promotion(
    graph, summaries, eligible, options, database,
    promoted_per_proc, web_reserved,
) -> None:
    """The [Wall 86]-style comparison: one register per hot global over
    the whole program, loaded at the start nodes."""
    sets = compute_reference_sets(graph, eligible)
    webs = identify_webs(
        graph, sets, eligible, options.web_options,
        _static_modules(summaries),
    )
    database.statistics.total_webs = len(webs)
    for web in webs:
        web.priority = compute_web_priority(web, graph)
    selections = select_blanket_globals(webs, graph, options.blanket_count)
    tracer = current_tracer()
    if tracer.enabled:
        selected = {s.variable: s.register for s in selections}
        for variable in sorted(eligible):
            register = selected.get(variable)
            tracer.event(
                "global-decision",
                name=variable,
                decision="promoted" if register is not None else "rejected",
                mode="blanket",
                reasons=(
                    [] if register is not None
                    else ["blanket-not-selected"]
                ),
                registers=[register] if register is not None else [],
                webs=sorted(
                    w.web_id for w in webs if w.variable == variable
                ),
            )
    start_nodes = set(graph.start_nodes())
    all_nodes = set(graph.nodes)
    for selection in selections:
        needs_store = any(
            graph.nodes[name].summary.global_stores.get(
                selection.variable, 0
            ) > 0
            for name in all_nodes
        )
        for name in all_nodes:
            promoted_per_proc[name].append(
                PromotedGlobal(
                    name=selection.variable,
                    register=selection.register,
                    is_entry=name in start_nodes,
                    needs_store=needs_store,
                )
            )
            web_reserved[name].add(selection.register)
    database.statistics.webs_colored = len(selections)
