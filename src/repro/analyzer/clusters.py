"""Cluster identification for spill code motion (paper section 4.2).

A *cluster* is a call-graph region inside which the standard linkage
convention is suspended so that callee-saves save/restore code can move
from frequently-called members up to the cluster root:

1. the root dominates every member;
2. every predecessor of a non-root member is in the cluster (so the only
   way in is through the root);
3. a node joins only the cluster of its *nearest* dominating root;
4. no recursive call cycle may lie wholly within a cluster (a recursive
   procedure relies on the convention to protect its registers across the
   recursive call), though clusters may well sit inside larger cycles.

Root selection uses the paper's heuristic: a node is a candidate root
when its dominated successors are called more often than the node itself
is called (moving their spill code up then saves work).  Calls are
compared using normalized heuristic counts, or profiled counts when
available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.dominators import DominatorTree
from repro.callgraph.graph import CallGraph
from repro.obs.tracer import current_tracer


@dataclass
class Cluster:
    """One cluster: the root and its non-root members.

    Members may themselves be roots of nested clusters (they are then
    leaves of this cluster — spill code chains upward through them).
    """

    root: str
    members: set = field(default_factory=set)

    @property
    def all_nodes(self) -> set:
        return {self.root} | self.members

    def __repr__(self) -> str:
        return f"<cluster {self.root}: {sorted(self.members)}>"


@dataclass
class ClusterOptions:
    """Root-selection heuristic knobs."""

    # A node becomes a root when (calls to dominated successors) exceeds
    # (calls to the node itself) by this factor.
    root_benefit_ratio: float = 1.0
    # Start nodes (main) are treated as called once.
    start_node_incoming: float = 1.0


def identify_clusters(
    graph: CallGraph,
    dominators: Optional[DominatorTree] = None,
    profile=None,
    options: Optional[ClusterOptions] = None,
) -> list[Cluster]:
    """Find all clusters; returns them in discovery (top-down) order."""
    options = options or ClusterOptions()
    if dominators is None:
        dominators = graph.dominator_tree()
    reachable = dominators.reachable_nodes
    self_recursive = {
        name for name in graph.nodes if name in graph.nodes[name].successors
    }

    roots = _select_roots(graph, dominators, profile, options, reachable)
    nearest_root = _nearest_dominating_roots(graph, dominators, roots)

    clusters: list[Cluster] = []
    for root in sorted(roots):
        cluster = _grow_cluster(
            graph, root, nearest_root, self_recursive
        )
        if cluster.members:
            clusters.append(cluster)
    return clusters


def _incoming_weight(graph: CallGraph, name: str, profile,
                     options: ClusterOptions) -> float:
    node = graph.nodes[name]
    if not node.predecessors:
        return options.start_node_incoming
    total = 0.0
    for predecessor in node.predecessors:
        total += graph.edge_weight(predecessor, name, profile)
    return max(total, options.start_node_incoming)


def _select_roots(
    graph: CallGraph,
    dominators: DominatorTree,
    profile,
    options: ClusterOptions,
    reachable: set,
) -> set:
    roots: set = set()
    self_recursive = {
        name for name in graph.nodes if name in graph.nodes[name].successors
    }
    from repro.callgraph.graph import EXTERNAL_CALLER

    tracer = current_tracer()
    for name in sorted(graph.nodes):
        if name not in reachable:
            continue
        if name == EXTERNAL_CALLER:
            # The partial-graph pseudo caller is not a real procedure;
            # it cannot execute spill code.
            continue
        if name in self_recursive:
            # A self-recursive root would place a recursive cycle inside
            # its own cluster (section 4.2.2's correctness rule).
            if tracer.enabled:
                tracer.event(
                    "cluster-root-candidate", name=name,
                    accepted=False, reason="self-recursive",
                )
            continue
        dominated_successors = [
            s
            for s in graph.nodes[name].successors
            if s != name and dominators.immediate_dominator(s) == name
        ]
        if not dominated_successors:
            continue
        incoming = _incoming_weight(graph, name, profile, options)
        outgoing = sum(
            graph.edge_weight(name, s, profile)
            for s in dominated_successors
        )
        accepted = outgoing > incoming * options.root_benefit_ratio
        if accepted:
            roots.add(name)
        if tracer.enabled:
            tracer.event(
                "cluster-root-candidate",
                name=name,
                accepted=accepted,
                incoming=incoming,
                outgoing=outgoing,
                ratio=options.root_benefit_ratio,
                dominated_successors=sorted(dominated_successors),
                reason=(
                    None if accepted
                    else "outgoing-below-incoming-threshold"
                ),
            )
    return roots


def _nearest_dominating_roots(
    graph: CallGraph, dominators: DominatorTree, roots: set
) -> dict:
    """For each node, the nearest strict dominator that is a root."""
    nearest: dict = {}
    for name in graph.nodes:
        current = dominators.immediate_dominator(name)
        while current is not None:
            if current in roots:
                nearest[name] = current
                break
            current = dominators.immediate_dominator(current)
    return nearest


def _grow_cluster(
    graph: CallGraph,
    root: str,
    nearest_root: dict,
    self_recursive: set,
) -> Cluster:
    """Fixpoint growth: add candidates whose predecessors are all in the
    cluster, rejecting additions that would close a call cycle inside it."""
    cluster_nodes: set = {root}
    changed = True
    while changed:
        changed = False
        frontier: set = set()
        for name in cluster_nodes:
            frontier.update(graph.nodes[name].successors)
        for candidate in sorted(frontier - cluster_nodes):
            if nearest_root.get(candidate) != root:
                continue
            if candidate in self_recursive:
                continue
            predecessors = set(graph.nodes[candidate].predecessors)
            if not predecessors or not predecessors <= cluster_nodes:
                continue
            if _would_close_cycle(graph, cluster_nodes, candidate):
                continue
            cluster_nodes.add(candidate)
            changed = True
    # Frozen members let every downstream census (ClusterRecord, the
    # incremental dependency graph) share the set instead of copying it.
    return Cluster(root, frozenset(cluster_nodes - {root}))


def _would_close_cycle(
    graph: CallGraph, cluster_nodes: set, candidate: str
) -> bool:
    """True if adding ``candidate`` creates a cycle in the induced call
    subgraph (i.e. some in-cluster successor path leads back to it)."""
    target = candidate
    worklist = [
        s for s in graph.nodes[candidate].successors if s in cluster_nodes
    ]
    visited: set = set()
    while worklist:
        name = worklist.pop()
        if name == target:
            return True
        if name in visited:
            continue
        visited.add(name)
        for successor in graph.nodes[name].successors:
            if successor == target:
                return True
            if successor in cluster_nodes and successor not in visited:
                worklist.append(successor)
    return False


def check_cluster_invariants(
    graph: CallGraph, dominators: DominatorTree, clusters: list
) -> None:
    """Assert the section 4.2.1 cluster properties.  Used by tests."""
    membership: dict = {}
    for cluster in clusters:
        for member in cluster.members:
            if member in membership:
                raise AssertionError(
                    f"{member} is a member of two clusters "
                    f"({membership[member]} and {cluster.root})"
                )
            membership[member] = cluster.root
    for cluster in clusters:
        for member in cluster.members:
            if not dominators.strictly_dominates(cluster.root, member):
                raise AssertionError(
                    f"cluster root {cluster.root} does not dominate "
                    f"member {member}"
                )
            predecessors = set(graph.nodes[member].predecessors)
            if not predecessors <= cluster.all_nodes:
                raise AssertionError(
                    f"member {member} of cluster {cluster.root} has "
                    f"predecessors outside the cluster: "
                    f"{predecessors - cluster.all_nodes}"
                )
        _assert_acyclic(graph, cluster.all_nodes, cluster.root)


def _assert_acyclic(graph: CallGraph, nodes: set, root: str) -> None:
    state: dict = {}

    def dfs(name: str) -> None:
        state[name] = "visiting"
        for successor in graph.nodes[name].successors:
            if successor not in nodes:
                continue
            if state.get(successor) == "visiting":
                raise AssertionError(
                    f"cluster {root} contains a recursive cycle through "
                    f"{successor}"
                )
            if successor not in state:
                dfs(successor)
        state[name] = "done"

    for name in sorted(nodes):
        if name not in state:
            dfs(name)
