"""Caller-saves register preallocation (paper section 7.6.2, last
paragraph; the technique of [Chow 88]).

The analyzer preallocates caller-saves registers bottom-up over the call
graph: each procedure is assigned a *prefix* of a fixed caller-saves
selection order sized by its estimated demand, and the total caller-saves
usage of the call tree rooted at each procedure is propagated to its
callers.  The compiler second phase can then keep values live in
caller-saves registers across calls whose callee subtree does not use
them — the classic win that pure convention-based allocation forfeits.

Limitations (acknowledged by the paper): procedures on recursive call
chains and targets of indirect calls cannot be exploited; their subtree
usage is the full caller-saves set.  Likewise for exported procedures of
partial call graphs and any call to a procedure outside the analyzed
graph.

The backend cooperates by allocating caller-saves registers strictly in
the same selection order and only from the assigned prefix (plus the
argument registers it needs for outgoing calls), so the propagated
subtree sets are sound upper bounds on what a call can clobber.
"""

from __future__ import annotations

from repro.callgraph.graph import EXTERNAL_CALLER, CallGraph
from repro.target.registers import (
    ARG_REGISTERS,
    CALLER_SAVES,
    MAX_REG_ARGS,
    RV,
)

# Fixed selection order: non-argument caller-saves first (r8..r15), then
# the argument registers — so low-demand procedures leave the argument
# registers least disturbed.
SELECTION_ORDER = tuple(
    sorted(CALLER_SAVES - set(ARG_REGISTERS) - {RV})
    + list(ARG_REGISTERS)
)

# The first-phase demand estimate is computed on the IR; instruction
# selection introduces additional short-lived temporaries (address
# computations, materialized constants, argument shuttling), so the
# allocation prefix is padded to avoid starving the backend into
# needless callee-saves traffic.
PREFIX_MARGIN = 4


def allocation_prefix(count: int) -> tuple:
    """The first ``count`` caller-saves registers in selection order."""
    return SELECTION_ORDER[: max(0, min(count, len(SELECTION_ORDER)))]


def arg_registers_for(arg_count: int) -> set:
    """Argument registers written when making a call with ``arg_count``
    arguments."""
    return set(ARG_REGISTERS[: min(arg_count, MAX_REG_ARGS)])


def compute_subtree_caller_usage(
    graph: CallGraph,
) -> tuple:
    """Compute per-procedure caller-saves facts.

    Returns ``(own_prefix, subtree_used)`` where ``own_prefix[P]`` is the
    ordered register prefix procedure P may allocate from, and
    ``subtree_used[P]`` is the set of standard caller-saves registers the
    call tree rooted at P may clobber (RV always included — every call
    produces a result or scratches it).
    """
    full = frozenset(CALLER_SAVES)
    own_prefix: dict[str, tuple] = {}
    subtree_used: dict[str, frozenset] = {}

    # Procedures whose subtree cannot be bounded: recursive components,
    # indirect-call targets (callable from anywhere), and the partial
    # graph pseudo caller.
    unbounded: set = set(graph.recursive_nodes())
    unbounded |= set(graph.indirect_targets)
    if EXTERNAL_CALLER in graph.nodes:
        unbounded.add(EXTERNAL_CALLER)

    for name, node in graph.nodes.items():
        need = getattr(node.summary, "caller_saves_needed", 0)
        own_prefix[name] = allocation_prefix(need + PREFIX_MARGIN)

    # Bottom-up over the SCC condensation (components come out of
    # Tarjan's in reverse topological order: callees before callers).
    components = graph.strongly_connected_components()
    for component in components:
        is_recursive = len(component) > 1 or any(
            name in graph.nodes[name].successors for name in component
        )
        for name in component:
            node = graph.nodes[name]
            if name in unbounded or is_recursive:
                subtree_used[name] = full
                continue
            used = {RV}
            used.update(own_prefix[name])
            used |= arg_registers_for(
                getattr(node.summary, "max_call_args", 0)
            )
            # Incoming parameter registers: the procedure may keep its
            # parameters (or other values) allocated right in them, and
            # a caller whose argument move was coalesced could otherwise
            # believe the register survives the call.
            used |= arg_registers_for(
                getattr(node.summary, "num_params", MAX_REG_ARGS)
            )
            if node.summary.makes_indirect_calls:
                subtree_used[name] = full
                continue
            bounded = True
            for callee in node.summary.calls:
                if callee not in graph.nodes:
                    bounded = False  # unknown callee: assume the worst
                    break
                used |= subtree_used.get(callee, full)
            subtree_used[name] = frozenset(used) if bounded else full
    return own_prefix, subtree_used
