"""Web identification for global variable promotion (paper section 4.1).

A *web* for a global variable is a minimal subgraph of the call graph such
that the variable is referenced in no ancestor and no descendant of the
subgraph.  Webs let one callee-saves register serve different globals in
disjoint call-graph regions.

The construction follows Figure 2 of the paper:

1. candidate web entry nodes have the variable in ``L_REF`` but not
   ``P_REF``;
2. the web expands downward through successors that have the variable in
   ``L_REF`` or ``C_REF``;
3. for correctness, any node with both internal and external
   predecessors pulls its external predecessors into the web (repeat to
   fixpoint) — otherwise an entry node invoked from inside the web would
   reload a stale value, or an internal node could be invoked while the
   dedicated register is uninitialized;
4. overlapping webs for the same variable are merged.

Nodes on recursive call chains can be missed by step 1 (the variable is
in ``P_REF`` all around the cycle); the paper's fix — adopted here — is
to seed a separate web with each such cycle and enlarge it for
correctness.

After construction, webs are screened the way the paper's prototype
screens them (section 6.2): webs that are too *sparse* (low ratio of
referencing nodes to total nodes) and single-node webs with infrequent
access are discarded, as are webs for ``static`` globals whose entry
nodes fall outside the defining module (section 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.packed import (
    iter_bits,
    packed_variable_masks,
    resolve_dataflow,
)
from repro.callgraph.dataflow import ReferenceSets
from repro.callgraph.graph import CallGraph


@dataclass
class Web:
    """One live range of a global over the call graph.

    ``from_split`` marks webs produced by sparse-web splitting (section
    7.6.1): such webs may have referencing ancestors/descendants outside
    themselves, so their members must save/restore the promoted register
    around calls that can reach other webs of the same variable.
    """

    web_id: int
    variable: str
    nodes: set = field(default_factory=set)
    discarded_reason: Optional[str] = None
    register: Optional[int] = None
    priority: float = 0.0
    from_split: bool = False

    def entry_nodes(self, graph: CallGraph) -> frozenset:
        """Nodes of the web with no predecessor inside the web."""
        # Webs built by the packed kernel carry their node bitmask; one
        # mask test per member replaces a predecessor-set probe loop.
        # The guards reject the mask when the web was produced against a
        # different graph or its nodes were rewritten (sparse splitting
        # builds fresh webs, so this only defends against future code).
        memo = getattr(self, "_entries_memo", None)
        if memo is not None and memo[0] == len(self.nodes):
            return memo[1]
        cached = getattr(self, "_packed_nodes", None)
        if (
            cached is not None
            and cached[2] == len(self.nodes)
            and getattr(graph, "_packed_graph", None) is cached[0]
        ):
            packed, mask, _count = cached
            entries_mask = getattr(self, "_entries_mask", None)
            if entries_mask is None:
                pred = packed.pred
                entries_mask = 0
                remaining = mask
                while remaining:
                    i = (remaining & -remaining).bit_length() - 1
                    remaining &= remaining - 1
                    if not pred[i] & mask:
                        entries_mask |= 1 << i
            entries = frozenset(packed.index.set_of(entries_mask))
        else:
            entries = frozenset(
                name
                for name in self.nodes
                if not any(
                    p in self.nodes for p in graph.nodes[name].predecessors
                )
            )
        self._entries_memo = (len(self.nodes), entries)
        return entries

    @property
    def is_live(self) -> bool:
        return self.discarded_reason is None


@dataclass
class WebOptions:
    """Screening thresholds (paper section 6.2) and the optional
    sparse-web splitting extension (section 7.6.1)."""

    min_lref_ratio: float = 0.25  # discard sparser webs
    min_single_node_refs: float = 2.0  # weighted refs for 1-node webs
    discard_cross_module_static_entries: bool = True
    # Section 7.6.1: instead of discarding a sparse web, try breaking it
    # into tight sub-webs that save/restore around external calls.
    split_sparse_webs: bool = False
    split_lref_ratio: float = 0.5  # webs sparser than this are split


def identify_webs(
    graph: CallGraph,
    sets: ReferenceSets,
    eligible: set,
    options: Optional[WebOptions] = None,
    static_modules: Optional[dict] = None,
) -> list[Web]:
    """Compute all webs for all eligible globals.

    Args:
        graph: The program call graph.
        sets: L_REF/P_REF/C_REF reference sets.
        eligible: Eligible global names.
        options: Screening thresholds.
        static_modules: Qualified name -> defining module, for statics
            (used by the cross-module entry discard rule).
    """
    options = options or WebOptions()
    webs: list[Web] = []
    next_id = [1]

    for variable in sorted(eligible):
        webs.extend(
            identify_variable_webs(
                graph, sets, variable, options, static_modules, next_id
            )
        )
    return webs


def identify_variable_webs(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    options: Optional[WebOptions] = None,
    static_modules: Optional[dict] = None,
    next_id: Optional[list] = None,
) -> list[Web]:
    """Compute the (screened) webs of one variable.

    Construction for different variables is independent except for the
    shared ``next_id`` counter, so callers that memoize per-variable
    results (the incremental analyzer) get output identical to
    :func:`identify_webs` as long as they replay the same number of
    consumed ids per variable.
    """
    options = options or WebOptions()
    if next_id is None:
        next_id = [1]
    if resolve_dataflow() == "packed":
        return _identify_variable_webs_packed(
            graph, sets, variable, options, static_modules, next_id
        )
    variable_webs: list[Web] = []
    for name in sorted(graph.nodes):
        if variable not in sets.l_ref[name]:
            continue
        if variable in sets.p_ref[name]:
            continue
        if any(name in web.nodes for web in variable_webs):
            continue
        web = _grow_web(graph, sets, variable, {name}, next_id)
        variable_webs = _merge_overlapping(
            graph, sets, variable, variable_webs, web, next_id
        )
    _add_recursive_cycle_webs(
        graph, sets, variable, variable_webs, next_id
    )
    if options.split_sparse_webs:
        variable_webs = _split_sparse_webs(
            graph, sets, variable, variable_webs, options, next_id
        )
    _screen_webs(graph, sets, variable_webs, options, static_modules or {})
    return variable_webs


def _identify_variable_webs_packed(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    options: WebOptions,
    static_modules: Optional[dict],
    next_id: list,
) -> list[Web]:
    """Bitmask mirror of the reference construction.

    Webs are node bitmasks until screening; every growth/merge step
    follows the reference control flow call for call, so the id counter
    advances identically and the resulting web list (ids, member sets,
    order) is indistinguishable from the reference kernel's — the
    property the incremental analyzer's per-variable replay depends on.
    Node bit order is ``sorted(graph.nodes)``, so ascending-bit sweeps
    reproduce the reference ``sorted(...)`` traversals.
    """
    packed, lref, pref, cref = packed_variable_masks(graph, sets)
    lref_v = lref.get(variable, 0)
    expand_v = lref_v | cref.get(variable, 0)
    webs: list = []  # (web_id, node mask, entry mask) triples
    covered = 0
    for i in iter_bits(lref_v & ~pref.get(variable, 0)):
        if covered >> i & 1:
            continue
        grown = _grow_web_packed(packed, expand_v, 1 << i, next_id)
        webs = _merge_overlapping_packed(packed, expand_v, webs, grown,
                                         next_id)
        covered = 0
        for entry in webs:
            covered |= entry[1]
    uncovered = lref_v & ~covered
    if uncovered:
        scc_masks = packed.scc_mask_of(graph)
        seen = 0
        for i in iter_bits(uncovered):
            if seen >> i & 1 or covered >> i & 1:
                continue
            seeds = scc_masks[i]
            seen |= seeds
            grown = _grow_web_packed(packed, expand_v, seeds, next_id)
            webs = _merge_overlapping_packed(packed, expand_v, webs,
                                             grown, next_id)
            covered = 0
            for entry in webs:
                covered |= entry[1]
    set_of = packed.index.set_of
    variable_webs = []
    for web_id, mask, entries_mask in webs:
        web = Web(web_id, variable, nodes=set_of(mask))
        web._packed_nodes = (packed, mask, len(web.nodes))
        web._entries_mask = entries_mask
        variable_webs.append(web)
    if options.split_sparse_webs:
        variable_webs = _split_sparse_webs(
            graph, sets, variable, variable_webs, options, next_id
        )
    _screen_webs(graph, sets, variable_webs, options, static_modules or {})
    return variable_webs


def _grow_web_packed(
    packed, expand_v: int, seeds: int, next_id: list
) -> tuple:
    """Figure 2 on bitmasks: downward closure through ``expand_v``
    members, then pull in external predecessors of nodes that also have
    internal ones, to fixpoint.  Consumes exactly one web id.

    Returns ``(web_id, member_mask, entry_mask)`` — the entry nodes
    (members with no internal predecessor) fall out of the correctness
    scan for free.  Bit iteration shifts each mask down to its lowest
    set bit first: webs cluster inside one module's contiguous bit
    range, and per-bit extraction on a big int costs O(total width)."""
    web_id = next_id[0]
    next_id[0] += 1
    succ = packed.succ
    pred = packed.pred
    mask = 0
    pending = seeds
    while True:
        frontier = pending & ~mask
        mask |= frontier
        while frontier:
            reached = 0
            base = ((frontier & -frontier).bit_length() - 1) & ~63
            frontier >>= base
            while frontier:
                reached |= succ[
                    base + (frontier & -frontier).bit_length() - 1
                ]
                frontier &= frontier - 1
            frontier = reached & expand_v & ~mask
            mask |= frontier
        problematic = 0
        entries = 0
        base = ((mask & -mask).bit_length() - 1) & ~63
        members = mask >> base
        while members:
            i = base + (members & -members).bit_length() - 1
            members &= members - 1
            predecessors = pred[i]
            if not predecessors & mask:
                entries |= 1 << i
            else:
                external = predecessors & ~mask
                if external:
                    problematic |= external
        if not problematic:
            return (web_id, mask, entries)
        pending = problematic


def _merge_overlapping_packed(
    packed, expand_v: int, existing: list, new_web: tuple, next_id: list
) -> list:
    """Mask mirror of :func:`_merge_overlapping` (same recursion, same
    id consumption, same result-list order)."""
    new_mask = new_web[1]
    overlapping = [w for w in existing if w[1] & new_mask]
    remaining = [w for w in existing if not (w[1] & new_mask)]
    if not overlapping:
        return existing + [new_web]
    seeds = new_mask
    for entry in overlapping:
        seeds |= entry[1]
    merged = _grow_web_packed(packed, expand_v, seeds, next_id)
    return _merge_overlapping_packed(
        packed, expand_v, remaining, merged, next_id
    )


def _grow_web(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    seeds: set,
    next_id: list,
) -> Web:
    """Figure 2: expand from ``seeds`` and close over predecessors."""
    web = Web(next_id[0], variable)
    next_id[0] += 1
    pending = set(seeds)
    while True:
        for seed in sorted(pending):
            _expand_web(graph, sets, web, seed, variable)
        # Nodes with both internal and external predecessors violate the
        # entry-node conditions; pull the external predecessors in.
        problematic_preds: set = set()
        for name in web.nodes:
            predecessors = set(graph.nodes[name].predecessors)
            internal = predecessors & web.nodes
            external = predecessors - web.nodes
            if internal and external:
                problematic_preds |= external
        if not problematic_preds:
            return web
        pending = problematic_preds


def _expand_web(
    graph: CallGraph, sets: ReferenceSets, web: Web, start: str, variable: str
) -> None:
    """Figure 2's Expand_Web: downward closure over C_REF/L_REF."""
    worklist = [start]
    while worklist:
        name = worklist.pop()
        if name in web.nodes:
            continue
        web.nodes.add(name)
        for successor in graph.successors(name):
            if successor in web.nodes:
                continue
            if (
                variable in sets.c_ref[successor]
                or variable in sets.l_ref[successor]
            ):
                worklist.append(successor)


def _merge_overlapping(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    existing: list,
    new_web: Web,
    next_id: list,
) -> list:
    """Merge ``new_web`` with any existing web it overlaps, re-closing
    the result (the union of two closed webs may violate the entry-node
    conditions, so the closure is re-run)."""
    overlapping = [w for w in existing if w.nodes & new_web.nodes]
    remaining = [w for w in existing if not (w.nodes & new_web.nodes)]
    if not overlapping:
        return existing + [new_web]
    seeds = set(new_web.nodes)
    for web in overlapping:
        seeds |= web.nodes
    merged = _grow_web(graph, sets, variable, seeds, next_id)
    # The merged web may now overlap webs it previously did not.
    return _merge_overlapping(
        graph, sets, variable, remaining, merged, next_id
    )


def _add_recursive_cycle_webs(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    variable_webs: list,
    next_id: list,
) -> None:
    """Cover referencing nodes missed because they sit in recursive
    cycles whose entry paths never reference the variable."""
    covered: set = set()
    for web in variable_webs:
        covered |= web.nodes
    uncovered = [
        name
        for name in sorted(graph.nodes)
        if variable in sets.l_ref[name] and name not in covered
    ]
    if not uncovered:
        return
    component_of: dict[str, list] = {}
    for component in graph.strongly_connected_components():
        for name in component:
            component_of[name] = component
    seen: set = set()
    for name in uncovered:
        if name in seen:
            continue
        if any(name in web.nodes for web in variable_webs):
            continue
        seeds = set(component_of[name])
        seen |= seeds
        web = _grow_web(graph, sets, variable, seeds, next_id)
        variable_webs[:] = _merge_overlapping(
            graph, sets, variable, variable_webs, web, next_id
        )


def _split_sparse_webs(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    variable_webs: list,
    options: WebOptions,
    next_id: list,
) -> list:
    """Section 7.6.1: break sparse webs into tight sub-webs.

    A web whose referencing nodes are isolated at the ends of long call
    chains dedicates a register over many procedures that never touch
    the variable.  Splitting re-grows webs that expand only through
    *referencing* successors; members of the resulting sub-webs must
    save/restore the register around calls that can reach the variable
    elsewhere (the compiler second phase inserts that code from the
    ``wrap_callees`` directives).

    A web is left intact when splitting yields a single piece, when any
    member makes indirect calls (an indirect call could land both inside
    and outside the sub-web, and no single convention handles both), or
    when the pieces re-merge during the correctness closure.
    """
    result = []
    for web in variable_webs:
        referencing = {
            name for name in web.nodes if variable in sets.l_ref[name]
        }
        ratio = len(referencing) / max(1, len(web.nodes))
        if ratio >= options.split_lref_ratio:
            result.append(web)
            continue
        if any(
            graph.nodes[name].summary.makes_indirect_calls
            for name in web.nodes
        ):
            result.append(web)
            continue
        pieces: list = []
        for seed in sorted(referencing):
            if any(seed in piece.nodes for piece in pieces):
                continue
            piece = _grow_tight_web(graph, sets, variable, seed, next_id)
            pieces = _merge_overlapping_tight(pieces, piece)
        if len(pieces) < 2:
            result.append(web)
            continue
        for piece in pieces:
            piece.from_split = True
            result.append(piece)
    return result


def _grow_tight_web(
    graph: CallGraph,
    sets: ReferenceSets,
    variable: str,
    seed: str,
    next_id: list,
) -> Web:
    """Grow a web that expands only through referencing successors, then
    close it over predecessors as usual."""
    web = Web(next_id[0], variable)
    next_id[0] += 1
    pending = {seed}
    while True:
        worklist = sorted(pending)
        pending = set()
        while worklist:
            name = worklist.pop()
            if name in web.nodes:
                continue
            web.nodes.add(name)
            for successor in graph.successors(name):
                if (
                    successor not in web.nodes
                    and variable in sets.l_ref[successor]
                ):
                    worklist.append(successor)
        # Correctness closure: internal nodes may not have external
        # predecessors alongside internal ones.
        problematic: set = set()
        for name in web.nodes:
            predecessors = set(graph.nodes[name].predecessors)
            internal = predecessors & web.nodes
            external = predecessors - web.nodes
            if internal and external:
                problematic |= external
        if not problematic:
            return web
        pending = problematic


def _merge_overlapping_tight(pieces: list, new_piece: Web) -> list:
    """Union-merge tight pieces that overlap (closure may join them)."""
    merged_nodes = set(new_piece.nodes)
    remaining = []
    for piece in pieces:
        if piece.nodes & merged_nodes:
            merged_nodes |= piece.nodes
        else:
            remaining.append(piece)
    new_piece.nodes = merged_nodes
    return remaining + [new_piece]


def wrap_targets_for(
    graph: CallGraph, sets: ReferenceSets, web: Web, member: str
) -> frozenset:
    """Callees of ``member`` around which a split web must save/restore
    the promoted register: direct callees outside the web from which the
    variable is reachable."""
    variable = web.variable
    return frozenset(
        callee
        for callee in graph.nodes[member].successors
        if callee not in web.nodes
        and (
            variable in sets.l_ref[callee]
            or variable in sets.c_ref[callee]
        )
    )


def _screen_webs(
    graph: CallGraph,
    sets: ReferenceSets,
    webs: list,
    options: WebOptions,
    static_modules: dict,
) -> None:
    from repro.callgraph.graph import EXTERNAL_CALLER

    for web in webs:
        if EXTERNAL_CALLER in web.nodes:
            # Partial call graph (section 7.2): the web's correctness
            # closure absorbed the unknown outside caller, so the web
            # cannot be promoted (no real entry procedure exists there).
            web.discarded_reason = "external-caller"
            continue
        stamp = getattr(web, "_packed_nodes", None)
        if stamp is not None and stamp[2] == len(web.nodes):
            # Packed-constructed web: count referencing members on the
            # bitmask instead of probing L_REF per node.
            packed, mask, _count = stamp
            lref = packed_variable_masks(graph, sets)[1]
            referencing_count = (lref.get(web.variable, 0) & mask).bit_count()
        else:
            referencing_count = sum(
                1 for name in web.nodes
                if web.variable in sets.l_ref[name]
            )
        if not referencing_count:  # pragma: no cover - defensive
            web.discarded_reason = "sparse"
            continue
        if len(web.nodes) == 1:
            name = next(iter(web.nodes))
            node = graph.nodes[name]
            weighted = (
                node.summary.global_refs.get(web.variable, 0) * node.weight
            )
            if weighted < options.min_single_node_refs:
                web.discarded_reason = "single-node-low-frequency"
                continue
        elif referencing_count / len(web.nodes) < options.min_lref_ratio:
            web.discarded_reason = "sparse"
            continue
        if (
            options.discard_cross_module_static_entries
            and web.variable in static_modules
        ):
            defining = static_modules[web.variable]
            entries = web.entry_nodes(graph)
            entry_modules = {
                graph.nodes[name].summary.module for name in entries
            }
            if entry_modules - {defining}:
                web.discarded_reason = "static-cross-module-entry"


def check_web_invariants(graph: CallGraph, sets: ReferenceSets,
                         webs: list) -> None:
    """Assert the section 4.1.2 correctness conditions.  Used by tests.

    * entry nodes have no predecessors inside the web;
    * non-entry nodes have no predecessors outside the web;
    * no ancestor/descendant outside the web references the variable;
    * webs of the same variable are disjoint.
    """
    by_variable: dict[str, list] = {}
    for web in webs:
        by_variable.setdefault(web.variable, []).append(web)
    for variable, group in by_variable.items():
        for i, web in enumerate(group):
            for other in group[i + 1:]:
                if web.nodes & other.nodes:
                    raise AssertionError(
                        f"webs {web.web_id} and {other.web_id} for "
                        f"{variable!r} overlap"
                    )
    for web in webs:
        entries = web.entry_nodes(graph)
        for name in web.nodes:
            predecessors = set(graph.nodes[name].predecessors)
            internal = predecessors & web.nodes
            external = predecessors - web.nodes
            if name in entries:
                if internal:
                    raise AssertionError(
                        f"web {web.web_id}: entry {name} has internal "
                        f"predecessors {internal}"
                    )
            elif external:
                raise AssertionError(
                    f"web {web.web_id}: internal node {name} has external "
                    f"predecessors {external}"
                )
        if web.from_split:
            # Split webs deliberately tolerate referencing ancestors and
            # descendants; save/restore around wrapped calls handles the
            # value transfer (section 7.6.1).
            continue
        for name in graph.nodes:
            if name in web.nodes:
                continue
            if web.variable not in sets.l_ref[name]:
                continue
            # A referencing node outside the web must be neither an
            # ancestor nor a descendant of the web via referencing paths.
            # Sufficient check: it must not be adjacent to the web.
            neighbors = set(graph.nodes[name].predecessors) | set(
                graph.nodes[name].successors
            )
            if neighbors & web.nodes:
                raise AssertionError(
                    f"web {web.web_id} for {web.variable!r}: outside "
                    f"referencing node {name} is adjacent to the web"
                )
