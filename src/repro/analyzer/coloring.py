"""Web coloring: assigning callee-saves registers to webs.

Three strategies, matching the configurations of the paper's Table 4:

* **priority coloring** (configs C/F) — webs are sorted by a priority
  that weighs the dynamic references saved inside the web against the
  load/store traffic added at web entry nodes, then greedily colored out
  of a fixed pool of N callee-saves registers (the paper reserved 6);
* **greedy coloring** (config D) — tries to color as many webs as
  possible *without* reserving any of the callee-saves registers required
  by any individual member procedure: each web may only use registers
  beyond its members' own estimated callee-saves demand, but the pool is
  the full callee-saves file;
* **blanket promotion** (config E) — the [Wall 86] comparison: the N most
  frequently referenced eligible globals each get a register dedicated
  over the *entire* program.

Register numbering: web registers are taken from the top of the
callee-saves file downward, which keeps them maximally out of the way of
the spill-code-motion preallocation (which prefers low-numbered
callee-saves registers first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.webs import Web
from repro.callgraph.graph import CallGraph
from repro.obs.tracer import current_tracer
from repro.target.registers import CALLEE_SAVES

# Cost/benefit weights for the priority heuristic: a promoted reference
# saves the address setup + memory access (2 instructions); each call of
# a web entry node costs an entry load and (usually) an exit store plus
# the save/restore of the dedicated register.
REFERENCE_GAIN = 2.0
ENTRY_CALL_COST = 4.0


def web_register_pool(count: int) -> list:
    """The ``count`` callee-saves registers reserved for web coloring."""
    return sorted(CALLEE_SAVES, reverse=True)[:count]


def web_priority_parts(web: Web, graph: CallGraph) -> tuple:
    """The ``(benefit, entry_cost)`` pair behind a web's priority.

    Both accumulations use :func:`math.fsum`, whose result is independent
    of summation order: ``web.nodes`` is a set, and the incremental
    analyzer replays webs whose sets were rebuilt in a different
    insertion order than a from-scratch construction — the priority (and
    everything downstream of its ordering) must not depend on that.
    """
    # (global_refs, clamped weight) per node, memoized on the graph:
    # priorities touch every member of every live web, and the repeated
    # ``node.summary.global_refs`` attribute chain dominates the loop.
    # ``normalize_weights`` drops the memo, so it never sees stale
    # weights.
    info = getattr(graph, "_priority_info", None)
    if info is None:
        info = graph._priority_info = {
            name: (node.summary.global_refs, max(node.weight, 1.0))
            for name, node in graph.nodes.items()
        }
    variable = web.variable
    terms = []
    for name in web.nodes:
        entry = info[name]
        refs = entry[0].get(variable, 0)
        if refs:
            terms.append(REFERENCE_GAIN * refs * entry[1])
    benefit = math.fsum(terms)
    entry_cost = math.fsum(
        [ENTRY_CALL_COST * info[name][1]
         for name in web.entry_nodes(graph)]
    )
    return benefit, entry_cost


def compute_web_priority(web: Web, graph: CallGraph) -> float:
    """Estimated dynamic benefit of promoting ``web`` (section 4.1.3)."""
    benefit, entry_cost = web_priority_parts(web, graph)
    return benefit - entry_cost


def _coloring_event(tracer, web, graph, colored, interference,
                    candidates) -> None:
    """Narrate one web's coloring outcome into the trace."""
    benefit, entry_cost = web_priority_parts(web, graph)
    base = {
        "web_id": web.web_id,
        "variable": web.variable,
        "priority": web.priority,
        "benefit": benefit,
        "entry_cost": entry_cost,
    }
    if web.discarded_reason == "non-positive-priority":
        tracer.event("web-rejected", reason=web.discarded_reason, **base)
    elif web.register is not None:
        tracer.event("web-colored", register=web.register, **base)
    else:
        winners = [
            {
                "web_id": colored[n].web_id,
                "variable": colored[n].variable,
                "register": colored[n].register,
            }
            for n in sorted(interference.neighbors(web))
            if n in colored and colored[n].register in candidates
        ]
        tracer.event(
            "web-uncolored",
            reason="lost-coloring",
            winners=winners,
            candidates=sorted(candidates),
            **base,
        )


def color_webs_priority(
    webs: list,
    interference: WebInterferenceGraph,
    graph: CallGraph,
    num_registers: int = 6,
) -> None:
    """Priority-based coloring out of a fixed register pool.

    Mutates ``web.register`` (None stays for uncolored webs) and
    ``web.priority``.
    """
    pool = web_register_pool(num_registers)
    tracer = current_tracer()
    live = [web for web in webs if web.is_live]
    for web in live:
        web.priority = compute_web_priority(web, graph)
    colored: dict[int, Web] = {}
    for web in sorted(live, key=lambda w: (-w.priority, w.web_id)):
        if web.priority <= 0:
            web.discarded_reason = "non-positive-priority"
        else:
            taken = {
                colored[n].register
                for n in interference.neighbor_ids(web)
                if n in colored
            }
            register = next((r for r in pool if r not in taken), None)
            if register is not None:
                web.register = register
                colored[web.web_id] = web
        if tracer.enabled:
            _coloring_event(
                tracer, web, graph, colored, interference, set(pool)
            )


def color_webs_greedy(
    webs: list,
    interference: WebInterferenceGraph,
    graph: CallGraph,
) -> None:
    """Greedy coloring constrained by member procedures' register needs.

    A web may only use callee-saves registers beyond the maximum
    ``callee_saves_needed`` estimate over its member procedures — i.e. it
    never reserves a register some member wants for its own locals.  The
    pool is the entire callee-saves file, so *more* webs usually get
    colored, but webs whose members are register-hungry (often the most
    important ones) may fail — exactly the behaviour the paper reports
    for config D.
    """
    callee_sorted = sorted(CALLEE_SAVES, reverse=True)
    tracer = current_tracer()
    live = [web for web in webs if web.is_live]
    for web in live:
        web.priority = compute_web_priority(web, graph)
    colored: dict[int, Web] = {}
    for web in sorted(live, key=lambda w: (-w.priority, w.web_id)):
        allowed: list = []
        if web.priority <= 0:
            web.discarded_reason = "non-positive-priority"
        else:
            max_need = max(
                (graph.nodes[name].summary.callee_saves_needed
                 for name in web.nodes),
                default=0,
            )
            allowed = callee_sorted[: max(0, len(callee_sorted) - max_need)]
            taken = {
                colored[n].register
                for n in interference.neighbor_ids(web)
                if n in colored
            }
            register = next((r for r in allowed if r not in taken), None)
            if register is not None:
                web.register = register
                colored[web.web_id] = web
        if tracer.enabled:
            _coloring_event(
                tracer, web, graph, colored, interference, set(allowed)
            )


@dataclass
class BlanketPromotion:
    """One global dedicated a register over the whole program."""

    variable: str
    register: int
    needs_store: bool = True


def select_blanket_globals(
    webs: list, graph: CallGraph, count: int = 6
) -> list:
    """Pick the ``count`` hottest eligible globals (by summing the
    priorities of their webs, as the paper did by "analyzing the
    prioritized web list") and dedicate one register to each."""
    totals: dict[str, float] = {}
    for web in webs:
        if web.discarded_reason not in (None, "sparse",
                                        "single-node-low-frequency"):
            continue
        totals[web.variable] = totals.get(web.variable, 0.0) + max(
            compute_web_priority(web, graph), 0.0
        )
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    pool = web_register_pool(count)
    selected = []
    for (variable, total), register in zip(ranked[:count], pool):
        if total <= 0:
            continue
        selected.append(BlanketPromotion(variable, register))
    return selected
