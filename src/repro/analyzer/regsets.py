"""Register usage set computation (paper sections 4.2.3-4.2.4, Figure 6).

For every procedure, four disjoint register sets steer the second phase's
allocator:

* ``FREE``   — usable without save/restore, may hold values across calls;
* ``CALLER`` — usable without save/restore, clobbered at calls;
* ``CALLEE`` — must be saved/restored if used, survive calls;
* ``MSPILL`` — saved/restored unconditionally at cluster roots (the
  root executes the spill code for the whole cluster).

Cluster roots are processed bottom-up so spill code migrates upward:
when a parent cluster reaches a child root whose ``MSPILL`` registers are
still available along every path from the parent root, those registers
move into the parent root's ``MSPILL`` — the save/restore climbs the call
graph (section 4.2.4).

Two deliberate strengthenings over the paper's Figure 6 pseudocode:

* at a child root, the newly freed registers are also removed from its
  ``AVAIL`` set before successors intersect it, so a child root that is
  not a leaf of the parent cluster cannot leak its FREE registers to its
  own successors (the paper assumes child roots are leaves);
* registers reserved for promoted global webs anywhere in a cluster are
  excluded from the root's ``AVAIL`` (the conservative rule of section
  7.6.2's discussion) *and* from every procedure's standard sets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.dominators import DominatorTree
from repro.analyzer.clusters import Cluster
from repro.callgraph.graph import CallGraph
from repro.obs.tracer import current_tracer
from repro.target.registers import CALLEE_SAVES, CALLER_SAVES


@dataclass
class RegisterSets:
    """Mutable per-procedure usage sets during analysis."""

    free: set = field(default_factory=set)
    caller: set = field(default_factory=set)
    callee: set = field(default_factory=set)
    mspill: set = field(default_factory=set)


def compute_register_sets(
    graph: CallGraph,
    clusters: list,
    dominators: Optional[DominatorTree] = None,
    web_reserved: Optional[dict] = None,
) -> dict:
    """Compute FREE/CALLER/CALLEE/MSPILL for every procedure.

    Args:
        graph: Program call graph.
        clusters: Clusters from :func:`identify_clusters`.
        dominators: Call-graph dominator tree (recomputed if omitted).
        web_reserved: procedure name -> set of registers reserved for
            promoted globals in that procedure.

    Returns:
        name -> :class:`RegisterSets`.
    """
    if dominators is None:
        dominators = graph.dominator_tree()
    web_reserved = web_reserved or {}

    sets: dict[str, RegisterSets] = {}
    for name in graph.nodes:
        reserved = set(web_reserved.get(name, ()))
        sets[name] = RegisterSets(
            free=set(),
            caller=set(CALLER_SAVES),
            callee=set(CALLEE_SAVES) - reserved,
            mspill=set(),
        )

    roots = {cluster.root for cluster in clusters}
    avail: dict[str, set] = {}

    for cluster in _bottom_up(clusters, dominators):
        _process_cluster(graph, cluster, roots, sets, avail, web_reserved)
    return sets


def _bottom_up(clusters: list, dominators: DominatorTree) -> list:
    """Deepest (in the dominator tree) cluster roots first, so nested
    clusters are processed before the clusters containing them."""

    def depth(name: str) -> int:
        return len(dominators.dominators_of(name))

    return sorted(clusters, key=lambda c: (-depth(c.root), c.root))


def _cluster_register_order(child_mspill: set) -> list:
    """Selection order for preallocation: registers *not* in a child
    root's MSPILL first, so those stay available for upward motion."""
    return sorted(CALLEE_SAVES, key=lambda r: (r in child_mspill, r))


def _process_cluster(
    graph: CallGraph,
    cluster: Cluster,
    roots: set,
    sets: dict,
    avail: dict,
    web_reserved: dict,
) -> None:
    root = cluster.root
    members = cluster.members
    all_nodes = cluster.all_nodes

    child_mspill: set = set()
    for name in members:
        if name in roots:
            child_mspill |= sets[name].mspill
    order = _cluster_register_order(child_mspill)

    reserved_in_cluster: set = set()
    for name in all_nodes:
        reserved_in_cluster |= set(web_reserved.get(name, ()))

    # Root's own callee-saves selection: take the registers *least*
    # attractive for preallocation (end of the priority order), skipping
    # web-reserved registers.
    selectable = [r for r in order if r not in reserved_in_cluster]
    need = graph.nodes[root].summary.callee_saves_needed
    root_sets = sets[root]
    root_callee = set(selectable[max(0, len(selectable) - need):])
    root_sets.callee = root_callee
    avail[root] = set(selectable) - root_callee

    used: set = set()
    visited: set = {root}
    # Kahn worklist over the (acyclic) cluster subgraph: a member is
    # ready once every predecessor has been processed, and among ready
    # members the smallest name goes first — the same order the old
    # sort-and-rescan sweep produced, without re-scanning the whole
    # pending set after every node.
    pending = set(members)
    unresolved = {
        name: len(set(graph.nodes[name].predecessors) - visited)
        for name in pending
    }
    ready = [name for name in pending if unresolved[name] == 0]
    heapq.heapify(ready)
    while ready:
        name = heapq.heappop(ready)
        _preallocate_node(
            graph, name, roots, sets, avail, order, used, root
        )
        visited.add(name)
        pending.discard(name)
        for successor in graph.nodes[name].successors:
            if successor in pending:
                unresolved[successor] -= 1
                if unresolved[successor] == 0:
                    heapq.heappush(ready, successor)
    if pending:  # pragma: no cover - clusters are acyclic
        raise AssertionError(
            f"cluster {root}: could not order members {sorted(pending)}"
        )

    root_sets.mspill |= used
    # Post-pass (Figure 7): callee-saves registers the root spills that
    # remain available at an intermediate node can serve as extra
    # caller-saves registers there.
    for name in members:
        if name in roots:
            continue
        sets[name].caller |= avail[name] & root_sets.mspill


def _preallocate_node(
    graph: CallGraph,
    name: str,
    roots: set,
    sets: dict,
    avail: dict,
    order: list,
    used: set,
    cluster_root: Optional[str] = None,
) -> None:
    node_avail: Optional[set] = None
    for predecessor in graph.nodes[name].predecessors:
        pred_avail = avail.get(predecessor, set())
        node_avail = (
            set(pred_avail) if node_avail is None else node_avail & pred_avail
        )
    node_avail = node_avail or set()
    node_sets = sets[name]

    if name in roots:
        # A nested cluster root: move its spill code upward.
        moved = node_sets.mspill & node_avail
        used |= moved
        tracer = current_tracer()
        if tracer.enabled:
            kept = node_sets.mspill - node_avail
            if moved:
                tracer.event(
                    "mspill-migrated",
                    node=name,
                    cluster_root=cluster_root,
                    registers=moved,
                )
            if kept:
                tracer.event(
                    "mspill-kept",
                    node=name,
                    cluster_root=cluster_root,
                    registers=kept,
                    reason="not-available-on-all-paths",
                )
        node_sets.mspill -= node_avail
        freed = node_sets.callee & node_avail
        used |= freed
        node_sets.free |= freed
        node_sets.callee -= freed
        # Strengthening: the child's FREE registers may hold values
        # across its calls, so its in-cluster successors must not
        # preallocate them.
        avail[name] = node_avail - node_sets.free
    else:
        need = graph.nodes[name].summary.callee_saves_needed
        taken = _get_registers(need, node_avail, order)
        node_sets.free |= taken
        node_avail -= taken
        node_sets.callee -= taken | node_avail
        used |= taken
        avail[name] = node_avail


def _get_registers(count: int, available: set, order: list) -> set:
    """Figure 6's Get_Registers: up to ``count`` registers from
    ``available`` in the cluster's priority order."""
    chosen: set = set()
    for register in order:
        if len(chosen) >= count:
            break
        if register in available:
            chosen.add(register)
    return chosen


def check_register_set_invariants(
    sets: dict, roots: set, web_reserved: Optional[dict] = None
) -> None:
    """Assert disjointness and placement rules.  Used by tests.

    Registers in ``caller`` beyond the standard convention must come
    from spill code motion, i.e. appear in some cluster root's MSPILL;
    FREE/CALLEE/MSPILL draw from the callee-saves half of the register
    file only; registers reserved for promoted webs (``web_reserved``:
    name -> registers, when the caller tracks webs) may appear in none
    of the four sets.
    """
    all_mspill: set = set()
    for name in roots:
        if name in sets:
            all_mspill |= sets[name].mspill
    for name, rs in sets.items():
        labelled = {
            "free": rs.free,
            "caller": rs.caller,
            "callee": rs.callee,
            "mspill": rs.mspill,
        }
        labels = list(labelled)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                overlap = labelled[a] & labelled[b]
                if overlap:
                    raise AssertionError(
                        f"{name}: {a} and {b} overlap: {sorted(overlap)}"
                    )
        if web_reserved is not None:
            reserved = set(web_reserved.get(name, ()))
            for label, regs in labelled.items():
                overlap = regs & reserved
                if overlap:
                    raise AssertionError(
                        f"{name}: web-reserved registers "
                        f"{sorted(overlap)} appear in {label}"
                    )
        if rs.mspill and name not in roots:
            raise AssertionError(
                f"{name}: MSPILL non-empty at a non-root"
            )
        for label in ("free", "callee", "mspill"):
            stray = labelled[label] - CALLEE_SAVES
            if stray:
                raise AssertionError(
                    f"{name}: {label} contains non-callee-saves "
                    f"registers {sorted(stray)}"
                )
        stray = rs.caller - CALLER_SAVES - all_mspill
        if stray:
            raise AssertionError(
                f"{name}: caller extends the convention with registers "
                f"{sorted(stray)} not in any cluster root's MSPILL"
            )
